//! Property tests: every encodable packet decodes back to itself, and no
//! single-byte corruption ever decodes successfully to a *different*
//! packet (checksum soundness).

use proptest::prelude::*;
use v_wire::{decode, encode, Packet, TransferStatus, MSG_LEN};

fn arb_msg() -> impl Strategy<Value = [u8; MSG_LEN]> {
    prop::array::uniform32(any::<u8>())
}

fn arb_status() -> impl Strategy<Value = TransferStatus> {
    prop_oneof![
        Just(TransferStatus::Complete),
        Just(TransferStatus::Partial),
        Just(TransferStatus::AccessViolation),
        Just(TransferStatus::Unknown),
    ]
}

fn arb_body() -> impl Strategy<Value = v_wire::PacketBody> {
    use v_wire::{
        GetPidReply, GetPidReq, MoveFromData, MoveFromReq, MoveToData, PacketBody, ReplyBody,
        SendBody, TransferAck,
    };
    prop_oneof![
        (
            arb_msg(),
            prop::collection::vec(any::<u8>(), 0..600),
            any::<u32>()
        )
            .prop_map(|(msg, appended, appended_from)| PacketBody::Send(SendBody {
                msg,
                appended,
                appended_from,
            })),
        (
            arb_msg(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..600)
        )
            .prop_map(|(msg, seg_dest, seg)| PacketBody::Reply(ReplyBody {
                msg,
                seg_dest,
                seg
            })),
        Just(PacketBody::ReplyPending),
        Just(PacketBody::Nack),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..1100)
        )
            .prop_map(|(dest, offset, total, last, data)| PacketBody::MoveToData(
                MoveToData {
                    dest,
                    offset,
                    total,
                    last,
                    data,
                }
            )),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(src, offset, total)| {
            PacketBody::MoveFromReq(MoveFromReq { src, offset, total })
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..1100)
        )
            .prop_map(|(offset, total, last, data)| PacketBody::MoveFromData(
                MoveFromData {
                    offset,
                    total,
                    last,
                    data,
                }
            )),
        (any::<u32>(), arb_status()).prop_map(|(received, status)| PacketBody::TransferAck(
            TransferAck { received, status }
        )),
        any::<u32>().prop_map(|logical_id| PacketBody::GetPidReq(GetPidReq { logical_id })),
        (any::<u32>(), any::<u32>())
            .prop_map(|(logical_id, pid)| PacketBody::GetPidReply(GetPidReply { logical_id, pid })),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (any::<u32>(), any::<u32>(), any::<u32>(), arb_body()).prop_map(
        |(seq, src_pid, dst_pid, body)| Packet {
            seq,
            src_pid,
            dst_pid,
            body,
        },
    )
}

proptest! {
    #[test]
    fn encode_decode_round_trip(p in arb_packet()) {
        let bytes = encode(&p);
        prop_assert_eq!(bytes.len(), p.wire_len());
        let q = decode(&bytes).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn single_byte_corruption_never_yields_a_different_packet(
        p in arb_packet(),
        victim_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let bytes = encode(&p);
        let victim = (victim_seed % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[victim] ^= flip;
        match decode(&bad) {
            Err(_) => {}
            // FNV-32 is not cryptographic; a collision is astronomically
            // unlikely under single-byte flips, but if one occurs the
            // decoded packet must at least be identical (i.e. the flip
            // struck a redundant encoding) — anything else is a soundness
            // bug.
            Ok(q) => prop_assert_eq!(p, q),
        }
    }

    #[test]
    fn truncation_never_panics(p in arb_packet(), cut_seed in any::<u64>()) {
        let bytes = encode(&p);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let _ = decode(&bytes[..cut]);
    }
}
