//! Decode fuzzing: no byte sequence — random soup, truncations, or
//! checksum-repaired structural corruption — may ever panic the decoder.
//! Malformed input must surface as `Err`, because the kernel feeds every
//! received frame straight into `decode` and counts failures instead of
//! crashing.

use proptest::prelude::*;
use v_wire::{
    decode, encode, ForwardBody, Packet, PacketBody, SendBody, WireError, HEADER_LEN, MSG_LEN,
};

/// FNV-1a 32-bit, restated from the wire format spec so tests can forge
/// "valid checksum, invalid body" packets that exercise body parsing.
fn fnv1a(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for part in parts {
        for &b in *part {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Rewrites the checksum field so a hand-mutated packet passes the
/// integrity check and reaches the kind/body parsing stages.
fn fix_checksum(bytes: &mut [u8]) {
    let (header, payload) = bytes.split_at_mut(HEADER_LEN);
    header[28..32].fill(0);
    let sum = fnv1a(&[header, payload]);
    header[28..32].copy_from_slice(&sum.to_le_bytes());
}

fn sample_send() -> Packet {
    Packet {
        seq: 3,
        src_pid: 0x0001_0002,
        dst_pid: 0x0002_0001,
        body: PacketBody::Send(SendBody {
            msg: [0xAB; MSG_LEN],
            appended: vec![7; 64],
            appended_from: 0x100,
        }),
    }
}

fn sample_forward() -> Packet {
    Packet {
        seq: 9,
        src_pid: 0x0002_0001,
        dst_pid: 0x0001_0002,
        body: PacketBody::Forward(ForwardBody {
            client: 0x0001_0002,
            new_server: 0x0002_0007,
            msg: [0xCD; MSG_LEN],
            appended: vec![0x11; 40],
            appended_from: 0x3000,
        }),
    }
}

#[test]
fn every_truncation_of_a_forward_packet_is_rejected() {
    let bytes = encode(&sample_forward());
    for cut in 0..bytes.len() {
        let err = decode(&bytes[..cut]).expect_err("truncation must not decode");
        match err {
            WireError::TooShort | WireError::LengthMismatch { .. } => {}
            other => panic!("unexpected error class for cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn corrupted_forward_bytes_never_decode_as_valid() {
    let bytes = encode(&sample_forward());
    for victim in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[victim] ^= 0x5A;
        if let Ok(p) = decode(&bad) {
            panic!("corruption at byte {victim} not detected: {p:?}");
        }
    }
}

#[test]
fn unknown_kind_with_valid_checksum_is_err_not_panic() {
    for kind in [0u8, 12, 42, 0xFF] {
        let mut bytes = encode(&sample_send());
        bytes[0] = kind;
        fix_checksum(&mut bytes);
        assert_eq!(decode(&bytes), Err(WireError::UnknownKind(kind)));
    }
}

#[test]
fn bad_transfer_status_with_valid_checksum_is_malformed() {
    // TransferAck carries its status in word_b; any value above 3 is
    // undefined.
    let mut header = [0u8; HEADER_LEN];
    header[0] = 8; // TransferAck
    header[20] = 200; // word_b: invalid status
    let mut bytes = header.to_vec();
    fix_checksum(&mut bytes);
    assert_eq!(decode(&bytes), Err(WireError::Malformed));
}

#[test]
fn message_bodies_shorter_than_a_message_are_malformed() {
    // Send, Reply and Forward all require a full 32-byte message up front.
    for kind in [1u8, 2, 11] {
        for short_len in [0usize, 1, MSG_LEN - 1] {
            let mut header = [0u8; HEADER_LEN];
            header[0] = kind;
            header[2..4].copy_from_slice(&(short_len as u16).to_le_bytes());
            let mut bytes = header.to_vec();
            bytes.extend(std::iter::repeat(0x5A).take(short_len));
            fix_checksum(&mut bytes);
            assert_eq!(decode(&bytes), Err(WireError::Malformed));
        }
    }
}

#[test]
fn appended_length_word_disagreeing_with_payload_is_malformed() {
    let mut bytes = encode(&sample_send());
    // word_b claims a different appended-segment length than is present.
    bytes[20..24].copy_from_slice(&999u32.to_le_bytes());
    fix_checksum(&mut bytes);
    assert_eq!(decode(&bytes), Err(WireError::Malformed));
}

#[test]
fn every_truncation_of_a_valid_packet_is_rejected() {
    let bytes = encode(&sample_send());
    for cut in 0..bytes.len() {
        let err = decode(&bytes[..cut]).expect_err("truncation must not decode");
        match err {
            WireError::TooShort | WireError::LengthMismatch { .. } => {}
            other => panic!("unexpected error class for cut {cut}: {other:?}"),
        }
    }
}

proptest! {
    /// Arbitrary byte soup: decode returns, never panics.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..1600)) {
        let _ = decode(&bytes);
    }

    /// Byte soup with a plausible header shape (valid kind byte, claimed
    /// length matching) still may not panic even after the checksum is
    /// repaired — this drives the per-kind body parsers with garbage.
    #[test]
    fn checksum_repaired_garbage_never_panics(
        kind in 0u8..16,
        flags in any::<u8>(),
        words in (any::<u32>(), any::<u32>(), any::<u32>()),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[0] = kind;
        bytes[1] = flags;
        bytes[2..4].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        bytes[16..20].copy_from_slice(&words.0.to_le_bytes());
        bytes[20..24].copy_from_slice(&words.1.to_le_bytes());
        bytes[24..28].copy_from_slice(&words.2.to_le_bytes());
        bytes.extend_from_slice(&payload);
        fix_checksum(&mut bytes);
        if let Ok(p) = decode(&bytes) {
            // Whatever decoded must re-encode consistently.
            prop_assert_eq!(p.wire_len(), bytes.len());
        }
    }
}
