//! The interkernel wire protocol.
//!
//! V kernels exchange *interkernel packets* at the raw data-link level —
//! no transport layer underneath (§3 of the paper: "Interkernel packets
//! use the 'raw' Ethernet data link level"; reliability comes from the
//! Send/Reply exchange itself). This crate defines the packet vocabulary
//! and a hand-rolled binary codec:
//!
//! * a fixed [`HEADER_LEN`]-byte header (kind, flags, sequence number,
//!   source/destination pids, three kind-specific words, checksum), so a
//!   32-byte message rides in a 64-byte datagram exactly as the paper's
//!   packet accounting assumes;
//! * typed per-kind bodies ([`PacketBody`], one struct per kind): message
//!   exchange (`Send`, `Reply`, `ReplyPending`, `Nack`, `Forward`), bulk
//!   transfer (`MoveToData`, `MoveFromReq`, `MoveFromData`, `TransferAck`)
//!   and naming (`GetPidReq`, `GetPidReply`) — decoded exactly once, so
//!   kernel handlers consume structs rather than loose header words;
//! * a 32-bit checksum over the whole packet, which is how receivers
//!   detect the corruption injected by the simulated medium (including the
//!   §5.4 collision-bug corruptions).

pub mod codec;
pub mod packet;

pub use codec::{decode, encode, WireError};
pub use packet::{
    ForwardBody, GetPidReply, GetPidReq, MoveFromData, MoveFromReq, MoveToData, MsgBytes, Packet,
    PacketBody, PacketKind, ReplyBody, SendBody, TransferAck, TransferStatus, HEADER_LEN, MSG_LEN,
};
