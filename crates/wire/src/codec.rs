//! Binary encoding of interkernel packets.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//!      0     1  kind
//!      1     1  flags        (bit 0: LAST chunk; bit 1: status bits ...)
//!      2     2  payload_len
//!      4     4  seq
//!      8     4  src_pid
//!     12     4  dst_pid
//!     16     4  word_a       kind-specific
//!     20     4  word_b       kind-specific
//!     24     4  word_c       kind-specific
//!     28     4  checksum     (FNV-1a over header-with-zeroed-checksum ++ payload)
//!     32     …  payload
//! ```
//!
//! The three kind-specific words carry addresses, offsets, totals, logical
//! ids and the like; see the `encode`/`decode` match arms for the exact
//! mapping per kind. Decoding is the single point where raw bytes become a
//! typed [`PacketBody`]: everything past this function works with body
//! structs, never with loose header words.

use crate::packet::{
    ForwardBody, GetPidReply, GetPidReq, MoveFromData, MoveFromReq, MoveToData, MsgBytes, Packet,
    PacketBody, PacketKind, ReplyBody, SendBody, TransferAck, TransferStatus, HEADER_LEN, MSG_LEN,
};

/// Flag bit: final chunk of a bulk transfer.
const FLAG_LAST: u8 = 0x01;

/// Errors produced when decoding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a header.
    TooShort,
    /// Checksum mismatch — the frame was corrupted in flight.
    BadChecksum,
    /// Unknown kind discriminator.
    UnknownKind(u8),
    /// Header's payload length disagrees with the actual byte count.
    LengthMismatch {
        /// Length claimed in the header.
        claimed: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// Payload too small for the kind (e.g. a Send without a full message).
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort => write!(f, "packet shorter than header"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::UnknownKind(k) => write!(f, "unknown packet kind {k}"),
            WireError::LengthMismatch { claimed, actual } => {
                write!(
                    f,
                    "payload length mismatch: claimed {claimed}, got {actual}"
                )
            }
            WireError::Malformed => write!(f, "malformed packet body"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a, 32-bit.
fn fnv1a(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for part in parts {
        for &b in *part {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Encodes a packet to its on-wire byte representation.
pub fn encode(p: &Packet) -> Vec<u8> {
    let mut flags: u8 = 0;
    let (word_a, word_b, word_c): (u32, u32, u32);
    let mut payload: Vec<u8> = Vec::new();

    match &p.body {
        PacketBody::Send(b) => {
            word_a = b.appended_from;
            word_b = b.appended.len() as u32;
            word_c = 0;
            payload.extend_from_slice(&b.msg);
            payload.extend_from_slice(&b.appended);
        }
        PacketBody::Reply(b) => {
            word_a = b.seg_dest;
            word_b = b.seg.len() as u32;
            word_c = 0;
            payload.extend_from_slice(&b.msg);
            payload.extend_from_slice(&b.seg);
        }
        PacketBody::ReplyPending | PacketBody::Nack => {
            word_a = 0;
            word_b = 0;
            word_c = 0;
        }
        PacketBody::MoveToData(b) => {
            if b.last {
                flags |= FLAG_LAST;
            }
            word_a = b.dest;
            word_b = b.offset;
            word_c = b.total;
            payload.extend_from_slice(&b.data);
        }
        PacketBody::MoveFromReq(b) => {
            word_a = b.src;
            word_b = b.offset;
            word_c = b.total;
        }
        PacketBody::MoveFromData(b) => {
            if b.last {
                flags |= FLAG_LAST;
            }
            word_a = 0;
            word_b = b.offset;
            word_c = b.total;
            payload.extend_from_slice(&b.data);
        }
        PacketBody::TransferAck(b) => {
            word_a = b.received;
            word_b = b.status as u32;
            word_c = 0;
        }
        PacketBody::GetPidReq(b) => {
            word_a = b.logical_id;
            word_b = 0;
            word_c = 0;
        }
        PacketBody::GetPidReply(b) => {
            word_a = b.logical_id;
            word_b = b.pid;
            word_c = 0;
        }
        PacketBody::Forward(b) => {
            word_a = b.client;
            word_b = b.new_server;
            word_c = b.appended_from;
            payload.extend_from_slice(&b.msg);
            payload.extend_from_slice(&b.appended);
        }
    }

    let mut header = [0u8; HEADER_LEN];
    header[0] = p.kind() as u8;
    header[1] = flags;
    put_u16(&mut header, 2, payload.len() as u16);
    put_u32(&mut header, 4, p.seq);
    put_u32(&mut header, 8, p.src_pid);
    put_u32(&mut header, 12, p.dst_pid);
    put_u32(&mut header, 16, word_a);
    put_u32(&mut header, 20, word_b);
    put_u32(&mut header, 24, word_c);
    // Checksum computed with the checksum field zeroed.
    let sum = fnv1a(&[&header, &payload]);
    put_u32(&mut header, 28, sum);

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a packet from its on-wire byte representation, verifying the
/// checksum. This is the only place raw header words are interpreted;
/// the result carries fully typed bodies.
pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::TooShort);
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);

    let claimed = get_u16(header, 2) as usize;
    if claimed != payload.len() {
        return Err(WireError::LengthMismatch {
            claimed,
            actual: payload.len(),
        });
    }

    let stored_sum = get_u32(header, 28);
    let mut zeroed = [0u8; HEADER_LEN];
    zeroed.copy_from_slice(header);
    put_u32(&mut zeroed, 28, 0);
    if fnv1a(&[&zeroed, payload]) != stored_sum {
        return Err(WireError::BadChecksum);
    }

    let kind = PacketKind::from_u8(header[0]).ok_or(WireError::UnknownKind(header[0]))?;
    let flags = header[1];
    let seq = get_u32(header, 4);
    let src_pid = get_u32(header, 8);
    let dst_pid = get_u32(header, 12);
    let word_a = get_u32(header, 16);
    let word_b = get_u32(header, 20);
    let word_c = get_u32(header, 24);
    let last = flags & FLAG_LAST != 0;

    let take_msg = |payload: &[u8]| -> Result<(MsgBytes, Vec<u8>), WireError> {
        if payload.len() < MSG_LEN {
            return Err(WireError::Malformed);
        }
        let mut msg = [0u8; MSG_LEN];
        msg.copy_from_slice(&payload[..MSG_LEN]);
        Ok((msg, payload[MSG_LEN..].to_vec()))
    };

    // Kinds without a data payload must not smuggle one: a decoded packet
    // always re-encodes to the exact bytes it came from.
    let no_payload = || -> Result<(), WireError> {
        if payload.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed)
        }
    };

    let body = match kind {
        PacketKind::Send => {
            let (msg, appended) = take_msg(payload)?;
            if appended.len() != word_b as usize {
                return Err(WireError::Malformed);
            }
            PacketBody::Send(SendBody {
                msg,
                appended,
                appended_from: word_a,
            })
        }
        PacketKind::Reply => {
            let (msg, seg) = take_msg(payload)?;
            if seg.len() != word_b as usize {
                return Err(WireError::Malformed);
            }
            PacketBody::Reply(ReplyBody {
                msg,
                seg_dest: word_a,
                seg,
            })
        }
        PacketKind::ReplyPending => {
            no_payload()?;
            PacketBody::ReplyPending
        }
        PacketKind::Nack => {
            no_payload()?;
            PacketBody::Nack
        }
        PacketKind::MoveToData => PacketBody::MoveToData(MoveToData {
            dest: word_a,
            offset: word_b,
            total: word_c,
            last,
            data: payload.to_vec(),
        }),
        PacketKind::MoveFromReq => {
            no_payload()?;
            PacketBody::MoveFromReq(MoveFromReq {
                src: word_a,
                offset: word_b,
                total: word_c,
            })
        }
        PacketKind::MoveFromData => PacketBody::MoveFromData(MoveFromData {
            offset: word_b,
            total: word_c,
            last,
            data: payload.to_vec(),
        }),
        PacketKind::TransferAck => {
            no_payload()?;
            PacketBody::TransferAck(TransferAck {
                received: word_a,
                status: TransferStatus::from_u8(word_b as u8).ok_or(WireError::Malformed)?,
            })
        }
        PacketKind::GetPidReq => {
            no_payload()?;
            PacketBody::GetPidReq(GetPidReq { logical_id: word_a })
        }
        PacketKind::GetPidReply => {
            no_payload()?;
            PacketBody::GetPidReply(GetPidReply {
                logical_id: word_a,
                pid: word_b,
            })
        }
        PacketKind::Forward => {
            let (msg, appended) = take_msg(payload)?;
            PacketBody::Forward(ForwardBody {
                client: word_a,
                new_server: word_b,
                msg,
                appended,
                appended_from: word_c,
            })
        }
    };

    Ok(Packet {
        seq,
        src_pid,
        dst_pid,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        let msg: MsgBytes = core::array::from_fn(|i| i as u8);
        vec![
            Packet {
                seq: 7,
                src_pid: 0x0001_0002,
                dst_pid: 0x0003_0004,
                body: PacketBody::Send(SendBody {
                    msg,
                    appended: vec![9; 512],
                    appended_from: 0x1000,
                }),
            },
            Packet {
                seq: 7,
                src_pid: 0x0003_0004,
                dst_pid: 0x0001_0002,
                body: PacketBody::Reply(ReplyBody {
                    msg,
                    seg_dest: 0x2000,
                    seg: vec![1, 2, 3],
                }),
            },
            Packet {
                seq: 8,
                src_pid: 1,
                dst_pid: 2,
                body: PacketBody::ReplyPending,
            },
            Packet {
                seq: 9,
                src_pid: 1,
                dst_pid: 2,
                body: PacketBody::Nack,
            },
            Packet {
                seq: 10,
                src_pid: 1,
                dst_pid: 2,
                body: PacketBody::MoveToData(MoveToData {
                    dest: 0x500,
                    offset: 1024,
                    total: 4096,
                    last: false,
                    data: vec![0xCC; 1024],
                }),
            },
            Packet {
                seq: 10,
                src_pid: 1,
                dst_pid: 2,
                body: PacketBody::MoveToData(MoveToData {
                    dest: 0x500,
                    offset: 3072,
                    total: 4096,
                    last: true,
                    data: vec![0xDD; 1024],
                }),
            },
            Packet {
                seq: 11,
                src_pid: 1,
                dst_pid: 2,
                body: PacketBody::MoveFromReq(MoveFromReq {
                    src: 0x4000,
                    offset: 512,
                    total: 2048,
                }),
            },
            Packet {
                seq: 11,
                src_pid: 2,
                dst_pid: 1,
                body: PacketBody::MoveFromData(MoveFromData {
                    offset: 512,
                    total: 2048,
                    last: true,
                    data: vec![5; 100],
                }),
            },
            Packet {
                seq: 10,
                src_pid: 2,
                dst_pid: 1,
                body: PacketBody::TransferAck(TransferAck {
                    received: 4096,
                    status: TransferStatus::Complete,
                }),
            },
            Packet {
                seq: 0,
                src_pid: 1,
                dst_pid: 0,
                body: PacketBody::GetPidReq(GetPidReq { logical_id: 3 }),
            },
            Packet {
                seq: 0,
                src_pid: 5,
                dst_pid: 1,
                body: PacketBody::GetPidReply(GetPidReply {
                    logical_id: 3,
                    pid: 0x0002_0001,
                }),
            },
            Packet {
                seq: 12,
                src_pid: 0x0002_0001, // the forwarder
                dst_pid: 0x0001_0002, // the client being rebound
                body: PacketBody::Forward(ForwardBody {
                    client: 0x0001_0002,
                    new_server: 0x0002_0009,
                    msg,
                    appended: vec![3; 48],
                    appended_from: 0x3000,
                }),
            },
            Packet {
                seq: 12,
                src_pid: 0x0002_0001,
                dst_pid: 0x0003_0005, // hand-off to a third-host worker
                body: PacketBody::Forward(ForwardBody {
                    client: 0x0001_0002,
                    new_server: 0x0003_0005,
                    msg,
                    appended: vec![],
                    appended_from: 0,
                }),
            },
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        for p in sample_packets() {
            let bytes = encode(&p);
            assert_eq!(bytes.len(), p.wire_len());
            let q = decode(&bytes).unwrap_or_else(|e| panic!("{e} for {p:?}"));
            assert_eq!(p, q);
        }
    }

    #[test]
    fn corruption_is_detected() {
        for p in sample_packets() {
            let bytes = encode(&p);
            for victim in [0usize, 5, bytes.len() - 1] {
                let mut bad = bytes.clone();
                bad[victim] ^= 0x40;
                match decode(&bad) {
                    // Flipping the kind byte may surface as UnknownKind or
                    // a checksum failure first; all are detections.
                    Err(_) => {}
                    Ok(q) => panic!("corruption not detected: {p:?} decoded as {q:?}"),
                }
            }
        }
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(decode(&[0u8; 10]), Err(WireError::TooShort));
    }

    #[test]
    fn truncated_payload_rejected() {
        let p = &sample_packets()[0];
        let bytes = encode(p);
        let cut = &bytes[..bytes.len() - 8];
        assert!(matches!(decode(cut), Err(WireError::LengthMismatch { .. })));
    }

    #[test]
    fn send_shorter_than_message_rejected() {
        // Hand-build a Send claiming a 4-byte payload: checksum valid but
        // body malformed.
        let mut header = [0u8; HEADER_LEN];
        header[0] = PacketKind::Send as u8;
        put_u16(&mut header, 2, 4);
        let payload = [1u8, 2, 3, 4];
        let sum = fnv1a(&[&header, &payload]);
        put_u32(&mut header, 28, sum);
        let mut bytes = header.to_vec();
        bytes.extend_from_slice(&payload);
        assert_eq!(decode(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn display_of_errors() {
        assert!(format!("{}", WireError::BadChecksum).contains("checksum"));
        assert!(format!("{}", WireError::UnknownKind(9)).contains('9'));
    }
}
