//! Packet vocabulary of the interkernel protocol.
//!
//! Every packet kind with contents gets its own body struct so the
//! kernel's handlers consume one typed value instead of a fistful of
//! loose scalars; [`PacketBody`] is the tagged union the codec decodes
//! exactly once at the receive boundary.

/// Length of the fixed interkernel header in bytes.
///
/// Chosen so that a [`MSG_LEN`]-byte message makes a 64-byte datagram,
/// matching the packet sizes the paper's network-penalty accounting uses.
pub const HEADER_LEN: usize = 32;

/// Length of a V message: "all messages are a fixed 32 bytes in length".
pub const MSG_LEN: usize = 32;

/// Raw bytes of a V message as they appear on the wire.
pub type MsgBytes = [u8; MSG_LEN];

/// Discriminates packet kinds on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketKind {
    /// A remote `Send`: carries the 32-byte message, plus — if the sender
    /// granted read access to a segment — the first part of that segment
    /// (the `ReceiveWithSegment` optimization of §3.4).
    Send = 1,
    /// A remote `Reply`: the 32-byte reply message, plus an optional short
    /// segment written into the original sender's address space
    /// (`ReplyWithSegment`).
    Reply = 2,
    /// "Still working on it": the receiver saw a retransmitted `Send` whose
    /// reply has not been generated yet, or had to discard a new message
    /// for want of alien descriptors.
    ReplyPending = 3,
    /// Negative acknowledgement: the addressed process does not exist.
    Nack = 4,
    /// One chunk of a `MoveTo` bulk transfer (kernel-to-kernel data push).
    MoveToData = 5,
    /// Request side of `MoveFrom`: asks the remote kernel to stream a
    /// granted segment back, starting at a given offset.
    MoveFromReq = 6,
    /// One chunk of `MoveFrom` data flowing back to the requester.
    MoveFromData = 7,
    /// Transfer acknowledgement: reports how many bytes arrived in order.
    /// A count smaller than the total asks the mover to resume from there
    /// ("retransmission from the last correctly received data packet").
    TransferAck = 8,
    /// Broadcast logical-id lookup (`GetPid` miss).
    GetPidReq = 9,
    /// Answer to a [`PacketKind::GetPidReq`].
    GetPidReply = 10,
    /// `Forward`: a received message is handed to another server process,
    /// which replies to the original client directly (the receptionist /
    /// worker pattern). On the wire the same packet serves two roles:
    /// addressed to the client it *rebinds* the blocked exchange to the
    /// new server; addressed to the new server's kernel it *hands off*
    /// the message like a Send.
    Forward = 11,
}

impl PacketKind {
    /// Decodes a kind byte.
    pub fn from_u8(b: u8) -> Option<PacketKind> {
        Some(match b {
            1 => PacketKind::Send,
            2 => PacketKind::Reply,
            3 => PacketKind::ReplyPending,
            4 => PacketKind::Nack,
            5 => PacketKind::MoveToData,
            6 => PacketKind::MoveFromReq,
            7 => PacketKind::MoveFromData,
            8 => PacketKind::TransferAck,
            9 => PacketKind::GetPidReq,
            10 => PacketKind::GetPidReply,
            11 => PacketKind::Forward,
            _ => return None,
        })
    }
}

/// Status carried by a [`TransferAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TransferStatus {
    /// All data arrived; transfer complete.
    Complete = 0,
    /// In-order prefix received; mover should resume from `received`.
    Partial = 1,
    /// The transfer violated the destination's segment grant.
    AccessViolation = 2,
    /// No such transfer / process at the destination.
    Unknown = 3,
}

impl TransferStatus {
    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> Option<TransferStatus> {
        Some(match b {
            0 => TransferStatus::Complete,
            1 => TransferStatus::Partial,
            2 => TransferStatus::AccessViolation,
            3 => TransferStatus::Unknown,
            _ => return None,
        })
    }
}

/// Contents of a [`PacketKind::Send`] packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendBody {
    /// The 32-byte message.
    pub msg: MsgBytes,
    /// First part of the read-granted segment, if any (empty if the
    /// message grants no read access or the segment is empty).
    pub appended: Vec<u8>,
    /// Address-space offset the appended bytes start at (the segment
    /// start address from the message conventions).
    pub appended_from: u32,
}

/// Contents of a [`PacketKind::Reply`] packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyBody {
    /// The 32-byte reply message.
    pub msg: MsgBytes,
    /// Destination address for `seg` in the original sender's space
    /// (meaningful only when `seg` is non-empty).
    pub seg_dest: u32,
    /// Short segment transmitted with the reply (empty for plain
    /// `Reply`).
    pub seg: Vec<u8>,
}

/// Contents of a [`PacketKind::MoveToData`] chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveToData {
    /// Absolute destination address of this chunk in the destination
    /// process's space.
    pub dest: u32,
    /// Offset of this chunk within the whole transfer.
    pub offset: u32,
    /// Total bytes in the whole transfer.
    pub total: u32,
    /// True on the final chunk — solicits the single [`TransferAck`].
    pub last: bool,
    /// Chunk data.
    pub data: Vec<u8>,
}

/// Contents of a [`PacketKind::MoveFromReq`] packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveFromReq {
    /// Absolute source address in the remote (granting) process.
    pub src: u32,
    /// Offset to resume from (0 for the initial request).
    pub offset: u32,
    /// Total bytes requested.
    pub total: u32,
}

/// Contents of a [`PacketKind::MoveFromData`] chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveFromData {
    /// Offset of this chunk within the whole transfer.
    pub offset: u32,
    /// Total bytes in the whole transfer.
    pub total: u32,
    /// True on the final chunk.
    pub last: bool,
    /// Chunk data.
    pub data: Vec<u8>,
}

/// Contents of a [`PacketKind::TransferAck`] packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferAck {
    /// Bytes received in order at the destination.
    pub received: u32,
    /// Transfer disposition.
    pub status: TransferStatus,
}

/// Contents of a [`PacketKind::GetPidReq`] broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetPidReq {
    /// Logical id being resolved (fileserver, nameserver, ...).
    pub logical_id: u32,
}

/// Contents of a [`PacketKind::GetPidReply`] packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetPidReply {
    /// Logical id this answers for.
    pub logical_id: u32,
    /// The pid registered under that logical id.
    pub pid: u32,
}

/// Contents of a [`PacketKind::Forward`] packet.
///
/// The header's `src_pid` names the forwarder (the server the exchange
/// was originally addressed to), `seq` the exchange's sequence number,
/// and `dst_pid` the kernel-level addressee: the client for the rebind
/// role, the new server for the hand-off role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardBody {
    /// The original sending process whose exchange is being forwarded.
    pub client: u32,
    /// The server process the exchange now belongs to.
    pub new_server: u32,
    /// The (possibly rewritten) 32-byte message being forwarded.
    pub msg: MsgBytes,
    /// Appended segment prefix travelling with the message (the bytes
    /// the original Send carried), if any.
    pub appended: Vec<u8>,
    /// Address in the *client's* space the appended bytes came from.
    pub appended_from: u32,
}

/// An interkernel packet.
///
/// `seq` disambiguates retransmissions: for message exchange it is the
/// sending process's message sequence number ("the receiving kernel
/// filters out retransmissions ... by comparing the message sequence
/// number and source process"); for bulk transfer it identifies the
/// transfer instance.
///
/// `src_pid` / `dst_pid` are the communicating processes' 32-bit globally
/// unique identifiers; the logical-host subfield inside them is what the
/// kernels use for network addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Message / transfer sequence number.
    pub seq: u32,
    /// Sending process.
    pub src_pid: u32,
    /// Destination process.
    pub dst_pid: u32,
    /// Kind-specific contents.
    pub body: PacketBody,
}

/// Kind-specific packet contents, decoded once at the receive boundary.
///
/// `ReplyPending` and `Nack` are pure signals with no fields; every other
/// kind wraps its dedicated body struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketBody {
    /// See [`PacketKind::Send`].
    Send(SendBody),
    /// See [`PacketKind::Reply`].
    Reply(ReplyBody),
    /// See [`PacketKind::ReplyPending`].
    ReplyPending,
    /// See [`PacketKind::Nack`].
    Nack,
    /// See [`PacketKind::MoveToData`].
    MoveToData(MoveToData),
    /// See [`PacketKind::MoveFromReq`].
    MoveFromReq(MoveFromReq),
    /// See [`PacketKind::MoveFromData`].
    MoveFromData(MoveFromData),
    /// See [`PacketKind::TransferAck`].
    TransferAck(TransferAck),
    /// See [`PacketKind::GetPidReq`].
    GetPidReq(GetPidReq),
    /// See [`PacketKind::GetPidReply`].
    GetPidReply(GetPidReply),
    /// See [`PacketKind::Forward`].
    Forward(ForwardBody),
}

impl Packet {
    /// This packet's kind discriminator.
    pub fn kind(&self) -> PacketKind {
        match self.body {
            PacketBody::Send(_) => PacketKind::Send,
            PacketBody::Reply(_) => PacketKind::Reply,
            PacketBody::ReplyPending => PacketKind::ReplyPending,
            PacketBody::Nack => PacketKind::Nack,
            PacketBody::MoveToData(_) => PacketKind::MoveToData,
            PacketBody::MoveFromReq(_) => PacketKind::MoveFromReq,
            PacketBody::MoveFromData(_) => PacketKind::MoveFromData,
            PacketBody::TransferAck(_) => PacketKind::TransferAck,
            PacketBody::GetPidReq(_) => PacketKind::GetPidReq,
            PacketBody::GetPidReply(_) => PacketKind::GetPidReply,
            PacketBody::Forward(_) => PacketKind::Forward,
        }
    }

    /// Number of payload bytes this packet adds on top of the header.
    pub fn payload_len(&self) -> usize {
        match &self.body {
            PacketBody::Send(b) => MSG_LEN + b.appended.len(),
            PacketBody::Reply(b) => MSG_LEN + b.seg.len(),
            PacketBody::MoveToData(b) => b.data.len(),
            PacketBody::MoveFromData(b) => b.data.len(),
            PacketBody::Forward(b) => MSG_LEN + b.appended.len(),
            _ => 0,
        }
    }

    /// Total on-wire size (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_u8() {
        for k in [
            PacketKind::Send,
            PacketKind::Reply,
            PacketKind::ReplyPending,
            PacketKind::Nack,
            PacketKind::MoveToData,
            PacketKind::MoveFromReq,
            PacketKind::MoveFromData,
            PacketKind::TransferAck,
            PacketKind::GetPidReq,
            PacketKind::GetPidReply,
            PacketKind::Forward,
        ] {
            assert_eq!(PacketKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(PacketKind::from_u8(0), None);
        assert_eq!(PacketKind::from_u8(99), None);
    }

    #[test]
    fn status_round_trips_through_u8() {
        for s in [
            TransferStatus::Complete,
            TransferStatus::Partial,
            TransferStatus::AccessViolation,
            TransferStatus::Unknown,
        ] {
            assert_eq!(TransferStatus::from_u8(s as u8), Some(s));
        }
        assert_eq!(TransferStatus::from_u8(7), None);
    }

    #[test]
    fn a_plain_message_is_a_64_byte_datagram() {
        let p = Packet {
            seq: 1,
            src_pid: 2,
            dst_pid: 3,
            body: PacketBody::Send(SendBody {
                msg: [0; MSG_LEN],
                appended: vec![],
                appended_from: 0,
            }),
        };
        assert_eq!(p.wire_len(), 64);
    }

    #[test]
    fn payload_lengths() {
        let ack = Packet {
            seq: 0,
            src_pid: 0,
            dst_pid: 0,
            body: PacketBody::TransferAck(TransferAck {
                received: 10,
                status: TransferStatus::Complete,
            }),
        };
        assert_eq!(ack.payload_len(), 0);
        assert_eq!(ack.wire_len(), HEADER_LEN);

        let data = Packet {
            seq: 0,
            src_pid: 0,
            dst_pid: 0,
            body: PacketBody::MoveToData(MoveToData {
                dest: 0x500,
                offset: 0,
                total: 100,
                last: true,
                data: vec![0; 100],
            }),
        };
        assert_eq!(data.payload_len(), 100);
    }
}
