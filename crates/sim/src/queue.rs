//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by firing time.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which makes simulation runs fully deterministic — a
/// property the reproduction's regression tests rely on.
///
/// The queue also tracks the current simulation time: [`EventQueue::pop`]
/// advances `now` to the popped event's timestamp. Scheduling an event in
/// the past is a logic error and panics (in debug it pinpoints the broken
/// cost-model arithmetic immediately).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    scheduled: u64,
    popped: u64,
}

/// Engine-level counters of one simulation run, snapshotted from the
/// event queue ([`EventQueue::stats`]). This is the observable
/// events-processed surface the `v-bench engine` throughput experiment
/// and chaos debugging read; it needs no harness instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped (processed) so far.
    pub popped: u64,
    /// Events still pending.
    pub pending: usize,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
            popped: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event, advancing the simulation clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events ever popped (diagnostic).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> SimStats {
        SimStats {
            scheduled: self.scheduled,
            popped: self.popped,
            pending: self.heap.len(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "c");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_advances_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(10), 10);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_millis(1), 1));
        // Schedule between the popped time and the pending event.
        q.schedule(SimTime::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.is_empty());
        assert_eq!(q.total_scheduled(), 3);
    }

    #[test]
    fn stats_snapshot_tracks_schedules_and_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), SimStats::default());
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        q.pop();
        assert_eq!(q.total_popped(), 1);
        assert_eq!(
            q.stats(),
            SimStats {
                scheduled: 2,
                popped: 1,
                pending: 1,
            }
        );
    }
}
