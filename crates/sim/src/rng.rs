//! Small deterministic PRNG for fault injection and workload generation.

/// SplitMix64 pseudo-random number generator.
///
/// Chosen because it is tiny, fast, passes BigCrush when used as a 64-bit
/// generator, and — most importantly here — is trivially reproducible from
/// a single `u64` seed. Every source of randomness in the simulator
/// (packet loss, disk latency jitter, workload block selection) owns its
/// own `SplitMix64` forked from the cluster seed, so adding randomness to
/// one subsystem never perturbs another subsystem's stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Forks an independent generator; the child's stream is decorrelated
    /// from the parent's by an extra scrambling round.
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        let mixed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SplitMix64::new(mixed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded rejection is unnecessary at these scales;
        // modulo bias is negligible for n << 2^64 and irrelevant for a
        // performance simulator.
        self.next_u64() % n
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.below(hi - lo + 1)
    }

    /// Fills `buf` with random bytes (used to corrupt packet payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        // All residues eventually appear.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = SplitMix64::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SplitMix64::new(1234);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SplitMix64::new(8);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
