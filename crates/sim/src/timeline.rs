//! A time-ordered script of external events.
//!
//! Where [`crate::EventQueue`] is the *engine's* agenda — events the
//! simulation schedules for itself — a [`Timeline`] is a *script written
//! in advance*: a fixed, replayable sequence of instants at which some
//! outside hand intervenes. The chaos harness builds fault schedules on
//! it (crash this host at 2 s, heal the partition at 5 s), but it is
//! deliberately generic: any "do X at time T" scenario driver fits.
//!
//! Determinism contract: entries pop in time order, and entries at the
//! same instant pop in insertion order — the same guarantee the event
//! queue gives, so a replayed schedule is bit-for-bit reproducible.

use crate::time::SimTime;

/// A pre-written, time-ordered sequence of `(instant, entry)` pairs.
#[derive(Debug, Clone)]
pub struct Timeline<E> {
    /// Entries kept sorted by `(time, insertion index)`.
    entries: Vec<(SimTime, u64, E)>,
    next_idx: u64,
    sorted: bool,
}

impl<E> Default for Timeline<E> {
    fn default() -> Self {
        Timeline::new()
    }
}

impl<E> Timeline<E> {
    /// An empty timeline.
    pub fn new() -> Timeline<E> {
        Timeline {
            entries: Vec::new(),
            next_idx: 0,
            sorted: true,
        }
    }

    /// Adds an entry at `at`. Entries may be added in any order; the
    /// timeline sorts lazily, keeping insertion order among equal times.
    pub fn push(&mut self, at: SimTime, entry: E) {
        let idx = self.next_idx;
        self.next_idx += 1;
        if let Some((last, li, _)) = self.entries.last() {
            if (*last, *li) > (at, idx) {
                self.sorted = false;
            }
        }
        self.entries.push((at, idx, entry));
    }

    /// Number of entries remaining.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The instant of the earliest remaining entry.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.ensure_sorted();
        self.entries.first().map(|(t, _, _)| *t)
    }

    /// Removes and returns the earliest remaining entry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_sorted();
        if self.entries.is_empty() {
            return None;
        }
        let (t, _, e) = self.entries.remove(0);
        Some((t, e))
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Stable key: time first, then insertion index.
            self.entries.sort_by_key(|(t, i, _)| (*t, *i));
            self.sorted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn pops_in_time_order_regardless_of_insertion_order() {
        let mut tl = Timeline::new();
        tl.push(ms(30), "c");
        tl.push(ms(10), "a");
        tl.push(ms(20), "b");
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.next_time(), Some(ms(10)));
        assert_eq!(tl.pop(), Some((ms(10), "a")));
        assert_eq!(tl.pop(), Some((ms(20), "b")));
        assert_eq!(tl.pop(), Some((ms(30), "c")));
        assert_eq!(tl.pop(), None);
        assert!(tl.is_empty());
    }

    #[test]
    fn equal_instants_keep_insertion_order() {
        let mut tl = Timeline::new();
        tl.push(ms(5), 1);
        tl.push(ms(5), 2);
        tl.push(ms(1), 0);
        tl.push(ms(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| tl.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
