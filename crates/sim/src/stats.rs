//! Streaming statistics for the measurement harness.

use std::fmt;

use crate::time::SimDuration;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// The paper reports per-operation times obtained by running an operation
/// N (typically 1000) times and dividing; the harness additionally records
/// per-trial spread through this accumulator, which the original authors
/// could not easily do with a ±10 ms software clock.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds a duration observation, recorded in milliseconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// Fixed-width linear histogram, used for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` bins of `width` starting at `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `buckets == 0`.
    pub fn new(lo: f64, width: f64, buckets: usize) -> Self {
        assert!(width > 0.0 && buckets > 0, "invalid histogram shape");
        Histogram {
            lo,
            width,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of observations below range / above range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && self.underflow > 0 {
            return self.lo;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * self.width;
            }
        }
        self.lo + self.width * self.buckets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn push_duration_records_millis() {
        let mut s = OnlineStats::new();
        s.push_duration(SimDuration::from_micros(2500));
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_basic() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 11.0] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(9), 1);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.1);
        }
        let median = h.quantile(0.5);
        assert!((median - 49.5).abs() <= 1.0, "median={median}");
        assert_eq!(h.quantile(0.0), 0.5);
    }
}
