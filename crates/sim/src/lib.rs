//! Deterministic discrete-event simulation engine.
//!
//! This crate provides the substrate on which the whole V kernel
//! reproduction runs:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time;
//! * [`EventQueue`] — a time-ordered event queue with deterministic
//!   tie-breaking (events scheduled at the same instant pop in scheduling
//!   order), exposing engine throughput counters as [`SimStats`];
//! * [`SplitMix64`] — a tiny, fast, seedable PRNG used for fault injection
//!   and workload generation so every run is reproducible;
//! * [`OnlineStats`] / [`Histogram`] — streaming statistics used by the
//!   measurement harness;
//! * [`Timeline`] — a pre-written, replayable script of externally
//!   injected events (the substrate of the chaos fault schedules).
//!
//! The engine is intentionally single-threaded: the paper's evaluation
//! depends on precise ordering of sub-millisecond events across simulated
//! hosts, and determinism is worth far more here than parallel speedup.

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;

pub use queue::{EventQueue, SimStats};
pub use rng::SplitMix64;
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use timeline::Timeline;
