//! Virtual time for the simulator.
//!
//! Time is represented as an integer number of nanoseconds since simulation
//! start. Nanosecond resolution comfortably covers the paper's measurement
//! scale (tens of microseconds up to hundreds of milliseconds) without any
//! floating-point accumulation error in the event queue.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as "never" for idle timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Negative inputs clamp to zero; the cost model never produces them,
    /// but calibration arithmetic on user-supplied parameters might.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1e6).round() as u64)
        }
    }

    /// Creates a duration from fractional microseconds (clamped at zero).
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((us * 1e3).round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Duration scaled by an integer factor.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_millis_f64(), 2.0);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_nanos(), 500_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!(t + d, SimTime::from_millis(14));
        assert_eq!(t - d, SimTime::from_millis(6));
        assert_eq!(t - SimTime::from_millis(4), SimDuration::from_millis(6));
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
        assert_eq!(d + d, SimDuration::from_millis(8));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn max_of_instants() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats_milliseconds() {
        assert_eq!(format!("{}", SimTime::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.250ms");
    }
}
