//! Property tests for the simulation engine.

use proptest::prelude::*;
use v_sim::{EventQueue, OnlineStats, SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, and same-time
    /// events pop in scheduling order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "same-time events must be FIFO");
                }
            }
            prop_assert_eq!(t, SimTime::from_nanos(times[idx]));
            last = Some((t, idx));
        }
        prop_assert_eq!(q.now(), SimTime::from_nanos(*times.iter().max().unwrap()));
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging partitions equals processing the concatenation.
    #[test]
    fn stats_merge_is_concatenation(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        ys in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let mut whole = OnlineStats::new();
        for &x in xs.iter().chain(&ys) {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs { a.push(x); }
        for &y in &ys { b.push(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs()
            < 1e-7 * whole.variance().abs().max(1.0));
    }

    /// Duration arithmetic is consistent with nanosecond arithmetic.
    #[test]
    fn duration_arithmetic(a in 0u64..1u64<<40, b in 0u64..1u64<<40, k in 0u64..1000) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!((da - db).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!((da * k).as_nanos(), a * k);
        let t = SimTime::from_nanos(a) + db;
        prop_assert_eq!(t.as_nanos(), a + b);
        prop_assert_eq!((t - SimTime::from_nanos(a)).as_nanos(), b);
    }
}
