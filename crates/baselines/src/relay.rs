//! The process-level network-server architecture (§3, implementation
//! issue 1).
//!
//! "Remote operations are implemented directly in the kernel instead of
//! through a process-level network server. ... The alternative approach
//! whereby the kernel relays a remote request to a network server who
//! then proceeds to write the packet out on the network incurs a heavy
//! penalty in extra copying and process switching. (We measured a factor
//! of four increase in the remote message exchange time.)"
//!
//! This module builds that rejected architecture: a relay process on each
//! workstation. A client sends to its *local* relay; the relay forwards
//! over the network to the peer relay (itself a full kernel-level remote
//! exchange); the peer relay delivers to the target with another local
//! exchange, and replies flow back the same way. On top of the two extra
//! local exchanges, each relay charges user-level packet handling
//! (buffer copies in and out of the server's address space, queue
//! management) per hop — [`RELAY_HANDLING_8MHZ`], calibrated so the
//! composite lands at the paper's observed ~4x. The structural hops are
//! modeled exactly; only the per-hop copying constant is fitted, since
//! the paper reports no breakdown of its prototype.

use v_kernel::{Api, CpuSpeed, Message, Outcome, Pid, Program};
use v_sim::SimDuration;

use v_workloads::measure::{Probe, RunReport};

/// User-level packet handling cost per relay traversal at 8 MHz (both
/// directions pass both relays, so four traversals per exchange).
pub const RELAY_HANDLING_8MHZ: SimDuration = SimDuration::from_micros(1750);

/// Relay handling cost scaled for a CPU grade.
pub fn relay_handling(speed: CpuSpeed) -> SimDuration {
    match speed {
        CpuSpeed::Mc68000At8MHz => RELAY_HANDLING_8MHZ,
        CpuSpeed::Mc68000At10MHz => {
            SimDuration::from_nanos((RELAY_HANDLING_8MHZ.as_nanos() as f64 * 0.77) as u64)
        }
    }
}

/// A user-level network server: forwards messages to a peer relay (or
/// the final destination) and shuttles replies back.
///
/// Message convention: words 4..8 carry the final destination pid on the
/// outbound path; the relay rewrites nothing on the way back.
pub struct Relay {
    /// Next hop: `None` on the destination side (deliver to the target
    /// pid embedded in the message), `Some(peer)` on the client side.
    pub peer: Option<Pid>,
    /// Per-traversal user-level handling cost.
    pub handling: SimDuration,
    client: Option<Pid>,
    buffered: Option<Message>,
    phase: Phase,
}

/// Which user-level copy the relay is currently charging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Copying the request into the server's buffers before forwarding.
    CopyIn,
    /// Copying the reply out of the server's buffers before replying.
    CopyOut,
}

impl Relay {
    /// Creates a relay; `peer` as in [`Relay::peer`].
    pub fn new(peer: Option<Pid>, handling: SimDuration) -> Relay {
        Relay {
            peer,
            handling,
            client: None,
            buffered: None,
            phase: Phase::CopyIn,
        }
    }
}

impl Program for Relay {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                // Buffer the packet into our space, then forward.
                self.client = Some(from);
                self.buffered = Some(msg);
                self.phase = Phase::CopyIn;
                api.compute(self.handling);
            }
            Outcome::Compute => match self.phase {
                Phase::CopyIn => {
                    let msg = self.buffered.take().expect("request buffered");
                    let next = match self.peer {
                        Some(peer) => peer,
                        None => Pid::from_raw(msg.get_u32(4)).expect("valid target pid"),
                    };
                    api.send(msg, next);
                }
                Phase::CopyOut => {
                    let reply = self.buffered.take().expect("reply buffered");
                    let client = self.client.take().expect("have client");
                    let _ = api.reply(reply, client);
                    api.receive();
                }
            },
            Outcome::Send(Ok(reply)) => {
                // Copy the reply back out through our buffers.
                self.buffered = Some(reply);
                self.phase = Phase::CopyOut;
                api.compute(self.handling);
            }
            Outcome::Send(Err(_)) => {
                if let Some(client) = self.client.take() {
                    let _ = api.reply(Message::empty(), client);
                }
                api.receive();
            }
            _ => api.receive(),
        }
    }
}

/// Client that performs `n` exchanges with `target` *via* its local
/// relay.
pub struct RelayedPinger {
    /// Local relay process.
    pub relay: Pid,
    /// Final destination (embedded in the message for the far relay).
    pub target: Pid,
    /// Exchanges to perform.
    pub n: u64,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
    done: u64,
}

impl RelayedPinger {
    /// Creates a relayed pinger.
    pub fn new(relay: Pid, target: Pid, n: u64, report: Probe<RunReport>) -> RelayedPinger {
        RelayedPinger {
            relay,
            target,
            n,
            report,
            done: 0,
        }
    }

    fn send_next(&self, api: &mut Api<'_>) {
        let mut m = Message::empty();
        m.set_u32(4, self.target.raw());
        api.send(m, self.relay);
    }
}

impl Program for RelayedPinger {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                self.report.borrow_mut().started = Some(api.now());
                self.send_next(api);
            }
            Outcome::Send(Ok(_)) => {
                self.done += 1;
                self.report.borrow_mut().iterations += 1;
                if self.done < self.n {
                    self.send_next(api);
                } else {
                    self.report.borrow_mut().finished = Some(api.now());
                    api.exit();
                }
            }
            _ => {
                let mut r = self.report.borrow_mut();
                r.failures += 1;
                r.finished = Some(api.now());
                drop(r);
                api.exit();
            }
        }
    }
}

/// Measures `n` relayed exchanges on a 2-host cluster; returns ms/op.
pub fn measure_relayed_exchange(speed: CpuSpeed, n: u64) -> f64 {
    use v_kernel::{Cluster, ClusterConfig, HostId};
    use v_workloads::echo::EchoServer;
    use v_workloads::measure::probe;

    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, speed));
    let handling = relay_handling(speed);
    let target = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
    let far_relay = cl.spawn(HostId(1), "relay-b", Box::new(Relay::new(None, handling)));
    let near_relay = cl.spawn(
        HostId(0),
        "relay-a",
        Box::new(Relay::new(Some(far_relay), handling)),
    );
    cl.run();
    let rep = probe(RunReport::default());
    cl.spawn(
        HostId(0),
        "relayed-ping",
        Box::new(RelayedPinger::new(near_relay, target, n, rep.clone())),
    );
    cl.run();
    let r = rep.borrow();
    assert!(r.clean(), "{:?}", *r);
    r.per_op_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relayed_exchange_is_several_times_slower() {
        let relayed = measure_relayed_exchange(CpuSpeed::Mc68000At8MHz, 200);
        // Direct kernel-level remote exchange is ~3.18 ms; the paper
        // measured ~4x through a process-level network server.
        let factor = relayed / 3.18;
        assert!(
            (3.0..5.0).contains(&factor),
            "relay factor = {factor:.2} ({relayed:.2} ms)"
        );
    }
}
