//! Baseline comparators from the paper's related-work discussion.
//!
//! The paper's central performance claim is *comparative*: general-purpose
//! V IPC file access costs about the same as specialized alternatives.
//! This crate implements those alternatives so the claim can be measured
//! rather than asserted:
//!
//! * [`wfs`] — a WFS/LOCUS-style **specialized page-level file access
//!   protocol**: two raw datagrams per page, minimal processing. This is
//!   the "problem-oriented" lower bound V IPC is compared against.
//! * [`streaming`] — a **windowed streaming** file-read protocol with
//!   client-side buffering, the conventional way to hide network latency
//!   in sequential access (§6.2 argues it buys ≤ 15 %).
//! * [`relay`] — the **process-level network server** architecture the
//!   paper rejected in §3 ("a factor of four increase in the remote
//!   message exchange time"): remote sends hop through user-level relay
//!   processes instead of being handled in the kernel.
//!
//! The fourth comparison of §3 — IP encapsulation of interkernel packets
//! (~20 % slower) — needs no code here: it is a kernel configuration
//! (`Encapsulation::Ip` in `v-kernel`).

pub mod relay;
pub mod streaming;
pub mod wfs;
