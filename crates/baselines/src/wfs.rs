//! WFS-style specialized page-level file access.
//!
//! "To read a page ... this requires 4 packet transmissions ... double
//! the number of packets required by a specialized page-level file access
//! protocol as used, for instance, in LOCUS or WFS." (§3.4.) The V
//! kernel's segment extensions get back down to two packets; this module
//! implements the specialized two-packet protocol itself, integrated
//! directly at the data-link level, as the lower-bound comparator.
//!
//! Wire format (little-endian):
//!
//! * request: `[op u8, pad u8, page u16, count u32, tag u32]`
//! * reply:   `[op|0x80 u8, status u8, page u16, count u32, tag u32, data…]`

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::raw::{RawCtx, RawHandler};
use v_net::{Frame, MacAddr};
use v_sim::{SimDuration, SimTime};

/// Read-page opcode.
const OP_READ: u8 = 1;
/// Write-page opcode.
const OP_WRITE: u8 = 2;
/// Reply flag bit.
const REPLY: u8 = 0x80;

fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}
fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Fixed request/reply header length.
const HDR: usize = 12;

/// Serves pages from an in-memory store (the comparator measures protocol
/// cost, not disks — same as Table 6-1).
pub struct WfsServer {
    /// Page size in bytes.
    pub page_size: usize,
    /// Pattern served.
    pub pattern: u8,
    /// Per-request processing cost (the "well-tuned" server's software
    /// path; deliberately lean).
    pub service_cost: SimDuration,
}

impl WfsServer {
    /// A lean server with the given page size.
    pub fn new(page_size: usize, pattern: u8) -> WfsServer {
        WfsServer {
            page_size,
            pattern,
            service_cost: SimDuration::from_micros(300),
        }
    }
}

impl RawHandler for WfsServer {
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame) {
        if frame.payload.len() < HDR {
            return;
        }
        let op = frame.payload[0];
        let page = get_u16(&frame.payload, 2);
        let count = get_u32(&frame.payload, 4) as usize;
        let tag = get_u32(&frame.payload, 8);
        ctx.charge(self.service_cost);
        match op {
            OP_READ => {
                let n = count.min(self.page_size);
                let mut reply = vec![0u8; HDR + n];
                reply[0] = OP_READ | REPLY;
                reply[1] = 0;
                put_u16(&mut reply, 2, page);
                put_u32(&mut reply, 4, n as u32);
                put_u32(&mut reply, 8, tag);
                reply[HDR..].fill(self.pattern);
                ctx.send_frame(frame.src, reply);
            }
            OP_WRITE => {
                let n = frame.payload.len() - HDR;
                let mut reply = vec![0u8; HDR];
                reply[0] = OP_WRITE | REPLY;
                reply[1] = 0;
                put_u16(&mut reply, 2, page);
                put_u32(&mut reply, 4, n as u32);
                put_u32(&mut reply, 8, tag);
                ctx.send_frame(frame.src, reply);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut dyn RawCtx, _token: u64) {}
}

/// Shared measurement state of a [`WfsClient`] run.
#[derive(Debug, Default)]
pub struct WfsState {
    /// Completed operations.
    pub done: u64,
    /// Target operations.
    pub target: u64,
    /// Loop start.
    pub started: Option<SimTime>,
    /// Loop end.
    pub finished: Option<SimTime>,
    /// Short or corrupt replies.
    pub integrity_errors: u64,
}

impl WfsState {
    /// Elapsed milliseconds per completed operation.
    pub fn per_op_ms(&self) -> f64 {
        if self.done == 0 {
            return 0.0;
        }
        let s = self.started.expect("started");
        let f = self.finished.expect("finished");
        f.since(s).as_millis_f64() / self.done as f64
    }
}

/// Issues back-to-back page reads or writes against a [`WfsServer`].
pub struct WfsClient {
    /// Server station.
    pub server: MacAddr,
    /// True for reads, false for writes.
    pub reads: bool,
    /// Page size in bytes.
    pub page_size: usize,
    /// Shared state.
    pub state: Rc<RefCell<WfsState>>,
}

impl WfsClient {
    fn request(&self, ctx: &mut dyn RawCtx, tag: u64) {
        let (op, extra) = if self.reads {
            (OP_READ, 0)
        } else {
            (OP_WRITE, self.page_size)
        };
        let mut req = vec![0u8; HDR + extra];
        req[0] = op;
        put_u16(&mut req, 2, (tag & 0xFFFF) as u16);
        put_u32(&mut req, 4, self.page_size as u32);
        put_u32(&mut req, 8, tag as u32);
        if extra > 0 {
            req[HDR..].fill(0xBB);
        }
        ctx.send_frame(self.server, req);
    }
}

impl RawHandler for WfsClient {
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame) {
        {
            let mut st = self.state.borrow_mut();
            if frame.payload.len() < HDR
                || frame.payload[0] & REPLY == 0
                || (self.reads && frame.payload.len() != HDR + self.page_size)
            {
                st.integrity_errors += 1;
            }
            st.done += 1;
            st.finished = Some(ctx.now());
        }
        let (done, target) = {
            let st = self.state.borrow();
            (st.done, st.target)
        };
        if done < target {
            self.request(ctx, done);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn RawCtx, _token: u64) {
        self.state.borrow_mut().started = Some(ctx.now());
        self.request(ctx, 0);
    }
}

/// Runs `rounds` specialized-protocol page operations between hosts 0
/// (client) and 1 (server); returns ms/op.
pub fn measure_wfs(
    cluster: &mut v_kernel::Cluster,
    reads: bool,
    page_size: usize,
    rounds: u64,
) -> (f64, Rc<RefCell<WfsState>>) {
    use v_kernel::HostId;
    use v_net::EtherType;
    let state = Rc::new(RefCell::new(WfsState {
        target: rounds,
        ..WfsState::default()
    }));
    let server_mac = cluster.mac(HostId(1));
    cluster.register_raw_handler(
        HostId(1),
        EtherType::WFS,
        Box::new(WfsServer::new(page_size, 0x7E)),
    );
    cluster.register_raw_handler(
        HostId(0),
        EtherType::WFS,
        Box::new(WfsClient {
            server: server_mac,
            reads,
            page_size,
            state: state.clone(),
        }),
    );
    cluster.poke_raw_handler(HostId(0), EtherType::WFS, 0, SimDuration::ZERO);
    cluster.run();
    let ms = state.borrow().per_op_ms();
    (ms, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed};

    #[test]
    fn wfs_read_completes_and_beats_v_ipc_slightly() {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let (ms, st) = measure_wfs(&mut cl, true, 512, 200);
        assert_eq!(st.borrow().integrity_errors, 0);
        assert_eq!(st.borrow().done, 200);
        // Two-packet protocol with minimal processing: must sit between
        // the raw network penalty (~4.0 ms for 64+576 byte datagrams at
        // 10 MHz) and the V IPC page read (~5.6 ms).
        assert!((3.8..5.6).contains(&ms), "wfs read = {ms:.2} ms");
    }

    #[test]
    fn wfs_write_completes() {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let (ms, st) = measure_wfs(&mut cl, false, 512, 200);
        assert_eq!(st.borrow().integrity_errors, 0);
        assert!((3.8..5.6).contains(&ms), "wfs write = {ms:.2} ms");
    }
}
