//! A windowed streaming file-read protocol (the §6.2 comparator).
//!
//! Conventional systems hide network latency in sequential file access by
//! streaming: the server pushes pages ahead of the reader into a
//! client-side buffer pool. The paper argues (§6.2) this buys at most
//! 10–20 % over V's synchronous request-response because (a) local-net
//! latency is small, (b) the disk dominates, and (c) streaming adds
//! buffering copies and protocol overhead. This module implements such a
//! protocol so the claim is measured, not asserted.
//!
//! Shape: the client opens a stream (file of `n` pages, window `w`); the
//! server streams data pages, each gated on a per-page disk latency and
//! on window credit; the client acknowledges cumulatively as the
//! application *consumes* pages. Each consumed page pays one extra
//! buffer-to-user copy — the cost the paper attributes to streaming that
//! the V path does not pay (its data lands in the user buffer directly).
//!
//! Wire format: `[kind u8, pad u8, seq u16, count u32]` + data for pages.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::raw::{RawCtx, RawHandler};
use v_net::{Frame, MacAddr};
use v_sim::{SimDuration, SimTime};

const K_OPEN: u8 = 1;
const K_PAGE: u8 = 2;
const K_ACK: u8 = 3;

fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}
fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

const HDR: usize = 8;

/// Timer token: a page became ready off the simulated disk.
const TOK_DISK: u64 = 1;
/// Timer token: the client application consumed a page.
const TOK_CONSUME: u64 = 2;

/// Streaming file server: pushes pages as the disk yields them and the
/// window allows.
pub struct StreamServer {
    /// Page size in bytes.
    pub page_size: usize,
    /// Per-page disk latency.
    pub disk_latency: SimDuration,
    /// Fill pattern.
    pub pattern: u8,
    client: Option<MacAddr>,
    total: u16,
    window: u16,
    next_ready: u16, // pages the disk has produced
    next_sent: u16,  // pages pushed to the client
    acked: u16,      // cumulative ack from the client
    disk_busy: bool,
}

impl StreamServer {
    /// Creates a streaming server.
    pub fn new(page_size: usize, disk_latency: SimDuration, pattern: u8) -> StreamServer {
        StreamServer {
            page_size,
            disk_latency,
            pattern,
            client: None,
            total: 0,
            window: 0,
            next_ready: 0,
            next_sent: 0,
            acked: 0,
            disk_busy: false,
        }
    }

    fn pump(&mut self, ctx: &mut dyn RawCtx) {
        // Push every page that is both disk-ready and within the window.
        while self.next_sent < self.next_ready && self.next_sent < self.acked + self.window {
            let mut pkt = vec![0u8; HDR + self.page_size];
            pkt[0] = K_PAGE;
            put_u16(&mut pkt, 2, self.next_sent);
            put_u32(&mut pkt, 4, self.page_size as u32);
            pkt[HDR..].fill(self.pattern);
            ctx.send_frame(self.client.expect("stream open"), pkt);
            self.next_sent += 1;
        }
        // Keep the disk busy fetching the next page.
        if !self.disk_busy && self.next_ready < self.total {
            self.disk_busy = true;
            ctx.set_timer(self.disk_latency, TOK_DISK);
        }
    }
}

impl RawHandler for StreamServer {
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame) {
        if frame.payload.len() < HDR {
            return;
        }
        match frame.payload[0] {
            K_OPEN => {
                self.client = Some(frame.src);
                self.total = get_u16(&frame.payload, 2);
                self.window = get_u32(&frame.payload, 4) as u16;
                self.next_ready = 0;
                self.next_sent = 0;
                self.acked = 0;
                self.disk_busy = false;
                self.pump(ctx);
            }
            K_ACK => {
                self.acked = get_u16(&frame.payload, 2);
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn RawCtx, token: u64) {
        if token == TOK_DISK {
            self.disk_busy = false;
            self.next_ready += 1;
            self.pump(ctx);
        }
    }
}

/// Shared measurement state of a streaming read.
#[derive(Debug, Default)]
pub struct StreamState {
    /// Pages consumed by the application.
    pub consumed: u64,
    /// Pages requested.
    pub target: u64,
    /// Start of the stream.
    pub started: Option<SimTime>,
    /// Last consumption.
    pub finished: Option<SimTime>,
    /// Bad pages.
    pub integrity_errors: u64,
}

impl StreamState {
    /// Elapsed milliseconds per consumed page.
    pub fn per_page_ms(&self) -> f64 {
        if self.consumed == 0 {
            return 0.0;
        }
        let s = self.started.expect("started");
        let f = self.finished.expect("finished");
        f.since(s).as_millis_f64() / self.consumed as f64
    }
}

/// Streaming client: buffers arriving pages, consumes them in order at
/// application speed, acknowledges cumulatively.
pub struct StreamClient {
    /// Server station.
    pub server: MacAddr,
    /// Page size in bytes.
    pub page_size: usize,
    /// Pages to read.
    pub total: u16,
    /// Window (buffer pool size in pages).
    pub window: u16,
    /// Application think time per page (zero = consume immediately).
    pub think: SimDuration,
    /// Extra per-page buffer-to-user copy cost (per byte).
    pub copy_per_byte: SimDuration,
    /// Shared state.
    pub state: Rc<RefCell<StreamState>>,
    buffered: u16, // highest in-order page received
    next_consume: u16,
    consuming: bool,
}

impl StreamClient {
    /// Creates a streaming client.
    pub fn new(
        server: MacAddr,
        page_size: usize,
        total: u16,
        window: u16,
        think: SimDuration,
        copy_per_byte: SimDuration,
        state: Rc<RefCell<StreamState>>,
    ) -> StreamClient {
        StreamClient {
            server,
            page_size,
            total,
            window,
            think,
            copy_per_byte,
            state,
            buffered: 0,
            next_consume: 0,
            consuming: false,
        }
    }

    fn try_consume(&mut self, ctx: &mut dyn RawCtx) {
        if self.consuming || self.next_consume >= self.buffered {
            return;
        }
        self.consuming = true;
        // The application "reads" the page: one buffer-to-user copy now,
        // then its think time.
        let copy = SimDuration::from_nanos(self.copy_per_byte.as_nanos() * self.page_size as u64);
        ctx.charge(copy);
        if self.think.is_zero() {
            self.finish_page(ctx);
        } else {
            ctx.set_timer(self.think, TOK_CONSUME);
        }
    }

    fn finish_page(&mut self, ctx: &mut dyn RawCtx) {
        self.consuming = false;
        self.next_consume += 1;
        {
            let mut st = self.state.borrow_mut();
            st.consumed += 1;
            st.finished = Some(ctx.now());
        }
        // Cumulative ack opens the window.
        let mut ack = vec![0u8; HDR];
        ack[0] = K_ACK;
        put_u16(&mut ack, 2, self.next_consume);
        ctx.send_frame(self.server, ack);
        self.try_consume(ctx);
    }
}

impl RawHandler for StreamClient {
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame) {
        if frame.payload.len() < HDR || frame.payload[0] != K_PAGE {
            return;
        }
        let seq = get_u16(&frame.payload, 2);
        if frame.payload.len() != HDR + self.page_size {
            self.state.borrow_mut().integrity_errors += 1;
        }
        if seq == self.buffered {
            self.buffered += 1;
        }
        self.try_consume(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn RawCtx, token: u64) {
        match token {
            TOK_CONSUME => self.finish_page(ctx),
            _ => {
                // Kick-off: open the stream.
                self.state.borrow_mut().started = Some(ctx.now());
                let mut open = vec![0u8; HDR];
                open[0] = K_OPEN;
                put_u16(&mut open, 2, self.total);
                put_u32(&mut open, 4, self.window as u32);
                ctx.send_frame(self.server, open);
            }
        }
    }
}

/// Runs a streaming read of `pages` pages between hosts 0 (client) and 1
/// (server); returns ms per page consumed.
pub fn measure_streaming(
    cluster: &mut v_kernel::Cluster,
    pages: u16,
    disk_latency: SimDuration,
    think: SimDuration,
) -> (f64, Rc<RefCell<StreamState>>) {
    use v_kernel::HostId;
    use v_net::EtherType;
    let state = Rc::new(RefCell::new(StreamState {
        target: pages as u64,
        ..StreamState::default()
    }));
    let server_mac = cluster.mac(HostId(1));
    // The extra copy uses the client CPU's memory-copy rate.
    let copy_per_byte =
        v_kernel::CostModel::for_speed(v_kernel::CpuSpeed::Mc68000At10MHz).copy_mem_per_byte;
    cluster.register_raw_handler(
        HostId(1),
        EtherType::STREAMING,
        Box::new(StreamServer::new(512, disk_latency, 0x7E)),
    );
    cluster.register_raw_handler(
        HostId(0),
        EtherType::STREAMING,
        Box::new(StreamClient::new(
            server_mac,
            512,
            pages,
            8,
            think,
            copy_per_byte,
            state.clone(),
        )),
    );
    cluster.poke_raw_handler(HostId(0), EtherType::STREAMING, 0, SimDuration::ZERO);
    cluster.run();
    let ms = state.borrow().per_page_ms();
    (ms, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz))
    }

    #[test]
    fn streaming_approaches_the_disk_floor() {
        let mut cl = cluster();
        let (ms, st) = measure_streaming(
            &mut cl,
            200,
            SimDuration::from_millis(15),
            SimDuration::ZERO,
        );
        assert_eq!(st.borrow().integrity_errors, 0);
        assert_eq!(st.borrow().consumed, 200);
        // Streaming hides everything but the disk (+ copy): close to 15.
        assert!((15.0..16.5).contains(&ms), "streaming = {ms:.2}");
    }

    #[test]
    fn streaming_gain_over_v_is_bounded() {
        // V request-response sequential access measured ~17.1 ms/page at
        // 15 ms disk latency (Table 6-2); streaming must not beat it by
        // more than ~15 %.
        let mut cl = cluster();
        let (ms, _) = measure_streaming(
            &mut cl,
            200,
            SimDuration::from_millis(15),
            SimDuration::ZERO,
        );
        let v_ms = 17.13;
        let gain = (v_ms - ms) / v_ms;
        assert!(gain < 0.15, "streaming gain {gain:.2} exceeds paper bound");
        assert!(gain > 0.0, "streaming should still win slightly");
    }
}
