//! The pluggable transport boundary.
//!
//! The kernel's protocol engine emits frames and consumes deliveries; it
//! never cares *what* carries them. [`Transport`] captures exactly that
//! contract — attach stations, transmit frames, poll for deliveries a
//! forwarding element produced, read statistics — so the shared Ethernet
//! of the paper, a point-to-point WAN link and a gatewayed internetwork
//! are interchangeable beneath the dispatch boundary.

use v_sim::SimTime;

use crate::fault::FaultPlan;
use crate::frame::{Frame, MacAddr};
use crate::internet::{Internetwork, InternetworkConfig, MeshConfig};
use crate::link::{LinkParams, PointToPointLink};
use crate::medium::{CollisionBug, Delivery, Ethernet, MediumStats, NetworkKind, TxWindow};

/// Statistics of one store-and-forward element inside a transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames forwarded onto another segment (one count per egress copy).
    pub forwarded: u64,
    /// Ingress frames discarded because the bounded queue was full.
    pub queue_drops: u64,
    /// Ingress frames discarded because they arrived corrupted (a real
    /// gateway's link-level CRC check rejects them before forwarding).
    pub corrupt_drops: u64,
    /// Largest number of frames ever waiting in the queue at once.
    pub max_queue: usize,
    /// Forwards that skipped the per-frame processing delay because the
    /// frame was queued behind another bound for the same egress segment
    /// (batched header processing — [`MeshConfig::coalesce`]).
    pub coalesced: u64,
}

impl GatewayStats {
    /// Accumulates another gateway's counters into this one (used to
    /// total a multi-gateway mesh). Counters add; `max_queue` takes the
    /// worst single gateway.
    pub fn absorb(&mut self, o: &GatewayStats) {
        let GatewayStats {
            forwarded,
            queue_drops,
            corrupt_drops,
            max_queue,
            coalesced,
        } = *o;
        self.forwarded += forwarded;
        self.queue_drops += queue_drops;
        self.corrupt_drops += corrupt_drops;
        self.max_queue = self.max_queue.max(max_queue);
        self.coalesced += coalesced;
    }
}

/// A medium that moves frames between attached stations.
///
/// A transmission returns its transmit window and **appends** the
/// deliveries it directly produces into a caller-owned scratch vector —
/// the hot path of the whole simulation, so a 1000-receiver broadcast
/// costs no per-transmit allocation beyond the frames themselves.
/// Transports with a forwarding element (gateways) additionally
/// accumulate *forwarded* deliveries, which callers drain with
/// [`Transport::poll_deliveries`] after each transmit. Every delivery
/// carries its own arrival instant, so callers simply schedule them —
/// ordering is the event queue's job.
pub trait Transport {
    /// Registers a station with the medium. `segment` places the station
    /// on a topology with more than one (ignored by single-segment
    /// transports).
    fn attach(&mut self, mac: MacAddr, segment: usize);

    /// Transmits `frame`, whose copy into the sending interface
    /// completed at `ready`, appending the resulting deliveries to
    /// `out` (callers reuse the buffer across transmissions).
    fn transmit(&mut self, ready: SimTime, frame: Frame, out: &mut Vec<Delivery>) -> TxWindow;

    /// Drains deliveries produced by forwarding since the last call into
    /// `out`. Single-hop transports append nothing.
    fn poll_deliveries(&mut self, out: &mut Vec<Delivery>);

    /// Aggregate medium statistics (summed across segments for
    /// multi-segment topologies).
    fn stats(&self) -> MediumStats;

    /// Largest payload a frame may carry end to end.
    fn max_payload(&self) -> usize;

    /// Installs a fault plan, applied per delivery (on every segment for
    /// multi-segment topologies).
    fn set_faults(&mut self, plan: FaultPlan);

    /// Enables the §5.4 collision-detection hardware bug on transports
    /// that model a shared medium; a no-op elsewhere.
    fn set_collision_bug(&mut self, _bug: Option<CollisionBug>) {}

    /// Aggregate statistics of the forwarding elements, for transports
    /// that have any (summed across gateways on a mesh).
    fn gateway_stats(&self) -> Option<GatewayStats> {
        None
    }

    /// Per-gateway statistics, one entry per gateway in placement order.
    /// Empty for transports without a forwarding element.
    fn per_gateway_stats(&self) -> Vec<GatewayStats> {
        Vec::new()
    }

    /// Takes forwarding element `idx` out of service (its queue is lost;
    /// routes recompute without it, possibly partitioning the topology).
    /// Returns false on transports without one, for an unknown index, or
    /// if it is already down.
    fn fail_gateway(&mut self, _idx: usize) -> bool {
        false
    }

    /// Returns forwarding element `idx` to service and recomputes
    /// routes. Returns false on transports without one, for an unknown
    /// index, or if it is already up.
    fn restore_gateway(&mut self, _idx: usize) -> bool {
        false
    }
}

/// A buildable description of a network topology — the configuration
/// counterpart of [`Transport`].
#[derive(Debug, Clone)]
pub enum Topology {
    /// One shared Ethernet segment (the paper's world).
    SingleSegment(NetworkKind),
    /// A point-to-point WAN link between exactly two stations.
    PointToPoint(LinkParams),
    /// Ethernet segments joined by one store-and-forward gateway (a
    /// star — shorthand for a one-gateway [`Topology::Mesh`]).
    Internetwork(InternetworkConfig),
    /// Ethernet segments joined by a routed mesh of explicitly-placed
    /// gateways.
    Mesh(MeshConfig),
}

impl Topology {
    /// Builds the transport this topology describes.
    pub fn build(&self, seed: u64) -> Box<dyn Transport> {
        match self {
            Topology::SingleSegment(kind) => Box::new(Ethernet::for_kind(*kind, seed)),
            Topology::PointToPoint(params) => Box::new(PointToPointLink::new(*params, seed)),
            Topology::Internetwork(cfg) => Box::new(Internetwork::new(cfg.clone(), seed)),
            Topology::Mesh(cfg) => Box::new(Internetwork::new(cfg.clone(), seed)),
        }
    }

    /// Number of distinct segments hosts can be placed on.
    pub fn num_segments(&self) -> usize {
        match self {
            Topology::SingleSegment(_) | Topology::PointToPoint(_) => 1,
            Topology::Internetwork(cfg) => cfg.segments.len(),
            Topology::Mesh(cfg) => cfg.segments.len(),
        }
    }
}

impl Transport for Ethernet {
    fn attach(&mut self, mac: MacAddr, _segment: usize) {
        self.register(mac);
    }

    fn transmit(&mut self, ready: SimTime, frame: Frame, out: &mut Vec<Delivery>) -> TxWindow {
        Ethernet::transmit_into(self, ready, frame, out)
    }

    fn poll_deliveries(&mut self, _out: &mut Vec<Delivery>) {}

    fn stats(&self) -> MediumStats {
        Ethernet::stats(self)
    }

    fn max_payload(&self) -> usize {
        self.params().max_payload
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        Ethernet::set_faults(self, plan);
    }

    fn set_collision_bug(&mut self, bug: Option<CollisionBug>) {
        Ethernet::set_collision_bug(self, bug);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_behind_the_trait_matches_direct_use() {
        let mut t: Box<dyn Transport> =
            Topology::SingleSegment(NetworkKind::Experimental3Mb).build(7);
        t.attach(MacAddr(1), 0);
        t.attach(MacAddr(2), 0);
        let mut out = Vec::new();
        t.transmit(
            SimTime::ZERO,
            Frame::new(
                MacAddr(2),
                MacAddr(1),
                crate::EtherType::RAW_BENCH,
                vec![0; 64],
            ),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        out.clear();
        t.poll_deliveries(&mut out);
        assert!(out.is_empty());
        assert_eq!(t.stats().frames_sent, 1);
        assert_eq!(t.max_payload(), 1100);
        assert!(t.gateway_stats().is_none());
    }
}
