//! Per-frame fault injection.
//!
//! Local networks of the paper's era were unreliable datagram services with
//! *low but nonzero* error rates; the V kernel builds reliable message
//! transmission directly on top (§3). These knobs let tests and experiments
//! dial in loss, duplication and corruption deterministically and verify
//! that the retransmission / duplicate-suppression machinery preserves
//! exactly-once message-exchange semantics.

use v_sim::{SimDuration, SplitMix64};

/// Interval between a frame and its injected duplicate, shared by every
/// transport so duplicate timing is uniform across media.
pub(crate) const REDELIVERY_GAP: SimDuration = SimDuration::from_micros(200);

/// Corrupts a handful of payload bytes so protocol checksums fail —
/// the one corruption model every transport applies.
pub(crate) fn scramble(rng: &mut SplitMix64, payload: &mut [u8]) {
    if payload.is_empty() {
        return;
    }
    let hits = 1 + rng.below(4) as usize;
    for _ in 0..hits {
        let idx = rng.below(payload.len() as u64) as usize;
        payload[idx] ^= (1 + rng.below(255)) as u8;
    }
}

/// Probabilistic fault plan applied to every delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a delivered frame is silently dropped.
    pub loss: f64,
    /// Probability a delivered frame is duplicated (the copy arrives one
    /// redelivery interval later).
    pub duplicate: f64,
    /// Probability a delivered frame has its payload corrupted (caught by
    /// the protocol checksum at the receiver).
    pub corrupt: f64,
}

impl FaultPlan {
    /// A perfectly reliable network.
    pub const NONE: FaultPlan = FaultPlan {
        loss: 0.0,
        duplicate: 0.0,
        corrupt: 0.0,
    };

    /// Convenience constructor for a loss-only plan.
    pub fn with_loss(loss: f64) -> Self {
        FaultPlan {
            loss,
            ..FaultPlan::NONE
        }
    }

    /// True if all fault probabilities are zero.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.corrupt == 0.0
    }

    /// Draws the fate of one delivery.
    pub fn draw(&self, rng: &mut SplitMix64) -> Fate {
        if self.is_none() {
            return Fate::Deliver;
        }
        if rng.chance(self.loss) {
            return Fate::Drop;
        }
        let corrupted = rng.chance(self.corrupt);
        if rng.chance(self.duplicate) {
            Fate::DeliverTwice { corrupted }
        } else if corrupted {
            Fate::DeliverCorrupted
        } else {
            Fate::Deliver
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Outcome of a fault draw for one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver the frame intact.
    Deliver,
    /// Drop the frame.
    Drop,
    /// Deliver with corrupted payload.
    DeliverCorrupted,
    /// Deliver, then deliver a duplicate shortly after.
    DeliverTwice {
        /// Whether the first copy is corrupted.
        corrupted: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_delivers() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(FaultPlan::NONE.draw(&mut rng), Fate::Deliver);
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let plan = FaultPlan::with_loss(1.0);
        let mut rng = SplitMix64::new(2);
        for _ in 0..100 {
            assert_eq!(plan.draw(&mut rng), Fate::Drop);
        }
    }

    #[test]
    fn loss_rate_is_respected() {
        let plan = FaultPlan::with_loss(0.3);
        let mut rng = SplitMix64::new(3);
        let drops = (0..10_000)
            .filter(|_| plan.draw(&mut rng) == Fate::Drop)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn corrupt_only_plan_marks_corruption() {
        let plan = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        };
        let mut rng = SplitMix64::new(4);
        assert_eq!(plan.draw(&mut rng), Fate::DeliverCorrupted);
    }

    #[test]
    fn duplicate_plan_duplicates() {
        let plan = FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::NONE
        };
        let mut rng = SplitMix64::new(5);
        assert_eq!(plan.draw(&mut rng), Fate::DeliverTwice { corrupted: false });
    }
}
