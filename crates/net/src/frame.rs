//! Frames and station addressing.

use std::fmt;

/// A station address on the local network.
///
/// The experimental 3 Mb Ethernet used 8-bit physical addresses — the paper
/// exploits this by embedding the address in the top 8 bits of the logical
/// host identifier. The simulator keeps that exploit intact for stations
/// `1..=0xFE` (their addresses fit a byte, exactly as on the 3 Mb wire) but
/// widens the address space to 16 bits so boot-storm clusters can exceed
/// 255 stations; the 10 Mb "learned table" mode in the kernel treats the
/// address as an opaque station id either way, which is all the protocol
/// requires. Addresses `0xFF00..=0xFFFE` are reserved for internetwork
/// gateways and `0xFFFF` is broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub u16);

impl MacAddr {
    /// The broadcast address: every station except the sender receives the
    /// frame.
    pub const BROADCAST: MacAddr = MacAddr(0xFFFF);

    /// True if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "*")
        } else {
            write!(f, "{:02x}", self.0)
        }
    }
}

/// Data-link protocol discriminator.
///
/// The V kernel uses the "raw" data-link level with its own ethertype; the
/// baseline protocols (WFS-style page access, streaming) register their own
/// so they can coexist on the same simulated wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// Interkernel packets (the V kernel protocol).
    pub const INTERKERNEL: EtherType = EtherType(0x5601);
    /// WFS-style specialized page-level file access baseline.
    pub const WFS: EtherType = EtherType(0x5602);
    /// Streaming file-access baseline.
    pub const STREAMING: EtherType = EtherType(0x5603);
    /// Raw datagrams used by the network-penalty measurement harness.
    pub const RAW_BENCH: EtherType = EtherType(0x5604);
}

/// A network frame.
///
/// `payload` carries the encoded protocol packet. Link-level framing
/// overhead (preamble, CRC, ...) is folded into the medium's fixed
/// per-frame latency, so `payload.len()` is the byte count that pays
/// per-byte copy and wire costs — matching how the paper quotes packet
/// sizes (a 32-byte message rides in a "64-byte" datagram: 32 bytes of
/// message + 32 bytes of interkernel header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination station (possibly broadcast).
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// Protocol discriminator.
    pub ethertype: EtherType,
    /// Encoded protocol packet.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        Frame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Number of payload bytes that pay copy and wire costs.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len()
    }

    /// The payload after `skip` leading encapsulation bytes, or `None`
    /// if the frame is too short to even hold the encapsulation header —
    /// the boundary check receivers perform before handing bytes to a
    /// packet decoder.
    pub fn payload_after(&self, skip: usize) -> Option<&[u8]> {
        self.payload.get(skip..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr(3).is_broadcast());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", MacAddr(0x0a)), "0a");
        assert_eq!(format!("{}", MacAddr::BROADCAST), "*");
    }

    #[test]
    fn payload_after_bounds() {
        let f = Frame::new(
            MacAddr(1),
            MacAddr(2),
            EtherType::INTERKERNEL,
            vec![1, 2, 3],
        );
        assert_eq!(f.payload_after(0), Some(&[1u8, 2, 3][..]));
        assert_eq!(f.payload_after(2), Some(&[3u8][..]));
        assert_eq!(f.payload_after(3), Some(&[][..]));
        assert_eq!(f.payload_after(4), None);
    }

    #[test]
    fn wire_bytes_is_payload_len() {
        let f = Frame::new(
            MacAddr(1),
            MacAddr(2),
            EtherType::INTERKERNEL,
            vec![0u8; 64],
        );
        assert_eq!(f.wire_bytes(), 64);
    }

    #[test]
    fn ethertypes_are_distinct() {
        let tys = [
            EtherType::INTERKERNEL,
            EtherType::WFS,
            EtherType::STREAMING,
            EtherType::RAW_BENCH,
        ];
        for (i, a) in tys.iter().enumerate() {
            for (j, b) in tys.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
