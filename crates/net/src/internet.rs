//! Ethernet segments joined by a store-and-forward gateway.
//!
//! The paper's diskless workstations live on one broadcast segment; this
//! topology is the first step past it — several [`Ethernet`] segments
//! connected through a single gateway host that receives a frame in
//! full on one segment, holds it in a **bounded queue**, and
//! retransmits it on the destination segment (store and forward).
//! Unicast frames whose destination lives on another segment cross the
//! gateway; broadcasts are flooded to every other segment. Corrupted
//! ingress frames are discarded at the gateway (its link-level check
//! rejects them), and frames arriving while the queue is full are
//! dropped — the kernel's retransmission machinery is what recovers
//! both, exactly as it recovers medium loss.

use std::collections::BTreeMap;

use v_sim::{SimDuration, SimTime};

use crate::fault::FaultPlan;
use crate::frame::{Frame, MacAddr};
use crate::medium::{CollisionBug, Delivery, Ethernet, MediumStats, NetworkKind, TxResult};
use crate::transport::{GatewayStats, Transport};

/// Configuration of a gatewayed internetwork.
#[derive(Debug, Clone, PartialEq)]
pub struct InternetworkConfig {
    /// The medium flavour of each segment (index = segment number).
    pub segments: Vec<NetworkKind>,
    /// Bounded gateway queue: frames arriving while this many are
    /// already waiting are dropped.
    pub gateway_queue: usize,
    /// Per-frame store-and-forward processing delay at the gateway.
    pub forward_delay: SimDuration,
}

impl InternetworkConfig {
    /// Two 3 Mb segments behind a gateway with an 8-frame queue and a
    /// 300 µs per-frame forwarding cost.
    pub fn two_segments() -> InternetworkConfig {
        InternetworkConfig {
            segments: vec![NetworkKind::Experimental3Mb; 2],
            gateway_queue: 8,
            forward_delay: SimDuration::from_micros(300),
        }
    }
}

/// The station address the gateway occupies on every segment. Reserved:
/// hosts must not attach with it.
pub const GATEWAY_MAC: MacAddr = MacAddr(0xFE);

/// Ethernet segments joined by one store-and-forward gateway.
#[derive(Debug)]
pub struct Internetwork {
    cfg: InternetworkConfig,
    segments: Vec<Ethernet>,
    /// Station → segment placement (deterministic iteration order).
    placement: BTreeMap<MacAddr, usize>,
    /// Instant the gateway's forwarding engine is next idle.
    gw_free: SimTime,
    /// Service-start times of accepted frames still queued or in
    /// service; entries whose start is past are purged lazily.
    gw_backlog: Vec<SimTime>,
    /// Deliveries produced by forwarding, awaiting a poll.
    pending: Vec<Delivery>,
    gw_stats: GatewayStats,
}

impl Internetwork {
    /// Builds the internetwork; each segment gets its own deterministic
    /// RNG stream derived from `seed`.
    pub fn new(cfg: InternetworkConfig, seed: u64) -> Internetwork {
        assert!(
            cfg.segments.len() >= 2,
            "an internetwork needs at least two segments"
        );
        assert!(cfg.gateway_queue > 0, "gateway queue must hold ≥ 1 frame");
        let mut segments = Vec::with_capacity(cfg.segments.len());
        for (i, kind) in cfg.segments.iter().enumerate() {
            let mut seg = Ethernet::for_kind(*kind, seed.wrapping_add(0x9E37 * (i as u64 + 1)));
            seg.register(GATEWAY_MAC);
            segments.push(seg);
        }
        Internetwork {
            cfg,
            segments,
            placement: BTreeMap::new(),
            gw_free: SimTime::ZERO,
            gw_backlog: Vec::new(),
            pending: Vec::new(),
            gw_stats: GatewayStats::default(),
        }
    }

    /// The configured topology.
    pub fn config(&self) -> &InternetworkConfig {
        &self.cfg
    }

    /// The segment a station is attached to, if any.
    pub fn segment_of(&self, mac: MacAddr) -> Option<usize> {
        self.placement.get(&mac).copied()
    }

    /// Accepts an ingress copy at the gateway and forwards it, queuing
    /// the egress deliveries into `pending`.
    fn gateway_ingress(&mut self, at: SimTime, frame: &Frame, from_seg: usize) {
        // Bounded queue: entries that began service by `at` have left it.
        self.gw_backlog.retain(|&s| s > at);
        if self.gw_backlog.len() >= self.cfg.gateway_queue {
            self.gw_stats.queue_drops += 1;
            return;
        }
        let start = at.max(self.gw_free);
        self.gw_backlog.push(start);
        self.gw_stats.max_queue = self.gw_stats.max_queue.max(self.gw_backlog.len());

        let targets: Vec<usize> = if frame.dst.is_broadcast() {
            (0..self.segments.len())
                .filter(|&s| s != from_seg)
                .collect()
        } else {
            match self.placement.get(&frame.dst) {
                Some(&seg) if seg != from_seg => vec![seg],
                // Unknown or same-segment destination: nothing to forward
                // (the same-segment copy was already delivered directly).
                _ => Vec::new(),
            }
        };
        let mut cursor = start + self.cfg.forward_delay;
        for seg in targets {
            let tx = self.segments[seg].transmit(cursor, frame.clone());
            cursor = tx.tx_end;
            self.gw_free = tx.tx_end;
            self.gw_stats.forwarded += 1;
            for d in tx.deliveries {
                // The gateway's own copy on the egress segment must not
                // re-enter forwarding (single gateway: routing is done).
                if d.dst != GATEWAY_MAC {
                    self.pending.push(d);
                }
            }
        }
    }
}

impl Transport for Internetwork {
    fn attach(&mut self, mac: MacAddr, segment: usize) {
        assert!(
            mac != GATEWAY_MAC,
            "station address {GATEWAY_MAC} is reserved for the gateway"
        );
        assert!(
            segment < self.segments.len(),
            "segment {segment} does not exist (topology has {})",
            self.segments.len()
        );
        self.placement.insert(mac, segment);
        self.segments[segment].register(mac);
    }

    fn transmit(&mut self, ready: SimTime, frame: Frame) -> TxResult {
        let from_seg = *self
            .placement
            .get(&frame.src)
            .expect("transmitting station is not attached to any segment");
        let tx = self.segments[from_seg].transmit(ready, frame.clone());
        let mut local = Vec::with_capacity(tx.deliveries.len());
        for d in tx.deliveries {
            if d.dst == GATEWAY_MAC || self.segment_of(d.dst) != Some(from_seg) {
                // Ingress copy for the gateway: a broadcast copy addressed
                // to it, or a unicast whose destination lives elsewhere
                // (the segment medium timed its arrival; the gateway
                // stands on this segment and hears it then).
                if d.corrupted {
                    self.gw_stats.corrupt_drops += 1;
                } else {
                    self.gateway_ingress(d.at, &frame, from_seg);
                }
            } else {
                local.push(d);
            }
        }
        TxResult {
            tx_start: tx.tx_start,
            tx_end: tx.tx_end,
            deliveries: local,
        }
    }

    fn poll_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.pending)
    }

    fn stats(&self) -> MediumStats {
        let mut total = MediumStats::default();
        for seg in &self.segments {
            total.absorb(&seg.stats());
        }
        total
    }

    fn max_payload(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.params().max_payload)
            .min()
            .expect("at least two segments")
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        for seg in &mut self.segments {
            seg.set_faults(plan);
        }
    }

    fn set_collision_bug(&mut self, bug: Option<CollisionBug>) {
        for seg in &mut self.segments {
            seg.set_collision_bug(bug);
        }
    }

    fn gateway_stats(&self) -> Option<GatewayStats> {
        Some(self.gw_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;

    fn frame(dst: MacAddr, src: MacAddr, len: usize) -> Frame {
        Frame::new(dst, src, EtherType::RAW_BENCH, vec![0xC3; len])
    }

    /// Two segments: station 1 on segment 0, stations 2 and 3 on 1.
    fn net() -> Internetwork {
        let mut n = Internetwork::new(InternetworkConfig::two_segments(), 42);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        n.attach(MacAddr(3), 1);
        n
    }

    fn polled(n: &mut Internetwork) -> Vec<Delivery> {
        n.poll_deliveries()
    }

    #[test]
    fn same_segment_unicast_stays_direct() {
        let mut n = net();
        let r = n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(2), 64));
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].dst, MacAddr(3));
        assert!(polled(&mut n).is_empty());
        assert_eq!(n.gateway_stats().unwrap().forwarded, 0);
    }

    #[test]
    fn cross_segment_unicast_is_forwarded_and_later() {
        let mut n = net();
        let direct = n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(2), 64));
        let mut n = net();
        let r = n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(r.deliveries.is_empty(), "no same-segment receiver");
        let fwd = polled(&mut n);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].dst, MacAddr(2));
        assert!(
            fwd[0].at > direct.deliveries[0].at,
            "store-and-forward must add latency: {:?} vs {:?}",
            fwd[0].at,
            direct.deliveries[0].at
        );
        assert_eq!(n.gateway_stats().unwrap().forwarded, 1);
    }

    #[test]
    fn broadcast_floods_every_segment_once() {
        let mut n = net();
        let r = n.transmit(SimTime::ZERO, frame(MacAddr::BROADCAST, MacAddr(1), 64));
        // Segment 0 has only the sender (plus the gateway), so no direct
        // receivers.
        assert!(r.deliveries.is_empty());
        let mut dsts: Vec<u8> = polled(&mut n).iter().map(|d| d.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![2, 3]);
    }

    #[test]
    fn bounded_queue_drops_bursts() {
        let mut cfg = InternetworkConfig::two_segments();
        cfg.gateway_queue = 1;
        let mut n = Internetwork::new(cfg, 9);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        // A burst of back-to-back cross-segment frames: the 3 Mb egress
        // segment drains slower than the ingress segment feeds.
        for _ in 0..20 {
            let r = n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
            let _ = r;
        }
        let g = n.gateway_stats().unwrap();
        assert!(g.queue_drops > 0, "burst must overflow the 1-frame queue");
        assert!(g.forwarded > 0, "some frames still get through");
        let fwd = polled(&mut n);
        assert_eq!(fwd.len() as u64, g.forwarded);
    }

    #[test]
    fn corrupted_ingress_is_dropped_at_the_gateway() {
        let mut n = net();
        n.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        });
        n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(polled(&mut n).is_empty());
        assert_eq!(n.gateway_stats().unwrap().corrupt_drops, 1);
    }

    #[test]
    fn stats_sum_across_segments() {
        let mut n = net();
        n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        // Ingress transmit on segment 0 plus gateway egress on segment 1.
        assert_eq!(n.stats().frames_sent, 2);
    }

    #[test]
    #[should_panic(expected = "reserved for the gateway")]
    fn gateway_address_cannot_be_attached() {
        let mut n = net();
        n.attach(GATEWAY_MAC, 0);
    }
}
