//! Ethernet segments joined by a routed mesh of store-and-forward
//! gateways.
//!
//! The paper's diskless workstations live on one broadcast segment. The
//! first step past that (PR 3) was a single gateway joining two
//! segments; this module generalizes it to a **routed mesh**: any number
//! of [`Ethernet`] segments joined by explicitly-placed gateways, each
//! bridging two or more segments. Routing tables are computed once at
//! build time — shortest path over the segment graph, deterministic
//! tie-breaks by gateway index — so the per-frame forwarding decision is
//! a table lookup, never a search.
//!
//! Each gateway receives a frame in full on one segment, holds it in a
//! **bounded queue**, and retransmits it on the next segment toward the
//! destination after a per-frame forwarding delay (store and forward).
//! Unicast frames hop segment by segment along the precomputed shortest
//! path; broadcasts are **flooded loop-free** — the flood tracks the set
//! of segments already covered, so even a cyclic mesh (a ring of
//! gateways) delivers each broadcast to every host exactly once.
//! Corrupted ingress frames are discarded at the hearing gateway (its
//! link-level check rejects them), and frames arriving while its queue
//! is full are dropped — the kernel's retransmission machinery is what
//! recovers both, exactly as it recovers medium loss.

use std::collections::VecDeque;

use v_sim::{SimDuration, SimTime};

use crate::fault::FaultPlan;
use crate::frame::{Frame, MacAddr};
use crate::medium::{
    CollisionBug, Delivery, Ethernet, MediumStats, NetworkKind, TxResult, TxWindow,
};
use crate::transport::{GatewayStats, Transport};

/// First station address of the reserved gateway range. Gateway `i`
/// occupies address `0xFF00 + i` on every segment it bridges; hosts must
/// not attach anywhere in the range.
pub const GATEWAY_MAC_FIRST: MacAddr = MacAddr(0xFF00);

/// Last station address of the reserved gateway range (0xFFFF is
/// broadcast).
pub const GATEWAY_MAC_LAST: MacAddr = MacAddr(0xFFFE);

/// Largest number of gateways a mesh may place (the size of the
/// reserved address range).
pub const MAX_GATEWAYS: usize = (GATEWAY_MAC_LAST.0 - GATEWAY_MAC_FIRST.0) as usize + 1;

/// The station address gateway `idx` occupies on each segment it
/// bridges.
pub fn gateway_mac(idx: usize) -> MacAddr {
    assert!(
        idx < MAX_GATEWAYS,
        "gateway index {idx} exceeds the reserved address range ({MAX_GATEWAYS} gateways)"
    );
    MacAddr(GATEWAY_MAC_FIRST.0 + idx as u16)
}

/// True if `mac` falls in the reserved gateway range.
pub fn is_gateway_mac(mac: MacAddr) -> bool {
    (GATEWAY_MAC_FIRST.0..=GATEWAY_MAC_LAST.0).contains(&mac.0)
}

/// Configuration of a routed multi-gateway mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshConfig {
    /// The medium flavour of each segment (index = segment number).
    pub segments: Vec<NetworkKind>,
    /// Gateway placement: entry `g` lists the segments gateway `g`
    /// bridges (two or more).
    pub gateways: Vec<Vec<usize>>,
    /// Bounded per-gateway queue: frames arriving at a gateway while
    /// this many are already waiting are dropped.
    pub gateway_queue: usize,
    /// Per-frame store-and-forward processing delay at each gateway.
    pub forward_delay: SimDuration,
    /// Frame coalescing: when a frame is already **queued** behind the
    /// forwarding engine and bound for the same egress segment as the
    /// frame the engine just handled, the gateway batches its header
    /// processing with the predecessor's and skips the per-frame
    /// [`MeshConfig::forward_delay`] charge (the route lookup and egress
    /// setup were just done; a real gateway keeps them hot). Off by
    /// default — the uncoalesced mesh is the calibrated baseline, and
    /// every existing topology must stay bit-identical.
    pub coalesce: bool,
}

impl MeshConfig {
    /// Default per-gateway queue depth (frames).
    pub const DEFAULT_QUEUE: usize = 8;

    /// Default per-frame forwarding delay.
    pub const DEFAULT_FORWARD_DELAY: SimDuration = SimDuration::from_micros(300);

    fn uniform(segments: usize, gateways: Vec<Vec<usize>>) -> MeshConfig {
        MeshConfig {
            segments: vec![NetworkKind::Experimental3Mb; segments],
            gateways,
            gateway_queue: Self::DEFAULT_QUEUE,
            forward_delay: Self::DEFAULT_FORWARD_DELAY,
            coalesce: false,
        }
    }

    /// The same topology with gateway frame coalescing enabled
    /// ([`MeshConfig::coalesce`]).
    pub fn with_coalescing(mut self) -> MeshConfig {
        self.coalesce = true;
        self
    }

    /// `n` 3 Mb segments joined in a chain by `n - 1` gateways (gateway
    /// `i` bridges segments `i` and `i + 1`): the canonical multi-hop
    /// topology, where segment 0 to segment `n - 1` costs `n - 1` hops.
    pub fn line(n: usize) -> MeshConfig {
        assert!(n >= 2, "a line mesh needs at least two segments");
        MeshConfig::uniform(n, (0..n - 1).map(|i| vec![i, i + 1]).collect())
    }

    /// `n` 3 Mb segments in a ring of `n` gateways (gateway `i` bridges
    /// segments `i` and `(i + 1) % n`): the smallest topology with a
    /// routing loop, which the flood dedup and shortest-path tables must
    /// handle.
    pub fn ring(n: usize) -> MeshConfig {
        assert!(n >= 3, "a ring mesh needs at least three segments");
        MeshConfig::uniform(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
    }

    /// `n` 3 Mb segments behind one hub gateway bridging all of them —
    /// the PR 3 single-gateway star, as a mesh.
    pub fn star(n: usize) -> MeshConfig {
        assert!(n >= 2, "a star mesh needs at least two segments");
        MeshConfig::uniform(n, vec![(0..n).collect()])
    }
}

/// Configuration of the single-gateway internetwork star (the PR 3
/// topology, kept as a convenience shorthand for [`MeshConfig::star`]).
#[derive(Debug, Clone, PartialEq)]
pub struct InternetworkConfig {
    /// The medium flavour of each segment (index = segment number).
    pub segments: Vec<NetworkKind>,
    /// Bounded gateway queue: frames arriving while this many are
    /// already waiting are dropped.
    pub gateway_queue: usize,
    /// Per-frame store-and-forward processing delay at the gateway.
    pub forward_delay: SimDuration,
}

impl InternetworkConfig {
    /// Two 3 Mb segments behind a gateway with an 8-frame queue and a
    /// 300 µs per-frame forwarding cost.
    pub fn two_segments() -> InternetworkConfig {
        InternetworkConfig {
            segments: vec![NetworkKind::Experimental3Mb; 2],
            gateway_queue: MeshConfig::DEFAULT_QUEUE,
            forward_delay: MeshConfig::DEFAULT_FORWARD_DELAY,
        }
    }
}

impl From<InternetworkConfig> for MeshConfig {
    /// A star: one gateway bridging every segment.
    fn from(cfg: InternetworkConfig) -> MeshConfig {
        MeshConfig {
            gateways: vec![(0..cfg.segments.len()).collect()],
            segments: cfg.segments,
            gateway_queue: cfg.gateway_queue,
            forward_delay: cfg.forward_delay,
            coalesce: false,
        }
    }
}

/// Sentinel for "not attached" in the station→segment table.
const UNPLACED: u16 = u16::MAX;

/// One store-and-forward gateway's mutable state.
#[derive(Debug)]
struct Gateway {
    /// Segments this gateway bridges (sorted, deduplicated).
    attached: Vec<usize>,
    /// False while the gateway is crashed: it hears nothing, forwards
    /// nothing, and the routing tables are built without it.
    alive: bool,
    /// Instant the forwarding engine is next idle.
    free: SimTime,
    /// Service-start times of accepted frames still queued or in
    /// service; entries whose start is past are purged lazily.
    backlog: Vec<SimTime>,
    /// Egress segment of the last frame forwarded, for
    /// [`MeshConfig::coalesce`]: a queued successor bound the same way
    /// batches its header processing with this one.
    last_egress: Option<usize>,
    stats: GatewayStats,
}

/// Ethernet segments joined by a routed mesh of store-and-forward
/// gateways.
#[derive(Debug)]
pub struct Internetwork {
    cfg: MeshConfig,
    segments: Vec<Ethernet>,
    gateways: Vec<Gateway>,
    /// Station → segment table indexed by address, built at attach time
    /// and grown on demand (attaching station `m` sizes it to `m + 1`
    /// entries, so a mesh only pays for the address range it uses): the
    /// forwarding decision on every delivery is one array load, not a
    /// map walk.
    seg_of: Vec<u16>,
    /// `next_hop[s][d]` = the designated (gateway, egress segment)
    /// forwarding frames heard on segment `s` toward destination segment
    /// `d`; shortest path, ties broken by lowest gateway index then
    /// lowest egress segment. `None` on the diagonal.
    next_hop: Vec<Vec<Option<(u16, u16)>>>,
    /// Segment-to-segment distance in gateway hops.
    dist: Vec<Vec<u16>>,
    /// Deliveries produced by forwarding, awaiting a poll.
    pending: Vec<Delivery>,
    /// Scratch for the origin-segment transmit on paths that must route
    /// its deliveries afterwards (reused across transmissions).
    tx_scratch: Vec<Delivery>,
    /// Scratch for gateway egress transmissions inside
    /// [`Internetwork::forward_unicast`] / [`Internetwork::flood`].
    fwd_scratch: Vec<Delivery>,
}

impl Internetwork {
    /// Builds the mesh; each segment gets its own deterministic RNG
    /// stream derived from `seed`. Routing tables are computed here,
    /// once.
    ///
    /// # Panics
    ///
    /// Panics on an invalid topology: fewer than two segments, a gateway
    /// bridging fewer than two distinct segments or naming a segment
    /// that does not exist, more gateways than the reserved address
    /// range holds, or a segment graph that is not connected.
    pub fn new(cfg: impl Into<MeshConfig>, seed: u64) -> Internetwork {
        let cfg: MeshConfig = cfg.into();
        let n = cfg.segments.len();
        assert!(n >= 2, "a mesh needs at least two segments");
        assert!(cfg.gateway_queue > 0, "gateway queue must hold ≥ 1 frame");
        assert!(
            !cfg.gateways.is_empty(),
            "a mesh needs at least one gateway"
        );
        assert!(
            cfg.gateways.len() <= MAX_GATEWAYS,
            "{} gateways exceed the reserved address range ({MAX_GATEWAYS})",
            cfg.gateways.len()
        );

        let mut segments = Vec::with_capacity(n);
        for (i, kind) in cfg.segments.iter().enumerate() {
            segments.push(Ethernet::for_kind(
                *kind,
                seed.wrapping_add(0x9E37 * (i as u64 + 1)),
            ));
        }

        let mut gateways = Vec::with_capacity(cfg.gateways.len());
        for (g, attached) in cfg.gateways.iter().enumerate() {
            let mut attached = attached.clone();
            attached.sort_unstable();
            attached.dedup();
            assert!(
                attached.len() >= 2,
                "gateway {g} must bridge at least two distinct segments"
            );
            for &s in &attached {
                assert!(
                    s < n,
                    "gateway {g} bridges segment {s}, but the mesh has {n} segments"
                );
                segments[s].register(gateway_mac(g));
            }
            gateways.push(Gateway {
                attached,
                alive: true,
                free: SimTime::ZERO,
                backlog: Vec::new(),
                last_egress: None,
                stats: GatewayStats::default(),
            });
        }

        let (dist, next_hop) = route_tables(n, &gateways);
        for (d, row) in dist[0].iter().enumerate() {
            assert!(
                *row != u16::MAX,
                "segment {d} is unreachable from segment 0: the mesh must be connected"
            );
        }

        Internetwork {
            cfg,
            segments,
            gateways,
            seg_of: Vec::new(),
            next_hop,
            dist,
            pending: Vec::new(),
            tx_scratch: Vec::new(),
            fwd_scratch: Vec::new(),
        }
    }

    /// Allocating convenience wrapper around the batched
    /// [`Transport::transmit`], for tests and one-shot probes.
    pub fn transmit(&mut self, ready: SimTime, frame: Frame) -> TxResult {
        let mut deliveries = Vec::new();
        let win = Transport::transmit(self, ready, frame, &mut deliveries);
        TxResult {
            tx_start: win.tx_start,
            tx_end: win.tx_end,
            deliveries,
        }
    }

    /// Allocating convenience wrapper around the batched
    /// [`Transport::poll_deliveries`].
    pub fn poll_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.pending)
    }

    /// The configured topology.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// The segment a station is attached to, if any. One array load —
    /// this sits on the forwarding hot path for every delivery.
    pub fn segment_of(&self, mac: MacAddr) -> Option<usize> {
        match self.seg_of.get(mac.0 as usize) {
            None | Some(&UNPLACED) => None,
            Some(&s) => Some(s as usize),
        }
    }

    /// Gateway-hop distance between two segments, over live gateways
    /// only. [`Internetwork::UNREACHABLE`] when a partition separates
    /// them.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        self.dist[from][to] as usize
    }

    /// The `hops` value reporting "no live path".
    pub const UNREACHABLE: usize = u16::MAX as usize;

    /// True while gateway `idx` is in service.
    pub fn gateway_alive(&self, idx: usize) -> bool {
        self.gateways.get(idx).is_some_and(|g| g.alive)
    }

    /// Rebuilds the routing tables over the live gateways. The
    /// connectivity the constructor insists on may no longer hold: a
    /// partitioned pair of segments simply gets no next hop, so unicasts
    /// between them die silently and the kernels' retransmission budgets
    /// are what surface the outage.
    fn recompute_routes(&mut self) {
        let (dist, next_hop) = route_tables(self.segments.len(), &self.gateways);
        self.dist = dist;
        self.next_hop = next_hop;
    }

    /// The gateway index a station address in the reserved range maps
    /// to, when that gateway exists in this mesh.
    fn gateway_index(&self, mac: MacAddr) -> Option<usize> {
        if !is_gateway_mac(mac) {
            return None;
        }
        let idx = (mac.0 - GATEWAY_MAC_FIRST.0) as usize;
        (idx < self.gateways.len()).then_some(idx)
    }

    /// Admits one ingress frame into gateway `g`'s bounded queue.
    /// Returns the instant service starts, or `None` if the queue was
    /// full and the frame was dropped.
    fn admit(&mut self, g: usize, at: SimTime) -> Option<SimTime> {
        let gw = &mut self.gateways[g];
        // Bounded queue: entries that began service by `at` have left it.
        gw.backlog.retain(|&s| s > at);
        if gw.backlog.len() >= self.cfg.gateway_queue {
            gw.stats.queue_drops += 1;
            return None;
        }
        let start = at.max(gw.free);
        gw.backlog.push(start);
        gw.stats.max_queue = gw.stats.max_queue.max(gw.backlog.len());
        Some(start)
    }

    /// Forwards a unicast heard on segment `seg` at `at` toward
    /// `dest_seg`, hop by hop along the routing tables, queuing final
    /// deliveries into `pending`.
    fn forward_unicast(&mut self, mut at: SimTime, frame: &Frame, mut seg: usize, dest_seg: usize) {
        let mut buf = std::mem::take(&mut self.fwd_scratch);
        // An unreachable destination falls straight through: nothing
        // hears it.
        while let Some((g, e)) = self.next_hop[seg][dest_seg] {
            let (g, egress) = (g as usize, e as usize);
            let Some(start) = self.admit(g, at) else {
                break;
            };
            // Coalescing: a frame that *queued* behind the engine
            // (start > at) and leaves on the same egress segment as its
            // predecessor shares that predecessor's header-processing
            // charge — the route lookup is still hot.
            let coalesce =
                self.cfg.coalesce && start > at && self.gateways[g].last_egress == Some(egress);
            let cursor = if coalesce {
                self.gateways[g].stats.coalesced += 1;
                start
            } else {
                start + self.cfg.forward_delay
            };
            buf.clear();
            let win = self.segments[egress].transmit_into(cursor, frame.clone(), &mut buf);
            self.gateways[g].free = win.tx_end;
            self.gateways[g].last_egress = Some(egress);
            self.gateways[g].stats.forwarded += 1;

            if egress == dest_seg {
                // Final segment: the copies (possibly corrupted — the
                // receiver's checksum is what rejects those) are host
                // deliveries.
                self.pending.append(&mut buf);
                break;
            }
            // Intermediate segment: each copy is the next designated
            // gateway's ingress. Fault injection may have dropped it
            // (empty), corrupted it (the gateway's link-level check
            // discards it) or duplicated it (both copies continue). A
            // unicast has one receiver, so at most two copies exist.
            let mut continuations: [SimTime; 2] = [SimTime::ZERO; 2];
            let mut n_cont = 0usize;
            for d in buf.drain(..) {
                if d.corrupted {
                    if let Some((ng, _)) = self.next_hop[egress][dest_seg] {
                        self.gateways[ng as usize].stats.corrupt_drops += 1;
                    }
                } else {
                    continuations[n_cont] = d.at;
                    n_cont += 1;
                }
            }
            match n_cont {
                0 => break,
                1 => {
                    at = continuations[0];
                    seg = egress;
                }
                _ => {
                    self.fwd_scratch = buf;
                    for &a in &continuations[..n_cont] {
                        self.forward_unicast(a, frame, egress, dest_seg);
                    }
                    return;
                }
            }
        }
        buf.clear();
        self.fwd_scratch = buf;
    }

    /// Floods a broadcast through the mesh. `visited` marks segments
    /// already covered (the origin segment to begin with); `ingress`
    /// seeds the flood with the (gateway, segment, arrival) copies heard
    /// on the origin segment. The per-flood seen-set makes the flood
    /// loop-free on any topology: each segment is transmitted on at most
    /// once, so every host sees the frame exactly once.
    fn flood(
        &mut self,
        frame: &Frame,
        visited: &mut [bool],
        mut ingress: VecDeque<(usize, usize, SimTime)>,
    ) {
        let mut buf = std::mem::take(&mut self.fwd_scratch);
        while let Some((g, seg, at)) = ingress.pop_front() {
            let any_target = self.gateways[g]
                .attached
                .iter()
                .any(|&e| e != seg && !visited[e]);
            if !any_target {
                continue; // every reachable segment already covered
            }
            let Some(start) = self.admit(g, at) else {
                continue;
            };
            let mut cursor = start + self.cfg.forward_delay;
            for i in 0..self.gateways[g].attached.len() {
                let e = self.gateways[g].attached[i];
                if e == seg || visited[e] {
                    continue;
                }
                visited[e] = true;
                buf.clear();
                let win = self.segments[e].transmit_into(cursor, frame.clone(), &mut buf);
                cursor = win.tx_end;
                self.gateways[g].free = win.tx_end;
                self.gateways[g].last_egress = Some(e);
                self.gateways[g].stats.forwarded += 1;
                for d in buf.drain(..) {
                    match self.gateway_index(d.dst) {
                        // The emitting gateway's own copy on the egress
                        // segment must not re-enter the flood; a dead
                        // gateway's copy dies at its silent interface.
                        Some(g2) if g2 == g || !self.gateways[g2].alive => {}
                        Some(g2) => {
                            if d.corrupted {
                                self.gateways[g2].stats.corrupt_drops += 1;
                            } else {
                                ingress.push_back((g2, e, d.at));
                            }
                        }
                        None => self.pending.push(d),
                    }
                }
            }
        }
        self.fwd_scratch = buf;
    }
}

/// Computes the distance matrix and designated next-hop table for the
/// segment graph (nodes = segments, edges = gateway bridges), BFS per
/// source with deterministic tie-breaks.
type RouteTables = (Vec<Vec<u16>>, Vec<Vec<Option<(u16, u16)>>>);

fn route_tables(n: usize, gateways: &[Gateway]) -> RouteTables {
    // Adjacency: segments sharing a gateway are one hop apart.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for gw in gateways.iter().filter(|g| g.alive) {
        for &a in &gw.attached {
            for &b in &gw.attached {
                if a != b && !adj[a].contains(&b) {
                    adj[a].push(b);
                }
            }
        }
    }
    for row in &mut adj {
        row.sort_unstable();
    }

    let mut dist = vec![vec![u16::MAX; n]; n];
    for (s, drow) in dist.iter_mut().enumerate() {
        drow[s] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(x) = q.pop_front() {
            for &y in &adj[x] {
                if drow[y] == u16::MAX {
                    drow[y] = drow[x] + 1;
                    q.push_back(y);
                }
            }
        }
    }

    // Designated forwarder per (ingress segment, destination segment):
    // the lowest-indexed gateway on the ingress segment with an attached
    // segment strictly closer to the destination; its lowest such
    // attached segment is the egress. Shortest-path and deterministic,
    // so exactly one gateway forwards any given unicast.
    let mut next_hop: Vec<Vec<Option<(u16, u16)>>> = vec![vec![None; n]; n];
    for s in 0..n {
        for d in 0..n {
            if s == d || dist[s][d] == u16::MAX {
                continue;
            }
            'gw: for (g, gw) in gateways.iter().enumerate() {
                if !gw.alive || !gw.attached.contains(&s) {
                    continue;
                }
                for &e in &gw.attached {
                    if e != s && dist[e][d] + 1 == dist[s][d] {
                        next_hop[s][d] = Some((g as u16, e as u16));
                        break 'gw;
                    }
                }
            }
        }
    }
    (dist, next_hop)
}

impl Transport for Internetwork {
    fn attach(&mut self, mac: MacAddr, segment: usize) {
        assert!(
            !is_gateway_mac(mac),
            "station address {mac} collides with the reserved gateway range \
             {GATEWAY_MAC_FIRST}..={GATEWAY_MAC_LAST}"
        );
        assert!(
            segment < self.segments.len(),
            "segment {segment} does not exist (topology has {})",
            self.segments.len()
        );
        if self.seg_of.len() <= mac.0 as usize {
            self.seg_of.resize(mac.0 as usize + 1, UNPLACED);
        }
        self.seg_of[mac.0 as usize] = segment as u16;
        self.segments[segment].register(mac);
    }

    fn transmit(&mut self, ready: SimTime, frame: Frame, out: &mut Vec<Delivery>) -> TxWindow {
        let from_seg = self
            .segment_of(frame.src)
            .expect("transmitting station is not attached to any segment");

        // Fast path: a unicast whose destination sits on the origin
        // segment never involves a gateway — transmit straight into
        // `out` without cloning the frame.
        if !frame.dst.is_broadcast() && self.segment_of(frame.dst) == Some(from_seg) {
            return self.segments[from_seg].transmit_into(ready, frame, out);
        }

        // Forwarding paths need the frame after the origin-segment
        // transmit, so that transmit lands in a reused scratch buffer.
        let mut buf = std::mem::take(&mut self.tx_scratch);
        buf.clear();
        let win = self.segments[from_seg].transmit_into(ready, frame.clone(), &mut buf);

        if frame.dst.is_broadcast() {
            // Host copies on the origin segment deliver directly; copies
            // addressed to gateways seed the mesh-wide flood.
            let mut visited = vec![false; self.segments.len()];
            visited[from_seg] = true;
            let mut ingress = VecDeque::new();
            for d in buf.drain(..) {
                match self.gateway_index(d.dst) {
                    // Dead gateways hear nothing: with them gone the
                    // flood degrades to covering only reachable segments.
                    Some(g) if !self.gateways[g].alive => {}
                    Some(g) => {
                        if d.corrupted {
                            self.gateways[g].stats.corrupt_drops += 1;
                        } else {
                            ingress.push_back((g, from_seg, d.at));
                        }
                    }
                    None => out.push(d),
                }
            }
            self.flood(&frame, &mut visited, ingress);
        } else {
            // Off-segment (or unattached) destination: the designated
            // gateway on this segment hears each copy and routes it.
            // An unknown destination has no segment: no station hears
            // the copies, so they are simply discarded.
            let dest = self.segment_of(frame.dst);
            for d in buf.drain(..) {
                let Some(dest_seg) = dest else { continue };
                if d.corrupted {
                    if let Some((g, _)) = self.next_hop[from_seg][dest_seg] {
                        self.gateways[g as usize].stats.corrupt_drops += 1;
                    }
                } else {
                    self.forward_unicast(d.at, &frame, from_seg, dest_seg);
                }
            }
        }
        self.tx_scratch = buf;
        win
    }

    fn poll_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.pending);
    }

    fn stats(&self) -> MediumStats {
        let mut total = MediumStats::default();
        for seg in &self.segments {
            total.absorb(&seg.stats());
        }
        total
    }

    fn max_payload(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.params().max_payload)
            .min()
            .expect("at least two segments")
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        for seg in &mut self.segments {
            seg.set_faults(plan);
        }
    }

    fn set_collision_bug(&mut self, bug: Option<CollisionBug>) {
        for seg in &mut self.segments {
            seg.set_collision_bug(bug);
        }
    }

    fn gateway_stats(&self) -> Option<GatewayStats> {
        let mut total = GatewayStats::default();
        for gw in &self.gateways {
            total.absorb(&gw.stats);
        }
        Some(total)
    }

    fn per_gateway_stats(&self) -> Vec<GatewayStats> {
        self.gateways.iter().map(|g| g.stats).collect()
    }

    fn fail_gateway(&mut self, idx: usize) -> bool {
        match self.gateways.get_mut(idx) {
            Some(gw) if gw.alive => {
                gw.alive = false;
                gw.backlog.clear(); // queued frames die with the gateway
                gw.last_egress = None; // a restarted engine has cold state
                self.recompute_routes();
                true
            }
            _ => false,
        }
    }

    fn restore_gateway(&mut self, idx: usize) -> bool {
        match self.gateways.get_mut(idx) {
            Some(gw) if !gw.alive => {
                gw.alive = true;
                self.recompute_routes();
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;

    fn frame(dst: MacAddr, src: MacAddr, len: usize) -> Frame {
        Frame::new(dst, src, EtherType::RAW_BENCH, vec![0xC3; len])
    }

    /// Star of two segments: station 1 on segment 0, stations 2 and 3
    /// on 1 — the PR 3 topology.
    fn star() -> Internetwork {
        let mut n = Internetwork::new(InternetworkConfig::two_segments(), 42);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        n.attach(MacAddr(3), 1);
        n
    }

    /// Three segments in a line, one host each: 1—gw—2—gw—3.
    fn line3() -> Internetwork {
        let mut n = Internetwork::new(MeshConfig::line(3), 42);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        n.attach(MacAddr(3), 2);
        n
    }

    fn polled(n: &mut Internetwork) -> Vec<Delivery> {
        n.poll_deliveries()
    }

    fn total(n: &Internetwork) -> GatewayStats {
        n.gateway_stats().unwrap()
    }

    #[test]
    fn same_segment_unicast_stays_direct() {
        let mut n = star();
        let r = n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(2), 64));
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].dst, MacAddr(3));
        assert!(polled(&mut n).is_empty());
        assert_eq!(total(&n).forwarded, 0);
    }

    #[test]
    fn cross_segment_unicast_is_forwarded_and_later() {
        let mut n = star();
        let direct = n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(2), 64));
        let mut n = star();
        let r = n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(r.deliveries.is_empty(), "no same-segment receiver");
        let fwd = polled(&mut n);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].dst, MacAddr(2));
        assert!(
            fwd[0].at > direct.deliveries[0].at,
            "store-and-forward must add latency: {:?} vs {:?}",
            fwd[0].at,
            direct.deliveries[0].at
        );
        assert_eq!(total(&n).forwarded, 1);
    }

    #[test]
    fn broadcast_floods_every_segment_once() {
        let mut n = star();
        let r = n.transmit(SimTime::ZERO, frame(MacAddr::BROADCAST, MacAddr(1), 64));
        // Segment 0 has only the sender (plus the gateway), so no direct
        // receivers.
        assert!(r.deliveries.is_empty());
        let mut dsts: Vec<u16> = polled(&mut n).iter().map(|d| d.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![2, 3]);
    }

    #[test]
    fn two_hop_unicast_crosses_both_gateways() {
        let mut n = line3();
        assert_eq!(n.hops(0, 2), 2);
        let r = n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(1), 64));
        assert!(r.deliveries.is_empty());
        let fwd = polled(&mut n);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].dst, MacAddr(3));
        let per = n.per_gateway_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].forwarded, 1, "first hop");
        assert_eq!(per[1].forwarded, 1, "second hop");
    }

    #[test]
    fn hop_latency_is_additive() {
        // One-hop and two-hop deliveries of the same frame size from the
        // same origin: each extra hop costs exactly the same increment.
        let mut n = line3();
        let direct_at = {
            let mut m = Internetwork::new(MeshConfig::line(3), 42);
            m.attach(MacAddr(1), 0);
            m.attach(MacAddr(9), 0);
            let r = m.transmit(SimTime::ZERO, frame(MacAddr(9), MacAddr(1), 64));
            r.deliveries[0].at
        };
        let one = {
            n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
            polled(&mut n)[0].at
        };
        let mut n2 = line3();
        let two = {
            n2.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(1), 64));
            polled(&mut n2)[0].at
        };
        let hop1 = one.since(direct_at);
        let hop2 = two.since(one);
        assert!(!hop1.is_zero());
        assert_eq!(hop1, hop2, "identical segments ⇒ identical hop cost");
    }

    #[test]
    fn ring_broadcast_is_loop_free() {
        // A ring has a cycle; the flood must still cover every host
        // exactly once and terminate.
        let mut n = Internetwork::new(MeshConfig::ring(4), 7);
        for s in 0..4 {
            n.attach(MacAddr(1 + s as u16), s);
        }
        let r = n.transmit(SimTime::ZERO, frame(MacAddr::BROADCAST, MacAddr(1), 64));
        assert!(
            r.deliveries.is_empty(),
            "origin segment has only the sender"
        );
        let mut dsts: Vec<u16> = polled(&mut n).iter().map(|d| d.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![2, 3, 4], "each host exactly once");
    }

    #[test]
    fn bounded_queue_drops_bursts() {
        let mut cfg: MeshConfig = InternetworkConfig::two_segments().into();
        cfg.gateway_queue = 1;
        let mut n = Internetwork::new(cfg, 9);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        // A burst of back-to-back cross-segment frames: the 3 Mb egress
        // segment drains slower than the ingress segment feeds.
        for _ in 0..20 {
            let r = n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
            let _ = r;
        }
        let g = total(&n);
        assert!(g.queue_drops > 0, "burst must overflow the 1-frame queue");
        assert!(g.forwarded > 0, "some frames still get through");
        let fwd = polled(&mut n);
        assert_eq!(fwd.len() as u64, g.forwarded);
    }

    #[test]
    fn corrupted_ingress_is_dropped_at_the_gateway() {
        let mut n = star();
        n.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        });
        n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(polled(&mut n).is_empty());
        assert_eq!(total(&n).corrupt_drops, 1);
    }

    #[test]
    fn stats_sum_across_segments() {
        let mut n = star();
        n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        // Ingress transmit on segment 0 plus gateway egress on segment 1.
        assert_eq!(n.stats().frames_sent, 2);
    }

    #[test]
    fn routing_tables_pick_shortest_paths() {
        let n = Internetwork::new(MeshConfig::ring(5), 3);
        // Around a 5-ring the far side is 2 hops either way; the near
        // sides are 1.
        assert_eq!(n.hops(0, 1), 1);
        assert_eq!(n.hops(0, 2), 2);
        assert_eq!(n.hops(0, 3), 2);
        assert_eq!(n.hops(0, 4), 1);
    }

    #[test]
    fn failed_gateway_partitions_a_line() {
        let mut n = line3();
        assert!(n.fail_gateway(0));
        assert!(!n.fail_gateway(0), "already down");
        assert!(!n.gateway_alive(0));
        assert_eq!(n.hops(0, 2), Internetwork::UNREACHABLE);
        // Unicast into the partition dies silently.
        n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(1), 64));
        assert!(polled(&mut n).is_empty());
        // The unaffected hop still forwards.
        n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(2), 64));
        assert_eq!(polled(&mut n).len(), 1);
        // Restore heals the route.
        assert!(n.restore_gateway(0));
        assert!(!n.restore_gateway(0), "already up");
        assert_eq!(n.hops(0, 2), 2);
        n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(1), 64));
        assert_eq!(polled(&mut n).len(), 1);
    }

    #[test]
    fn ring_reroutes_the_long_way_around_a_dead_gateway() {
        let mut n = Internetwork::new(MeshConfig::ring(4), 11);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        assert_eq!(n.hops(0, 1), 1);
        // Gateway 0 bridges segments 0 and 1; without it the route runs
        // the long way: 0 → 3 → 2 → 1.
        assert!(n.fail_gateway(0));
        assert_eq!(n.hops(0, 1), 3);
        n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        let fwd = polled(&mut n);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].dst, MacAddr(2));
        assert!(!n.gateway_alive(0));
        assert_eq!(n.per_gateway_stats()[0].forwarded, 0);
    }

    #[test]
    fn broadcast_flood_degrades_to_the_reachable_side() {
        let mut n = Internetwork::new(MeshConfig::line(3), 5);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        n.attach(MacAddr(3), 2);
        assert!(n.fail_gateway(1));
        // From segment 0 the flood reaches segment 1 but not 2.
        n.transmit(SimTime::ZERO, frame(MacAddr::BROADCAST, MacAddr(1), 64));
        let dsts: Vec<u16> = polled(&mut n).iter().map(|d| d.dst.0).collect();
        assert_eq!(dsts, vec![2], "only the near side hears the flood");
    }

    #[test]
    fn fail_gateway_rejects_unknown_index() {
        let mut n = star();
        assert!(!n.fail_gateway(7));
        assert!(!n.restore_gateway(7));
        assert!(!n.gateway_alive(7));
    }

    #[test]
    fn attach_past_256_stations_routes_and_floods() {
        // The PR 4 station table was a fixed `[u16; 256]`; the growable
        // table must carry addresses past the old 8-bit ceiling.
        let mut n = Internetwork::new(InternetworkConfig::two_segments(), 13);
        for i in 0..300u16 {
            n.attach(MacAddr(1 + i), (i % 2) as usize);
        }
        assert_eq!(n.segment_of(MacAddr(300)), Some(1));
        assert_eq!(n.segment_of(MacAddr(301)), None);
        // Cross-segment unicast between two high addresses still routes.
        n.transmit(SimTime::ZERO, frame(MacAddr(300), MacAddr(299), 64));
        let fwd = polled(&mut n);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].dst, MacAddr(300));
        // A broadcast from a high address reaches all 299 other stations.
        let r = n.transmit(SimTime::ZERO, frame(MacAddr::BROADCAST, MacAddr(300), 64));
        let flooded = polled(&mut n);
        assert_eq!(r.deliveries.len() + flooded.len(), 299);
    }

    #[test]
    fn coalescing_batches_a_queued_same_egress_burst() {
        let run = |coalesce: bool| {
            let mut cfg: MeshConfig = InternetworkConfig::two_segments().into();
            cfg.coalesce = coalesce;
            let mut n = Internetwork::new(cfg, 21);
            n.attach(MacAddr(1), 0);
            n.attach(MacAddr(2), 1);
            for _ in 0..4 {
                n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
            }
            let mut fwd = polled(&mut n);
            fwd.sort_by_key(|d| d.at);
            (fwd.last().unwrap().at, fwd.len(), total(&n))
        };
        let (last_off, count_off, st_off) = run(false);
        let (last_on, count_on, st_on) = run(true);
        assert_eq!(st_off.coalesced, 0, "off never coalesces");
        assert_eq!(count_on, count_off, "coalescing drops nothing");
        assert!(
            st_on.coalesced >= 2,
            "queued successors bound the same way must batch: {st_on:?}"
        );
        assert!(
            last_on < last_off,
            "batched headers drain the queue sooner: {last_on:?} vs {last_off:?}"
        );
    }

    #[test]
    fn single_frame_is_never_coalesced() {
        // An unqueued frame has no predecessor to batch with: its
        // delivery time must match the uncoalesced mesh exactly.
        let run = |coalesce: bool| {
            let mut cfg: MeshConfig = InternetworkConfig::two_segments().into();
            cfg.coalesce = coalesce;
            let mut n = Internetwork::new(cfg, 5);
            n.attach(MacAddr(1), 0);
            n.attach(MacAddr(2), 1);
            n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
            (polled(&mut n)[0].at, total(&n).coalesced)
        };
        let (at_off, _) = run(false);
        let (at_on, coalesced_on) = run(true);
        assert_eq!(at_on, at_off, "no queue, no coalescing, same latency");
        assert_eq!(coalesced_on, 0);
    }

    #[test]
    fn alternating_egress_does_not_coalesce() {
        // Same gateway, egress flipping every frame: the header state is
        // never hot for the successor, so every forward pays in full.
        let cfg = MeshConfig::star(3).with_coalescing();
        let mut n = Internetwork::new(cfg, 33);
        n.attach(MacAddr(1), 0);
        n.attach(MacAddr(2), 1);
        n.attach(MacAddr(3), 2);
        for _ in 0..3 {
            n.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
            n.transmit(SimTime::ZERO, frame(MacAddr(3), MacAddr(1), 1024));
        }
        let st = total(&n);
        assert!(st.forwarded > 0);
        assert_eq!(st.coalesced, 0, "egress alternates every frame");
    }

    #[test]
    #[should_panic(expected = "reserved gateway range")]
    fn gateway_range_cannot_be_attached() {
        let mut n = star();
        n.attach(gateway_mac(0), 0);
    }

    #[test]
    #[should_panic(expected = "reserved gateway range")]
    fn whole_gateway_range_is_rejected_even_unused_addresses() {
        // Only one gateway exists, but the whole range stays reserved.
        let mut n = star();
        n.attach(GATEWAY_MAC_LAST, 0);
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn disconnected_mesh_is_rejected() {
        // Segments 2 and 3 are bridged to each other but not to 0/1.
        let cfg = MeshConfig {
            segments: vec![NetworkKind::Experimental3Mb; 4],
            gateways: vec![vec![0, 1], vec![2, 3]],
            gateway_queue: 8,
            forward_delay: SimDuration::from_micros(300),
            coalesce: false,
        };
        Internetwork::new(cfg, 1);
    }

    #[test]
    #[should_panic(expected = "at least two distinct segments")]
    fn degenerate_gateway_is_rejected() {
        let cfg = MeshConfig {
            segments: vec![NetworkKind::Experimental3Mb; 2],
            gateways: vec![vec![1, 1]],
            gateway_queue: 8,
            forward_delay: SimDuration::from_micros(300),
            coalesce: false,
        };
        Internetwork::new(cfg, 1);
    }
}
