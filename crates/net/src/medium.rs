//! The shared Ethernet medium.

use v_sim::{SimDuration, SimTime, SplitMix64};

use crate::fault::{scramble, Fate, FaultPlan, REDELIVERY_GAP};
use crate::frame::{Frame, MacAddr};

/// Which physical network flavour to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// The 2.94 Mb/s experimental Ethernet the paper's main tables use.
    Experimental3Mb,
    /// The 10 Mb/s standard Ethernet of §8.
    Standard10Mb,
}

/// Physical parameters of the medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetParams {
    /// Physical bit rate, bits per second.
    pub bits_per_sec: u64,
    /// Fixed network + interface latency per frame (propagation, framing,
    /// receive-interrupt dispatch). The paper attributes ~0.3 ms of the
    /// 8 MHz network penalty to "network and interface latency"; most of
    /// that is interface handling charged by the CPU cost model, so the
    /// wire-level share here is small.
    pub latency: SimDuration,
    /// Largest payload a single frame may carry.
    pub max_payload: usize,
}

impl NetParams {
    /// Parameters for a network flavour.
    pub fn for_kind(kind: NetworkKind) -> NetParams {
        match kind {
            // 2.94 Mb/s; the paper measured single datagrams up to 1024
            // bytes (Table 4-1), so the experimental net's MTU comfortably
            // exceeds 1 KB of data plus a 32-byte interkernel header.
            NetworkKind::Experimental3Mb => NetParams {
                bits_per_sec: 2_940_000,
                latency: SimDuration::from_micros(30),
                max_payload: 1100,
            },
            // 10 Mb/s standard Ethernet, 1500-byte MTU.
            NetworkKind::Standard10Mb => NetParams {
                bits_per_sec: 10_000_000,
                latency: SimDuration::from_micros(25),
                max_payload: 1500,
            },
        }
    }

    /// Time for `bytes` to cross the wire at the physical bit rate.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        let nanos = (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bits_per_sec;
        SimDuration::from_nanos(nanos)
    }
}

/// The §5.4 hardware bug: the 3 Mb interface sometimes fails to detect a
/// collision, so instead of cleanly deferring, overlapping transmissions
/// go out anyway and "show up as corrupted packets" at the receivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionBug {
    /// Probability that a transmission which found the medium busy (and a
    /// contender queued) is corrupted rather than cleanly deferred.
    pub corrupt_prob: f64,
}

impl CollisionBug {
    /// Calibrated so two ping-pong pairs on the 3 Mb net lose roughly one
    /// packet in 2000, as the paper observed.
    pub const PAPER_3MB: CollisionBug = CollisionBug {
        corrupt_prob: 0.004,
    };
}

/// One frame arriving at one station.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Arrival instant at the destination interface (frame fully received
    /// into the interface's on-board buffer; the receiving CPU still has to
    /// copy it out, which the kernel charges separately).
    pub at: SimTime,
    /// The receiving station.
    pub dst: MacAddr,
    /// The frame (payload possibly corrupted).
    pub frame: Frame,
    /// True if fault injection or the collision bug corrupted the payload.
    /// Receivers must detect this via their protocol checksum; the flag
    /// exists only for medium statistics and test assertions.
    pub corrupted: bool,
}

/// Result of one transmit request.
#[derive(Debug, Clone)]
pub struct TxResult {
    /// When the transmission actually started (after any CSMA deferral).
    pub tx_start: SimTime,
    /// When the medium became free again; the sending interface is also
    /// busy until this instant (single-buffered transmitter).
    pub tx_end: SimTime,
    /// Frame arrivals this transmission produces (empty if every copy was
    /// lost).
    pub deliveries: Vec<Delivery>,
}

/// Transmit window of one transmission — the allocation-free part of a
/// [`TxResult`]; the deliveries themselves land in a caller-owned
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxWindow {
    /// When the transmission actually started (after any CSMA deferral).
    pub tx_start: SimTime,
    /// When the medium became free again; the sending interface is also
    /// busy until this instant (single-buffered transmitter).
    pub tx_end: SimTime,
}

/// Aggregate medium statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MediumStats {
    /// Frames handed to the medium.
    pub frames_sent: u64,
    /// Total payload bytes handed to the medium.
    pub bytes_sent: u64,
    /// Deliveries produced (broadcast counts each receiver).
    pub deliveries: u64,
    /// Deliveries dropped by fault injection.
    pub dropped: u64,
    /// Deliveries corrupted (fault injection or collision bug).
    pub corrupted: u64,
    /// Duplicate deliveries produced by fault injection.
    pub duplicated: u64,
    /// Deliveries held back past a later frame (point-to-point links
    /// only; a shared segment cannot reorder).
    pub reordered: u64,
    /// Transmissions that had to defer because the medium was busy.
    pub deferrals: u64,
    /// Frames corrupted by the collision-detection bug.
    pub bug_corruptions: u64,
    /// Accumulated medium busy time.
    pub busy: SimDuration,
}

impl MediumStats {
    /// Accumulates another counter set into this one (used to total
    /// multi-segment topologies).
    pub fn absorb(&mut self, o: &MediumStats) {
        // Exhaustive destructuring: adding a counter to the struct
        // without totalling it here is a compile error, not a silent
        // under-report in multi-segment topologies.
        let MediumStats {
            frames_sent,
            bytes_sent,
            deliveries,
            dropped,
            corrupted,
            duplicated,
            reordered,
            deferrals,
            bug_corruptions,
            busy,
        } = *o;
        self.frames_sent += frames_sent;
        self.bytes_sent += bytes_sent;
        self.deliveries += deliveries;
        self.dropped += dropped;
        self.corrupted += corrupted;
        self.duplicated += duplicated;
        self.reordered += reordered;
        self.deferrals += deferrals;
        self.bug_corruptions += bug_corruptions;
        self.busy += busy;
    }

    /// Fraction of `elapsed` the medium spent busy.
    ///
    /// Meaningful for a single medium's counters; on stats summed across
    /// segments ([`MediumStats::absorb`]) `busy` aggregates every
    /// segment, so this reports N × the per-segment average and can
    /// exceed 1.0.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Offered load in bits per second over `elapsed`.
    pub fn offered_bits_per_sec(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            (self.bytes_sent * 8) as f64 / elapsed.as_secs_f64()
        }
    }
}

/// The shared broadcast medium connecting all stations.
///
/// A transmission occupies the medium for its wire time; a transmit request
/// arriving while the medium is busy defers until it is free (CSMA without
/// collisions — except in [`CollisionBug`] mode). Deliveries appear at
/// every addressed station one latency after transmission end.
#[derive(Debug)]
pub struct Ethernet {
    params: NetParams,
    /// Attached stations, kept sorted (broadcast fan-out iterates in
    /// address order, which fixes the per-receiver fault-RNG draw
    /// sequence and hence determinism).
    stations: Vec<MacAddr>,
    medium_free: SimTime,
    faults: FaultPlan,
    bug: Option<CollisionBug>,
    rng: SplitMix64,
    stats: MediumStats,
    /// Interval between a frame and its injected duplicate.
    redelivery_gap: SimDuration,
}

impl Ethernet {
    /// Creates a medium with the given physical parameters.
    pub fn new(params: NetParams, seed: u64) -> Self {
        Ethernet {
            params,
            stations: Vec::new(),
            medium_free: SimTime::ZERO,
            faults: FaultPlan::NONE,
            bug: None,
            rng: SplitMix64::new(seed),
            stats: MediumStats::default(),
            redelivery_gap: REDELIVERY_GAP,
        }
    }

    /// Creates a medium for a network flavour.
    pub fn for_kind(kind: NetworkKind, seed: u64) -> Self {
        Ethernet::new(NetParams::for_kind(kind), seed)
    }

    /// Physical parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Installs a fault plan.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Enables or disables the §5.4 collision-detection bug.
    pub fn set_collision_bug(&mut self, bug: Option<CollisionBug>) {
        self.bug = bug;
    }

    /// Registers a station so broadcasts reach it.
    pub fn register(&mut self, mac: MacAddr) {
        assert!(!mac.is_broadcast(), "cannot register the broadcast address");
        if let Err(pos) = self.stations.binary_search(&mac) {
            self.stations.insert(pos, mac);
        }
    }

    /// Medium statistics so far.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Allocating convenience wrapper around
    /// [`Ethernet::transmit_into`], for tests and one-shot probes; the
    /// kernel hot path reuses a scratch buffer through the transport
    /// trait instead.
    pub fn transmit(&mut self, ready: SimTime, frame: Frame) -> TxResult {
        let mut deliveries = Vec::new();
        let win = self.transmit_into(ready, frame, &mut deliveries);
        TxResult {
            tx_start: win.tx_start,
            tx_end: win.tx_end,
            deliveries,
        }
    }

    /// Transmits `frame`, whose copy into the sending interface completed
    /// at `ready`, appending the resulting deliveries to `out`. A unicast
    /// delivery reuses the transmitted frame itself; a broadcast clones
    /// once per receiver and nothing else — there is no per-transmit
    /// bookkeeping allocation, which is what lets a 1000-station
    /// boot-storm broadcast stay cheap.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the MTU — the kernel's transfer
    /// engines are responsible for fragmentation, and exceeding the MTU
    /// there is a protocol bug worth failing loudly on.
    pub fn transmit_into(
        &mut self,
        ready: SimTime,
        frame: Frame,
        out: &mut Vec<Delivery>,
    ) -> TxWindow {
        assert!(
            frame.payload.len() <= self.params.max_payload,
            "frame payload {} exceeds MTU {}",
            frame.payload.len(),
            self.params.max_payload
        );

        let deferred = self.medium_free > ready;
        if deferred {
            self.stats.deferrals += 1;
        }
        let tx_start = ready.max(self.medium_free);
        let wire = self.params.wire_time(frame.wire_bytes());
        let tx_end = tx_start + wire;
        self.medium_free = tx_end;

        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.wire_bytes() as u64;
        self.stats.busy += wire;

        // The §5.4 bug: a deferred transmission occasionally goes out
        // overlapped with the one in progress; the collision is undetected
        // and the frame arrives corrupted.
        let bug_corrupt = match (deferred, self.bug) {
            (true, Some(bug)) => self.rng.chance(bug.corrupt_prob),
            _ => false,
        };
        if bug_corrupt {
            self.stats.bug_corruptions += 1;
        }

        let arrival = tx_end + self.params.latency;
        if frame.dst.is_broadcast() {
            for i in 0..self.stations.len() {
                let dst = self.stations[i];
                if dst == frame.src {
                    continue;
                }
                self.deliver_fate(out, arrival, dst, frame.clone(), bug_corrupt);
            }
        } else {
            let dst = frame.dst;
            self.deliver_fate(out, arrival, dst, frame, bug_corrupt);
        }

        TxWindow { tx_start, tx_end }
    }

    /// Draws one receiver's fate and appends the resulting deliveries
    /// (zero, one or two) to `out`, consuming the frame.
    fn deliver_fate(
        &mut self,
        out: &mut Vec<Delivery>,
        arrival: SimTime,
        dst: MacAddr,
        frame: Frame,
        bug_corrupt: bool,
    ) {
        match self.faults.draw(&mut self.rng) {
            Fate::Drop => {
                self.stats.dropped += 1;
            }
            Fate::Deliver => {
                out.push(self.make_delivery(arrival, dst, frame, bug_corrupt));
            }
            Fate::DeliverCorrupted => {
                out.push(self.make_delivery(arrival, dst, frame, true));
            }
            Fate::DeliverTwice { corrupted } => {
                self.stats.duplicated += 1;
                let dup = frame.clone();
                out.push(self.make_delivery(arrival, dst, frame, corrupted || bug_corrupt));
                out.push(self.make_delivery(arrival + self.redelivery_gap, dst, dup, bug_corrupt));
            }
        }
    }

    fn make_delivery(
        &mut self,
        at: SimTime,
        dst: MacAddr,
        mut frame: Frame,
        corrupted: bool,
    ) -> Delivery {
        self.stats.deliveries += 1;
        frame.dst = dst;
        if corrupted {
            self.stats.corrupted += 1;
            scramble(&mut self.rng, &mut frame.payload);
        }
        Delivery {
            at,
            dst,
            frame,
            corrupted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;

    fn frame(dst: MacAddr, src: MacAddr, len: usize) -> Frame {
        Frame::new(dst, src, EtherType::RAW_BENCH, vec![0xAB; len])
    }

    fn net3() -> Ethernet {
        let mut e = Ethernet::for_kind(NetworkKind::Experimental3Mb, 42);
        e.register(MacAddr(1));
        e.register(MacAddr(2));
        e.register(MacAddr(3));
        e
    }

    #[test]
    fn wire_time_matches_bit_rate() {
        let p = NetParams::for_kind(NetworkKind::Experimental3Mb);
        // 1024 bytes at 2.94 Mb/s = 2.786 ms (the paper quotes 2.784 for
        // its rounded rate).
        let t = p.wire_time(1024).as_millis_f64();
        assert!((t - 2.786).abs() < 0.01, "t={t}");
        let p10 = NetParams::for_kind(NetworkKind::Standard10Mb);
        let t10 = p10.wire_time(1000).as_millis_f64();
        assert!((t10 - 0.8).abs() < 0.01, "t10={t10}");
    }

    #[test]
    fn unicast_delivers_to_destination_only() {
        let mut e = net3();
        let r = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].dst, MacAddr(2));
        assert!(!r.deliveries[0].corrupted);
        assert!(r.deliveries[0].at > r.tx_end);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut e = net3();
        let r = e.transmit(SimTime::ZERO, frame(MacAddr::BROADCAST, MacAddr(1), 64));
        let mut dsts: Vec<u16> = r.deliveries.iter().map(|d| d.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![2, 3]);
    }

    #[test]
    fn busy_medium_defers_second_transmission() {
        let mut e = net3();
        let a = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
        let b = e.transmit(SimTime::from_micros(10), frame(MacAddr(1), MacAddr(3), 64));
        assert_eq!(b.tx_start, a.tx_end, "second frame must defer");
        assert_eq!(e.stats().deferrals, 1);
    }

    #[test]
    fn idle_medium_transmits_immediately() {
        let mut e = net3();
        let a = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        let later = a.tx_end + SimDuration::from_millis(1);
        let b = e.transmit(later, frame(MacAddr(1), MacAddr(2), 64));
        assert_eq!(b.tx_start, later);
        assert_eq!(e.stats().deferrals, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_frame_panics() {
        let mut e = net3();
        e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 5000));
    }

    #[test]
    fn loss_plan_drops_everything() {
        let mut e = net3();
        e.set_faults(FaultPlan::with_loss(1.0));
        let r = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(r.deliveries.is_empty());
        assert_eq!(e.stats().dropped, 1);
    }

    #[test]
    fn corruption_scrambles_payload() {
        let mut e = net3();
        e.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        });
        let r = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(r.deliveries.len(), 1);
        assert!(r.deliveries[0].corrupted);
        assert_ne!(r.deliveries[0].frame.payload, vec![0xAB; 64]);
    }

    #[test]
    fn duplication_produces_second_copy_later() {
        let mut e = net3();
        e.set_faults(FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::NONE
        });
        let r = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(r.deliveries.len(), 2);
        assert!(r.deliveries[1].at > r.deliveries[0].at);
        assert_eq!(e.stats().duplicated, 1);
    }

    #[test]
    fn collision_bug_corrupts_some_deferred_frames() {
        let mut e = net3();
        e.set_collision_bug(Some(CollisionBug { corrupt_prob: 1.0 }));
        // First frame occupies the medium; second defers and must be
        // corrupted by the bug.
        e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
        let r = e.transmit(SimTime::from_micros(5), frame(MacAddr(1), MacAddr(3), 64));
        assert!(r.deliveries[0].corrupted);
        assert_eq!(e.stats().bug_corruptions, 1);
    }

    #[test]
    fn collision_bug_spares_idle_transmissions() {
        let mut e = net3();
        e.set_collision_bug(Some(CollisionBug { corrupt_prob: 1.0 }));
        let r = e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(!r.deliveries[0].corrupted);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut e = net3();
        e.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1024));
        let elapsed = SimDuration::from_millis(10);
        let u = e.stats().utilization(elapsed);
        assert!((u - 0.2786).abs() < 0.01, "u={u}");
    }
}
