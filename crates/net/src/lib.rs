//! Simulated Ethernet substrate.
//!
//! The paper runs the V kernel over two local networks:
//!
//! * the 3 Mb **experimental Ethernet** (2.94 Mb/s) with a programmed-I/O
//!   interface and 8-bit station addresses, and
//! * the 10 Mb **standard Ethernet** with a slightly faster interface.
//!
//! This crate models the pieces of those networks that the paper's
//! evaluation actually depends on:
//!
//! * per-byte wire time at the physical bit rate;
//! * a shared medium — one transmission at a time, others defer (CSMA);
//! * fixed network + interface latency per frame;
//! * a **single-buffered transmit interface**: the processor cannot start
//!   copying the next frame into the interface until the previous frame
//!   has left it (this is what caps bulk-data throughput at ~192 KB/s in
//!   Table 6-3);
//! * broadcast and unicast addressing;
//! * fault injection — per-frame loss, duplication and corruption with a
//!   seeded RNG — used to exercise the kernel's reliability machinery;
//! * the §5.4 *collision-detection hardware bug* mode, where transmissions
//!   that collide with a busy medium are occasionally corrupted instead of
//!   cleanly deferred.
//!
//! Processor copy costs (memory ↔ interface) are charged by the kernel's
//! cost model, not here: they depend on the CPU speed, and the paper's
//! network-penalty analysis splits them out explicitly.
//!
//! Beyond the paper's single segment, the crate exposes a pluggable
//! [`Transport`] boundary: the shared [`Ethernet`] is one implementation,
//! [`PointToPointLink`] models a lossy WAN line, and [`Internetwork`]
//! joins Ethernet segments through a routed mesh of store-and-forward
//! gateways ([`MeshConfig`]: shortest-path tables computed at build
//! time, bounded per-gateway queues, loop-free broadcast flooding; the
//! PR 3 single-gateway star remains as [`InternetworkConfig`]). A
//! [`Topology`] value describes which to build.

pub mod fault;
pub mod frame;
pub mod internet;
pub mod link;
pub mod medium;
pub mod nic;
pub mod transport;

pub use fault::FaultPlan;
pub use frame::{EtherType, Frame, MacAddr};
pub use internet::{
    gateway_mac, is_gateway_mac, Internetwork, InternetworkConfig, MeshConfig, GATEWAY_MAC_FIRST,
    GATEWAY_MAC_LAST, MAX_GATEWAYS,
};
pub use link::{LinkParams, PointToPointLink};
pub use medium::{
    CollisionBug, Delivery, Ethernet, MediumStats, NetParams, NetworkKind, TxResult, TxWindow,
};
pub use nic::Nic;
pub use transport::{GatewayStats, Topology, Transport};
