//! A point-to-point WAN link.
//!
//! The paper's evaluation never leaves one shared Ethernet segment; this
//! medium models the regime beyond it — a long-haul serial link with
//! real propagation delay and per-frame loss, duplication and
//! reordering. The link is full duplex (each direction serializes
//! independently at the configured bandwidth) and connects exactly two
//! stations, so there is no contention — only distance and errors.

use v_sim::{SimDuration, SimTime, SplitMix64};

use crate::fault::{scramble, Fate, FaultPlan, REDELIVERY_GAP};
use crate::frame::{Frame, MacAddr};
use crate::medium::{Delivery, MediumStats, TxResult, TxWindow};
use crate::transport::Transport;

/// Physical and error parameters of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Serialization rate, bits per second, per direction.
    pub bits_per_sec: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Probability a frame is lost in transit.
    pub loss: f64,
    /// Probability a frame is duplicated (the copy arrives one
    /// redelivery interval later).
    pub duplicate: f64,
    /// Probability a frame is held back one extra propagation time,
    /// landing behind a frame sent after it.
    pub reorder: f64,
    /// Largest payload a single frame may carry.
    pub max_payload: usize,
}

impl LinkParams {
    /// A clean T1-grade long-haul line: 1.544 Mb/s, 30 ms one way.
    pub const T1: LinkParams = LinkParams {
        bits_per_sec: 1_544_000,
        propagation: SimDuration::from_millis(30),
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        max_payload: 1100,
    };

    /// Returns these parameters with the given loss probability.
    pub fn with_loss(mut self, loss: f64) -> LinkParams {
        self.loss = loss;
        self
    }

    /// Time for `bytes` to serialize onto the line.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        let nanos = (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bits_per_sec;
        SimDuration::from_nanos(nanos)
    }
}

/// A full-duplex link between two stations.
#[derive(Debug)]
pub struct PointToPointLink {
    params: LinkParams,
    endpoints: Vec<MacAddr>,
    /// Per-endpoint transmit-direction free instant.
    free: [SimTime; 2],
    faults: FaultPlan,
    rng: SplitMix64,
    stats: MediumStats,
    redelivery_gap: SimDuration,
}

impl PointToPointLink {
    /// Creates a link with the given parameters.
    pub fn new(params: LinkParams, seed: u64) -> PointToPointLink {
        PointToPointLink {
            params,
            endpoints: Vec::new(),
            free: [SimTime::ZERO; 2],
            faults: FaultPlan {
                loss: params.loss,
                duplicate: params.duplicate,
                corrupt: 0.0,
            },
            rng: SplitMix64::new(seed),
            stats: MediumStats::default(),
            redelivery_gap: REDELIVERY_GAP,
        }
    }

    /// The link's parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    fn deliver(&mut self, at: SimTime, dst: MacAddr, frame: &Frame, corrupted: bool) -> Delivery {
        self.stats.deliveries += 1;
        let mut frame = frame.clone();
        frame.dst = dst;
        if corrupted {
            self.stats.corrupted += 1;
            scramble(&mut self.rng, &mut frame.payload);
        }
        Delivery {
            at,
            dst,
            frame,
            corrupted,
        }
    }

    /// Counts a reordering, but only for frames that actually arrive —
    /// a dropped frame produced no delivery to reorder.
    fn note_reordered(&mut self, reordered: bool) {
        if reordered {
            self.stats.reordered += 1;
        }
    }

    /// Allocating convenience wrapper around the batched
    /// [`Transport::transmit`], for tests and one-shot probes.
    pub fn transmit(&mut self, ready: SimTime, frame: Frame) -> TxResult {
        let mut deliveries = Vec::new();
        let win = Transport::transmit(self, ready, frame, &mut deliveries);
        TxResult {
            tx_start: win.tx_start,
            tx_end: win.tx_end,
            deliveries,
        }
    }
}

impl Transport for PointToPointLink {
    fn attach(&mut self, mac: MacAddr, _segment: usize) {
        assert!(!mac.is_broadcast(), "cannot attach the broadcast address");
        if self.endpoints.contains(&mac) {
            return;
        }
        assert!(
            self.endpoints.len() < 2,
            "a point-to-point link connects exactly two stations"
        );
        self.endpoints.push(mac);
    }

    fn transmit(&mut self, ready: SimTime, frame: Frame, out: &mut Vec<Delivery>) -> TxWindow {
        assert!(
            frame.payload.len() <= self.params.max_payload,
            "frame payload {} exceeds link MTU {}",
            frame.payload.len(),
            self.params.max_payload
        );
        let idx = self
            .endpoints
            .iter()
            .position(|&m| m == frame.src)
            .expect("transmitting station is not attached to this link");

        // Serialize in this direction; the other direction is
        // independent (full duplex).
        let tx_start = ready.max(self.free[idx]);
        let wire = self.params.wire_time(frame.wire_bytes());
        let tx_end = tx_start + wire;
        self.free[idx] = tx_end;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.wire_bytes() as u64;
        self.stats.busy += wire;

        let peer = self.endpoints.iter().copied().find(|&m| m != frame.src);
        let deliverable = match peer {
            Some(p) => frame.dst.is_broadcast() || frame.dst == p,
            None => false,
        };
        if deliverable {
            let dst = peer.expect("checked");
            let mut arrival = tx_end + self.params.propagation;
            let reordered = self.rng.chance(self.params.reorder);
            if reordered {
                arrival += self.params.propagation;
            }
            match self.faults.draw(&mut self.rng) {
                // A dropped frame produced no delivery to reorder.
                Fate::Drop => self.stats.dropped += 1,
                Fate::Deliver => {
                    self.note_reordered(reordered);
                    out.push(self.deliver(arrival, dst, &frame, false));
                }
                Fate::DeliverCorrupted => {
                    self.note_reordered(reordered);
                    out.push(self.deliver(arrival, dst, &frame, true));
                }
                Fate::DeliverTwice { corrupted } => {
                    self.note_reordered(reordered);
                    self.stats.duplicated += 1;
                    out.push(self.deliver(arrival, dst, &frame, corrupted));
                    out.push(self.deliver(arrival + self.redelivery_gap, dst, &frame, false));
                }
            }
        }
        TxWindow { tx_start, tx_end }
    }

    fn poll_deliveries(&mut self, _out: &mut Vec<Delivery>) {}

    fn stats(&self) -> MediumStats {
        self.stats
    }

    fn max_payload(&self) -> usize {
        self.params.max_payload
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        // Replaces the plan wholesale, like every transport — including
        // the baseline derived from the link's loss/duplication
        // parameters (fold the line's rates into the plan if both are
        // wanted).
        self.faults = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;

    fn frame(dst: MacAddr, src: MacAddr, len: usize) -> Frame {
        Frame::new(dst, src, EtherType::RAW_BENCH, vec![0x5A; len])
    }

    fn link(params: LinkParams) -> PointToPointLink {
        let mut l = PointToPointLink::new(params, 11);
        l.attach(MacAddr(1), 0);
        l.attach(MacAddr(2), 0);
        l
    }

    #[test]
    fn delivery_pays_serialization_plus_propagation() {
        let mut l = link(LinkParams::T1);
        let r = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 193));
        // 193 bytes at 1.544 Mb/s = 1 ms on the wire, then 30 ms of
        // distance.
        assert_eq!(r.tx_end, SimTime::from_millis(1));
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].at, SimTime::from_millis(31));
    }

    #[test]
    fn directions_serialize_independently() {
        let mut l = link(LinkParams::T1);
        let a = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 1000));
        // The reverse direction is free even while 1→2 is busy.
        let b = l.transmit(SimTime::ZERO, frame(MacAddr(1), MacAddr(2), 64));
        assert_eq!(b.tx_start, SimTime::ZERO);
        // A second frame in the same direction defers.
        let c = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(c.tx_start, a.tx_end);
    }

    #[test]
    fn loss_drops_frames() {
        let mut l = link(LinkParams::T1.with_loss(1.0));
        let r = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert!(r.deliveries.is_empty());
        assert_eq!(l.stats().dropped, 1);
    }

    #[test]
    fn set_faults_replaces_the_baseline_plan_wholesale() {
        let mut l = link(LinkParams::T1.with_loss(1.0));
        // An explicit empty plan clears even the params-derived loss,
        // exactly as it does on every other transport.
        l.set_faults(FaultPlan::NONE);
        let r = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(l.stats().dropped, 0);
    }

    #[test]
    fn corruption_scrambles_payload_and_is_flagged() {
        let mut l = link(LinkParams::T1);
        l.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        });
        let r = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(r.deliveries.len(), 1);
        assert!(r.deliveries[0].corrupted);
        assert_ne!(r.deliveries[0].frame.payload, vec![0x5A; 64]);
        assert_eq!(l.stats().corrupted, 1);
    }

    #[test]
    fn duplication_produces_a_second_copy() {
        let mut p = LinkParams::T1;
        p.duplicate = 1.0;
        let mut l = link(p);
        let r = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(r.deliveries.len(), 2);
        assert!(r.deliveries[1].at > r.deliveries[0].at);
        assert_eq!(l.stats().duplicated, 1);
    }

    #[test]
    fn reordered_frame_lands_behind_its_successor() {
        let mut p = LinkParams::T1;
        p.reorder = 1.0;
        let mut l = link(p);
        let a = l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        p.reorder = 0.0;
        let mut clean = link(p);
        let b = clean.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 64));
        assert_eq!(
            a.deliveries[0].at,
            b.deliveries[0].at + LinkParams::T1.propagation
        );
        assert_eq!(l.stats().reordered, 1);
    }

    #[test]
    #[should_panic(expected = "exactly two stations")]
    fn third_station_is_rejected() {
        let mut l = link(LinkParams::T1);
        l.attach(MacAddr(3), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds link MTU")]
    fn oversized_frame_panics() {
        let mut l = link(LinkParams::T1);
        l.transmit(SimTime::ZERO, frame(MacAddr(2), MacAddr(1), 5000));
    }
}
