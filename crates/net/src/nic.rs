//! Per-station network interface state.

use v_sim::SimTime;

use crate::frame::MacAddr;

/// A station's network interface.
///
/// The paper's interfaces are programmed-I/O: the processor copies each
/// outgoing frame into the interface and each incoming frame out of it.
/// The transmit side is **single-buffered** — the next copy-in cannot
/// begin until the previous frame has finished transmitting. (The receive
/// side has "considerable on-board buffering", so we do not model receive
/// overruns.)
///
/// Copy costs are CPU-speed dependent and are charged by the kernel's cost
/// model; the NIC only tracks *when the transmit buffer frees up* plus
/// some counters.
#[derive(Debug, Clone)]
pub struct Nic {
    mac: MacAddr,
    /// Instant the transmit buffer becomes free (end of last transmission).
    tx_free: SimTime,
    /// Frames handed to the medium.
    pub tx_frames: u64,
    /// Payload bytes handed to the medium.
    pub tx_bytes: u64,
    /// Frames received (after medium-level loss).
    pub rx_frames: u64,
    /// Payload bytes received.
    pub rx_bytes: u64,
    /// Received frames discarded for checksum failure.
    pub rx_bad: u64,
}

impl Nic {
    /// Creates an interface for station `mac`.
    pub fn new(mac: MacAddr) -> Self {
        Nic {
            mac,
            tx_free: SimTime::ZERO,
            tx_frames: 0,
            tx_bytes: 0,
            rx_frames: 0,
            rx_bytes: 0,
            rx_bad: 0,
        }
    }

    /// This station's address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Earliest instant a new copy-in may begin.
    pub fn tx_ready_after(&self, now: SimTime) -> SimTime {
        now.max(self.tx_free)
    }

    /// Records a transmission occupying the buffer until `tx_end`.
    pub fn note_tx(&mut self, tx_end: SimTime, bytes: usize) {
        debug_assert!(tx_end >= self.tx_free);
        self.tx_free = tx_end;
        self.tx_frames += 1;
        self.tx_bytes += bytes as u64;
    }

    /// Records a frame reception.
    pub fn note_rx(&mut self, bytes: usize) {
        self.rx_frames += 1;
        self.rx_bytes += bytes as u64;
    }

    /// Records a checksum-failed reception.
    pub fn note_rx_bad(&mut self) {
        self.rx_bad += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_sim::SimDuration;

    #[test]
    fn tx_buffer_serializes() {
        let mut nic = Nic::new(MacAddr(1));
        let now = SimTime::from_millis(1);
        assert_eq!(nic.tx_ready_after(now), now);
        nic.note_tx(SimTime::from_millis(3), 64);
        // A copy requested at t=2 must wait for the buffer.
        assert_eq!(
            nic.tx_ready_after(SimTime::from_millis(2)),
            SimTime::from_millis(3)
        );
        // A copy requested later starts immediately.
        let later = SimTime::from_millis(3) + SimDuration::from_micros(1);
        assert_eq!(nic.tx_ready_after(later), later);
    }

    #[test]
    fn counters_accumulate() {
        let mut nic = Nic::new(MacAddr(7));
        nic.note_tx(SimTime::from_millis(1), 100);
        nic.note_tx(SimTime::from_millis(2), 28);
        nic.note_rx(64);
        nic.note_rx_bad();
        assert_eq!(nic.tx_frames, 2);
        assert_eq!(nic.tx_bytes, 128);
        assert_eq!(nic.rx_frames, 1);
        assert_eq!(nic.rx_bytes, 64);
        assert_eq!(nic.rx_bad, 1);
        assert_eq!(nic.mac(), MacAddr(7));
    }
}
