//! Transport-conformance suite: every [`Transport`] implementation must
//! honour the same contract — unicast delivery with positive latency,
//! stats accounting, total loss dropping everything, duplication
//! producing extra copies, and bit-for-bit determinism under a fixed
//! seed. Each check runs against all four transports, including a
//! 3-segment routed mesh whose A→B path crosses two gateways.

use v_net::{
    EtherType, FaultPlan, Frame, InternetworkConfig, LinkParams, MacAddr, MeshConfig, NetworkKind,
    Topology, Transport,
};
use v_sim::{SimDuration, SimTime};

const A: MacAddr = MacAddr(1);
const B: MacAddr = MacAddr(2);

/// Every topology under test, with stations A and B attached so that a
/// frame from A to B must cross the whole thing (for the internetwork
/// that means crossing the gateway; for the mesh, two gateways).
fn all_transports(seed: u64) -> Vec<(&'static str, Box<dyn Transport>)> {
    let mut out: Vec<(&'static str, Box<dyn Transport>)> = Vec::new();
    let topologies = [
        (
            "ethernet-3mb",
            Topology::SingleSegment(NetworkKind::Experimental3Mb),
        ),
        ("point-to-point", Topology::PointToPoint(LinkParams::T1)),
        (
            "internetwork",
            Topology::Internetwork(InternetworkConfig::two_segments()),
        ),
        ("mesh-3seg-line", Topology::Mesh(MeshConfig::line(3))),
    ];
    for (name, topo) in topologies {
        let mut t = topo.build(seed);
        t.attach(A, 0);
        t.attach(B, segments_of(&topo) - 1);
        out.push((name, t));
    }
    out
}

fn segments_of(t: &Topology) -> usize {
    t.num_segments()
}

fn frame(dst: MacAddr, len: usize) -> Frame {
    Frame::new(dst, A, EtherType::RAW_BENCH, vec![0xA5; len])
}

/// Transmit plus a poll drain — the full delivery set of one send.
fn send(t: &mut dyn Transport, at: SimTime, f: Frame) -> Vec<v_net::Delivery> {
    let mut ds = Vec::new();
    t.transmit(at, f, &mut ds);
    t.poll_deliveries(&mut ds);
    ds
}

#[test]
fn unicast_reaches_the_destination_with_positive_latency() {
    for (name, mut t) in all_transports(3) {
        let ds = send(t.as_mut(), SimTime::ZERO, frame(B, 100));
        assert_eq!(ds.len(), 1, "{name}: exactly one delivery");
        assert_eq!(ds[0].dst, B, "{name}");
        assert!(ds[0].at > SimTime::ZERO, "{name}: delivery takes time");
        assert!(!ds[0].corrupted, "{name}: clean medium");
        assert_eq!(
            ds[0].frame.payload,
            vec![0xA5; 100],
            "{name}: payload intact"
        );
    }
}

#[test]
fn stats_account_for_traffic() {
    for (name, mut t) in all_transports(4) {
        for i in 0..5u64 {
            send(t.as_mut(), SimTime::from_millis(10 * i), frame(B, 64));
        }
        let s = t.stats();
        assert!(s.frames_sent >= 5, "{name}: frames_sent={}", s.frames_sent);
        assert!(
            s.bytes_sent >= 5 * 64,
            "{name}: bytes_sent={}",
            s.bytes_sent
        );
        assert!(s.deliveries >= 5, "{name}: deliveries={}", s.deliveries);
        assert!(!s.busy.is_zero(), "{name}: busy time accumulates");
    }
}

#[test]
fn total_loss_drops_every_delivery() {
    for (name, mut t) in all_transports(5) {
        t.set_faults(FaultPlan::with_loss(1.0));
        for i in 0..10u64 {
            let ds = send(t.as_mut(), SimTime::from_millis(10 * i), frame(B, 64));
            assert!(ds.is_empty(), "{name}: nothing may arrive");
        }
        assert!(t.stats().dropped >= 10, "{name}: drops counted");
    }
}

#[test]
fn duplication_produces_later_extra_copies() {
    for (name, mut t) in all_transports(6) {
        t.set_faults(FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::NONE
        });
        let ds = send(t.as_mut(), SimTime::ZERO, frame(B, 64));
        assert!(ds.len() >= 2, "{name}: got {} copies", ds.len());
        assert!(ds.iter().all(|d| d.dst == B), "{name}");
        assert!(
            ds.iter().any(|d| d.at > ds[0].at),
            "{name}: a copy must arrive later"
        );
        assert!(t.stats().duplicated >= 1, "{name}");
    }
}

#[test]
fn corruption_is_flagged_and_scrambles_or_is_dropped_in_transit() {
    for (name, mut t) in all_transports(12) {
        t.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        });
        let ds = send(t.as_mut(), SimTime::ZERO, frame(B, 64));
        for d in &ds {
            assert!(d.corrupted, "{name}: delivery must be flagged");
            assert_ne!(
                d.frame.payload,
                vec![0xA5; 64],
                "{name}: payload must be scrambled"
            );
        }
        // A store-and-forward gateway legitimately discards corrupted
        // ingress instead of delivering it; either way the corruption
        // must be visible in the statistics.
        let gw_drops = t.gateway_stats().map_or(0, |g| g.corrupt_drops);
        assert!(
            t.stats().corrupted >= 1 || gw_drops >= 1,
            "{name}: corruption must be accounted"
        );
    }
}

#[test]
fn identical_seeds_produce_identical_fault_draws() {
    let storm = FaultPlan {
        loss: 0.3,
        duplicate: 0.15,
        corrupt: 0.15,
    };
    let trace = |seed: u64| -> Vec<Vec<(u64, bool, u8)>> {
        all_transports(seed)
            .into_iter()
            .map(|(_, mut t)| {
                t.set_faults(storm);
                let mut log = Vec::new();
                for i in 0..200u64 {
                    let at = SimTime::from_micros(500 * i);
                    let len = 32 + (i as usize % 4) * 100;
                    for d in send(t.as_mut(), at, frame(B, len)) {
                        log.push((d.at.as_nanos(), d.corrupted, d.frame.payload[0]));
                    }
                }
                log
            })
            .collect()
    };
    let a = trace(0xFEED);
    let b = trace(0xFEED);
    assert_eq!(a, b, "same seed ⇒ identical delivery traces");
    let c = trace(0xBEEF);
    assert_ne!(a, c, "a different seed must explore different faults");
}

#[test]
fn faulty_transports_still_deliver_most_traffic() {
    for (name, mut t) in all_transports(7) {
        t.set_faults(FaultPlan::with_loss(0.1));
        let mut arrived = 0u64;
        for i in 0..200u64 {
            arrived += send(t.as_mut(), SimTime::from_micros(700 * i), frame(B, 64)).len() as u64;
        }
        // A multi-hop path draws the 10% loss once per segment crossed
        // (three times on the 3-segment mesh: survival ≈ 0.9³ ≈ 73%).
        assert!(
            (125..=210).contains(&arrived),
            "{name}: {arrived}/200 arrived under 10% loss"
        );
    }
}

#[test]
fn broadcast_crosses_the_whole_topology() {
    for (name, mut t) in all_transports(8) {
        let ds = send(t.as_mut(), SimTime::ZERO, frame(MacAddr::BROADCAST, 64));
        assert_eq!(ds.len(), 1, "{name}: B is the only other station");
        assert_eq!(ds[0].dst, B, "{name}");
    }
}

#[test]
fn mtu_is_at_least_a_kernel_page_exchange() {
    // The kernel fragments at 512 data bytes + 32-byte header; every
    // transport must carry that (plus slack) in one frame.
    for (name, t) in all_transports(9) {
        assert!(t.max_payload() >= 600, "{name}: MTU {}", t.max_payload());
    }
}

#[test]
fn internetwork_gateway_reports_forwarding_stats() {
    let mut t = Topology::Internetwork(InternetworkConfig::two_segments()).build(10);
    t.attach(A, 0);
    t.attach(B, 1);
    send(t.as_mut(), SimTime::ZERO, frame(B, 64));
    let g = t.gateway_stats().expect("internetwork has a gateway");
    assert_eq!(g.forwarded, 1);
    assert_eq!(g.queue_drops, 0);

    // Single-hop transports have none.
    let eth = Topology::SingleSegment(NetworkKind::Standard10Mb).build(10);
    assert!(eth.gateway_stats().is_none());
    let p2p = Topology::PointToPoint(LinkParams::T1).build(10);
    assert!(p2p.gateway_stats().is_none());
}

#[test]
fn deliveries_are_never_scheduled_in_the_past() {
    for (name, mut t) in all_transports(11) {
        let at = SimTime::from_millis(5);
        for d in send(t.as_mut(), at, frame(B, 1000)) {
            assert!(d.at > at, "{name}: delivery at {:?} before send", d.at);
        }
        // Even under pathological extra delay knobs.
        let _ = SimDuration::ZERO;
    }
}

// ---- mesh-specific contract -------------------------------------------

/// A 3-segment line with one host per segment (1—gw—2—gw—3) plus a
/// second host on segment 0 for the zero-hop reference.
fn line3() -> Box<dyn Transport> {
    let mut t = Topology::Mesh(MeshConfig::line(3)).build(13);
    t.attach(MacAddr(1), 0);
    t.attach(MacAddr(9), 0);
    t.attach(MacAddr(2), 1);
    t.attach(MacAddr(3), 2);
    t
}

fn arrival(t: &mut dyn Transport, dst: MacAddr) -> SimTime {
    let ds = send(t, SimTime::ZERO, frame(dst, 64));
    assert_eq!(ds.len(), 1, "exactly one copy of a clean unicast");
    ds[0].at
}

#[test]
fn mesh_unicast_latency_is_additive_per_hop() {
    // Identical segments and a fixed per-hop forwarding cost: the 1-hop
    // and 2-hop increments over the same-segment delivery are *equal*,
    // not merely positive.
    let zero = arrival(line3().as_mut(), MacAddr(9));
    let one = arrival(line3().as_mut(), MacAddr(2));
    let two = arrival(line3().as_mut(), MacAddr(3));
    assert!(zero < one && one < two, "{zero:?} / {one:?} / {two:?}");
    assert_eq!(
        one.since(zero),
        two.since(one),
        "each hop must cost the same increment"
    );
}

#[test]
fn mesh_broadcast_reaches_every_host_exactly_once() {
    // On a ring (which has a physical loop) a naive flood would circle
    // forever; the seen-set dedup must deliver exactly one copy per host.
    let mut t = Topology::Mesh(MeshConfig::ring(4)).build(14);
    for s in 0..4u16 {
        t.attach(MacAddr(1 + s), s as usize);
        t.attach(MacAddr(11 + s), s as usize);
    }
    let ds = send(t.as_mut(), SimTime::ZERO, frame(MacAddr::BROADCAST, 64));
    let mut dsts: Vec<u16> = ds.iter().map(|d| d.dst.0).collect();
    dsts.sort_unstable();
    assert_eq!(
        dsts,
        vec![2, 3, 4, 11, 12, 13, 14],
        "every host but the sender, each exactly once"
    );
}

#[test]
fn mesh_interior_gateway_overflow_drops_and_recovers() {
    let mut cfg = MeshConfig::line(3);
    cfg.gateway_queue = 1;
    let mut t = Topology::Mesh(cfg).build(15);
    t.attach(A, 0);
    t.attach(MacAddr(3), 2);
    // Back-to-back 2-hop frames: the interior gateway's 1-frame queue
    // must overflow, yet later (spaced) traffic still gets through.
    let mut arrived = 0;
    for _ in 0..20 {
        arrived += send(t.as_mut(), SimTime::ZERO, frame(MacAddr(3), 1024)).len();
    }
    let per = t.per_gateway_stats();
    assert_eq!(per.len(), 2);
    let drops: u64 = per.iter().map(|g| g.queue_drops).sum();
    assert!(drops > 0, "burst must overflow a 1-frame queue: {per:?}");
    assert!(arrived > 0, "some frames still cross both hops");
    // A later, uncontended retransmission (what the kernel would do)
    // crosses cleanly.
    let late = send(
        t.as_mut(),
        SimTime::from_millis(500),
        frame(MacAddr(3), 1024),
    );
    assert_eq!(late.len(), 1, "recovery after the burst drains");
}

#[test]
fn mesh_reports_per_gateway_stats() {
    let mut t = line3();
    send(t.as_mut(), SimTime::ZERO, frame(MacAddr(3), 64));
    let per = t.per_gateway_stats();
    assert_eq!(per.len(), 2, "one entry per placed gateway");
    assert_eq!(per[0].forwarded, 1);
    assert_eq!(per[1].forwarded, 1);
    let total = t.gateway_stats().expect("mesh has gateways");
    assert_eq!(total.forwarded, 2, "aggregate sums the per-gateway view");
    // Transports without a forwarding element report an empty vector.
    assert!(Topology::SingleSegment(NetworkKind::Standard10Mb)
        .build(15)
        .per_gateway_stats()
        .is_empty());
}
