//! Transport-conformance suite: every [`Transport`] implementation must
//! honour the same contract — unicast delivery with positive latency,
//! stats accounting, total loss dropping everything, duplication
//! producing extra copies, and bit-for-bit determinism under a fixed
//! seed. Each check runs against all three transports.

use v_net::{
    EtherType, FaultPlan, Frame, InternetworkConfig, LinkParams, MacAddr, NetworkKind, Topology,
    Transport,
};
use v_sim::{SimDuration, SimTime};

const A: MacAddr = MacAddr(1);
const B: MacAddr = MacAddr(2);

/// Every topology under test, with stations A and B attached so that a
/// frame from A to B must cross the whole thing (for the internetwork,
/// that means crossing the gateway).
fn all_transports(seed: u64) -> Vec<(&'static str, Box<dyn Transport>)> {
    let mut out: Vec<(&'static str, Box<dyn Transport>)> = Vec::new();
    let topologies = [
        (
            "ethernet-3mb",
            Topology::SingleSegment(NetworkKind::Experimental3Mb),
        ),
        ("point-to-point", Topology::PointToPoint(LinkParams::T1)),
        (
            "internetwork",
            Topology::Internetwork(InternetworkConfig::two_segments()),
        ),
    ];
    for (name, topo) in topologies {
        let mut t = topo.build(seed);
        t.attach(A, 0);
        t.attach(B, 1 % segments_of(&topo));
        out.push((name, t));
    }
    out
}

fn segments_of(t: &Topology) -> usize {
    match t {
        Topology::Internetwork(c) => c.segments.len(),
        _ => 1,
    }
}

fn frame(dst: MacAddr, len: usize) -> Frame {
    Frame::new(dst, A, EtherType::RAW_BENCH, vec![0xA5; len])
}

/// Transmit plus a poll drain — the full delivery set of one send.
fn send(t: &mut dyn Transport, at: SimTime, f: Frame) -> Vec<v_net::Delivery> {
    let mut ds = t.transmit(at, f).deliveries;
    ds.extend(t.poll_deliveries());
    ds
}

#[test]
fn unicast_reaches_the_destination_with_positive_latency() {
    for (name, mut t) in all_transports(3) {
        let ds = send(t.as_mut(), SimTime::ZERO, frame(B, 100));
        assert_eq!(ds.len(), 1, "{name}: exactly one delivery");
        assert_eq!(ds[0].dst, B, "{name}");
        assert!(ds[0].at > SimTime::ZERO, "{name}: delivery takes time");
        assert!(!ds[0].corrupted, "{name}: clean medium");
        assert_eq!(
            ds[0].frame.payload,
            vec![0xA5; 100],
            "{name}: payload intact"
        );
    }
}

#[test]
fn stats_account_for_traffic() {
    for (name, mut t) in all_transports(4) {
        for i in 0..5u64 {
            send(t.as_mut(), SimTime::from_millis(10 * i), frame(B, 64));
        }
        let s = t.stats();
        assert!(s.frames_sent >= 5, "{name}: frames_sent={}", s.frames_sent);
        assert!(
            s.bytes_sent >= 5 * 64,
            "{name}: bytes_sent={}",
            s.bytes_sent
        );
        assert!(s.deliveries >= 5, "{name}: deliveries={}", s.deliveries);
        assert!(!s.busy.is_zero(), "{name}: busy time accumulates");
    }
}

#[test]
fn total_loss_drops_every_delivery() {
    for (name, mut t) in all_transports(5) {
        t.set_faults(FaultPlan::with_loss(1.0));
        for i in 0..10u64 {
            let ds = send(t.as_mut(), SimTime::from_millis(10 * i), frame(B, 64));
            assert!(ds.is_empty(), "{name}: nothing may arrive");
        }
        assert!(t.stats().dropped >= 10, "{name}: drops counted");
    }
}

#[test]
fn duplication_produces_later_extra_copies() {
    for (name, mut t) in all_transports(6) {
        t.set_faults(FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::NONE
        });
        let ds = send(t.as_mut(), SimTime::ZERO, frame(B, 64));
        assert!(ds.len() >= 2, "{name}: got {} copies", ds.len());
        assert!(ds.iter().all(|d| d.dst == B), "{name}");
        assert!(
            ds.iter().any(|d| d.at > ds[0].at),
            "{name}: a copy must arrive later"
        );
        assert!(t.stats().duplicated >= 1, "{name}");
    }
}

#[test]
fn corruption_is_flagged_and_scrambles_or_is_dropped_in_transit() {
    for (name, mut t) in all_transports(12) {
        t.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::NONE
        });
        let ds = send(t.as_mut(), SimTime::ZERO, frame(B, 64));
        for d in &ds {
            assert!(d.corrupted, "{name}: delivery must be flagged");
            assert_ne!(
                d.frame.payload,
                vec![0xA5; 64],
                "{name}: payload must be scrambled"
            );
        }
        // A store-and-forward gateway legitimately discards corrupted
        // ingress instead of delivering it; either way the corruption
        // must be visible in the statistics.
        let gw_drops = t.gateway_stats().map_or(0, |g| g.corrupt_drops);
        assert!(
            t.stats().corrupted >= 1 || gw_drops >= 1,
            "{name}: corruption must be accounted"
        );
    }
}

#[test]
fn identical_seeds_produce_identical_fault_draws() {
    let storm = FaultPlan {
        loss: 0.3,
        duplicate: 0.15,
        corrupt: 0.15,
    };
    let trace = |seed: u64| -> Vec<Vec<(u64, bool, u8)>> {
        all_transports(seed)
            .into_iter()
            .map(|(_, mut t)| {
                t.set_faults(storm);
                let mut log = Vec::new();
                for i in 0..200u64 {
                    let at = SimTime::from_micros(500 * i);
                    let len = 32 + (i as usize % 4) * 100;
                    for d in send(t.as_mut(), at, frame(B, len)) {
                        log.push((d.at.as_nanos(), d.corrupted, d.frame.payload[0]));
                    }
                }
                log
            })
            .collect()
    };
    let a = trace(0xFEED);
    let b = trace(0xFEED);
    assert_eq!(a, b, "same seed ⇒ identical delivery traces");
    let c = trace(0xBEEF);
    assert_ne!(a, c, "a different seed must explore different faults");
}

#[test]
fn faulty_transports_still_deliver_most_traffic() {
    for (name, mut t) in all_transports(7) {
        t.set_faults(FaultPlan::with_loss(0.1));
        let mut arrived = 0u64;
        for i in 0..200u64 {
            arrived += send(t.as_mut(), SimTime::from_micros(700 * i), frame(B, 64)).len() as u64;
        }
        assert!(
            (150..=210).contains(&arrived),
            "{name}: {arrived}/200 arrived under 10% loss"
        );
    }
}

#[test]
fn broadcast_crosses_the_whole_topology() {
    for (name, mut t) in all_transports(8) {
        let ds = send(t.as_mut(), SimTime::ZERO, frame(MacAddr::BROADCAST, 64));
        assert_eq!(ds.len(), 1, "{name}: B is the only other station");
        assert_eq!(ds[0].dst, B, "{name}");
    }
}

#[test]
fn mtu_is_at_least_a_kernel_page_exchange() {
    // The kernel fragments at 512 data bytes + 32-byte header; every
    // transport must carry that (plus slack) in one frame.
    for (name, t) in all_transports(9) {
        assert!(t.max_payload() >= 600, "{name}: MTU {}", t.max_payload());
    }
}

#[test]
fn internetwork_gateway_reports_forwarding_stats() {
    let mut t = Topology::Internetwork(InternetworkConfig::two_segments()).build(10);
    t.attach(A, 0);
    t.attach(B, 1);
    send(t.as_mut(), SimTime::ZERO, frame(B, 64));
    let g = t.gateway_stats().expect("internetwork has a gateway");
    assert_eq!(g.forwarded, 1);
    assert_eq!(g.queue_drops, 0);

    // Single-hop transports have none.
    let eth = Topology::SingleSegment(NetworkKind::Standard10Mb).build(10);
    assert!(eth.gateway_stats().is_none());
    let p2p = Topology::PointToPoint(LinkParams::T1).build(10);
    assert!(p2p.gateway_stats().is_none());
}

#[test]
fn deliveries_are_never_scheduled_in_the_past() {
    for (name, mut t) in all_transports(11) {
        let at = SimTime::from_millis(5);
        for d in send(t.as_mut(), at, frame(B, 1000)) {
            assert!(d.at > at, "{name}: delivery at {:?} before send", d.at);
        }
        // Even under pathological extra delay knobs.
        let _ = SimDuration::ZERO;
    }
}
