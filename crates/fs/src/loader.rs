//! Program loading and the exec server.
//!
//! §6.3: "a simple command interpreter we have written ... loads programs
//! in two read operations: the first read accesses the program header
//! information; the second read copies the program code and data into the
//! newly created program space" — the second using `MoveTo` with large
//! transfer units. §7 adds that a file server "should have a general
//! program execution facility": for some programs it is cheaper to run
//! them next to the disk than to page them over the network, and with V
//! IPC this is transparent to the client.
//!
//! Image format: block 0 is the header; bytes 0..4 hold the image size
//! (little-endian), bytes 4..8 a fill byte pattern for verification; the
//! image proper starts at block 1.

use v_kernel::{Api, Outcome, Pid, Program};

use crate::client::stub;
use crate::proto::{IoReply, IoStatus};
use crate::store::{BlockStore, FileId};
use crate::BLOCK_SIZE;

/// Builds a loadable image file in a store: header block + `size` bytes
/// of `fill`.
pub fn install_image(store: &mut BlockStore, name: &str, size: u32, fill: u8) -> FileId {
    let mut data = vec![0u8; BLOCK_SIZE + size as usize];
    data[0..4].copy_from_slice(&size.to_le_bytes());
    data[4] = fill;
    data[BLOCK_SIZE..].fill(fill);
    store.create_with(name, &data).expect("fresh name")
}

/// Result of a program load.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// True when the image is in memory and verified.
    pub loaded: bool,
    /// Millisecond cost of the whole load (open + header + image).
    pub elapsed_ms: f64,
    /// Verification failures.
    pub integrity_errors: u64,
    /// Protocol errors.
    pub errors: u64,
}

const NAME_BUF: u32 = 0x0100;
const HDR_BUF: u32 = 0x0800;
/// Where the image lands — "the newly created program space".
pub const IMAGE_BASE: u32 = 0x10000;

enum Phase {
    Opening,
    Header,
    Image { size: u32, fill: u8 },
}

/// Loads a named program image from the file server, §6.3-style.
pub struct ProgramLoader {
    /// The file server.
    pub server: Pid,
    /// Image file name.
    pub name: String,
    /// Shared result.
    pub report: std::rc::Rc<std::cell::RefCell<LoadReport>>,
    phase: Phase,
    file: FileId,
    started: Option<v_sim::SimTime>,
}

impl ProgramLoader {
    /// Creates a loader.
    pub fn new(
        server: Pid,
        name: impl Into<String>,
        report: std::rc::Rc<std::cell::RefCell<LoadReport>>,
    ) -> ProgramLoader {
        ProgramLoader {
            server,
            name: name.into(),
            report,
            phase: Phase::Opening,
            file: FileId(0),
            started: None,
        }
    }

    fn fail(&self, api: &mut Api<'_>) {
        self.report.borrow_mut().errors += 1;
        api.exit();
    }
}

impl Program for ProgramLoader {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                self.started = Some(api.now());
                api.mem_write(NAME_BUF, self.name.clone().as_bytes())
                    .expect("name fits");
                api.send(stub::open(NAME_BUF, self.name.len() as u32, 1), self.server);
            }
            Outcome::Send(Ok(reply)) => {
                let reply = IoReply::decode(&reply);
                if reply.status != IoStatus::Ok {
                    self.fail(api);
                    return;
                }
                match self.phase {
                    Phase::Opening => {
                        self.file = reply.file;
                        self.phase = Phase::Header;
                        // First read: the program header.
                        api.send(
                            stub::read(self.file, 0, BLOCK_SIZE as u32, HDR_BUF, 2),
                            self.server,
                        );
                    }
                    Phase::Header => {
                        let hdr = api.mem_read(HDR_BUF, 8).expect("header in memory");
                        let size = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
                        let fill = hdr[4];
                        self.phase = Phase::Image { size, fill };
                        // Second read: the whole image via MoveTo.
                        api.send(
                            stub::read_large(self.file, 1, size, IMAGE_BASE, 3),
                            self.server,
                        );
                    }
                    Phase::Image { size, fill } => {
                        let img = api.mem_read(IMAGE_BASE, size as usize).expect("fits");
                        let mut rep = self.report.borrow_mut();
                        if img.iter().any(|&b| b != fill) {
                            rep.integrity_errors += 1;
                        }
                        rep.loaded = true;
                        rep.elapsed_ms = api
                            .now()
                            .since(self.started.expect("started"))
                            .as_millis_f64();
                        drop(rep);
                        api.exit();
                    }
                }
            }
            _ => self.fail(api),
        }
    }
}

/// §7's exec facility: receives a program name and runs the named image
/// *on this host* (the file server's machine), replying with the spawned
/// pid. Communication stays pure V IPC, so execution location is
/// transparent to the client.
pub struct ExecServer {
    /// The co-located file server to load from.
    pub file_server: Pid,
    /// Spawn count (observable by tests).
    pub spawned: std::rc::Rc<std::cell::RefCell<u64>>,
}

/// Exec request: name carried in the request segment, like file opens.
const EXEC_NAME_BUF: u32 = 0x0200;

impl Program for ExecServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.set_pid(
                    v_kernel::naming::logical::EXEC_SERVER,
                    api.self_pid(),
                    v_kernel::Scope::Both,
                );
                api.receive_with_segment(EXEC_NAME_BUF, 64);
            }
            Outcome::ReceiveSeg { from, seg_len, .. } => {
                let name = api.mem_read(EXEC_NAME_BUF, seg_len as usize).expect("fits");
                let name = String::from_utf8_lossy(&name).into_owned();
                // Run the image next to the disk: a loader on *this* host.
                let report = std::rc::Rc::new(std::cell::RefCell::new(LoadReport::default()));
                let pid = api.spawn(
                    &format!("exec:{name}"),
                    Box::new(ProgramLoader::new(self.file_server, name, report)),
                );
                *self.spawned.borrow_mut() += 1;
                let mut reply = v_kernel::Message::empty();
                reply.set_u32(4, pid.raw());
                let _ = api.reply(reply, from);
                api.receive_with_segment(EXEC_NAME_BUF, 64);
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FileServer, FileServerConfig};
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
    use v_sim::SimDuration;

    fn cluster_with_image() -> (Cluster, Pid) {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let mut store = BlockStore::new();
        install_image(&mut store, "shell", 65536, 0xC7);
        let server = cl.spawn(
            HostId(1),
            "fileserver",
            Box::new(FileServer::new(
                FileServerConfig {
                    disk: crate::disk::DiskModel::fixed(SimDuration::from_millis(2)),
                    transfer_unit: 4096,
                    ..FileServerConfig::default()
                },
                store,
            )),
        );
        (cl, server)
    }

    #[test]
    fn two_read_load_delivers_verified_image() {
        let (mut cl, server) = cluster_with_image();
        let rep = std::rc::Rc::new(std::cell::RefCell::new(LoadReport::default()));
        cl.spawn(
            HostId(0),
            "loader",
            Box::new(ProgramLoader::new(server, "shell", rep.clone())),
        );
        cl.run();
        let r = rep.borrow();
        assert!(r.loaded, "{:?}", *r);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.errors, 0);
        // 64 KB at ~190 KB/s plus opens/header/disk: sanity band.
        assert!(
            (300.0..600.0).contains(&r.elapsed_ms),
            "load took {:.1} ms",
            r.elapsed_ms
        );
    }

    #[test]
    fn exec_server_runs_program_on_the_server_host() {
        let (mut cl, server) = cluster_with_image();
        let spawned = std::rc::Rc::new(std::cell::RefCell::new(0u64));
        let exec = cl.spawn(
            HostId(1),
            "exec",
            Box::new(ExecServer {
                file_server: server,
                spawned: spawned.clone(),
            }),
        );
        // Client asks the exec server to run "shell".
        struct ExecClient {
            exec: Pid,
            got_pid: std::rc::Rc<std::cell::RefCell<Option<u32>>>,
        }
        impl Program for ExecClient {
            fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
                match outcome {
                    Outcome::Started => {
                        api.mem_write(0x100, b"shell").unwrap();
                        let mut m = v_kernel::Message::empty();
                        m.set_segment(0x100, 5, v_kernel::Access::Read);
                        api.send(m, self.exec);
                    }
                    Outcome::Send(Ok(reply)) => {
                        *self.got_pid.borrow_mut() = Some(reply.get_u32(4));
                        api.exit();
                    }
                    _ => api.exit(),
                }
            }
        }
        let got = std::rc::Rc::new(std::cell::RefCell::new(None));
        cl.spawn(
            HostId(0),
            "execclient",
            Box::new(ExecClient {
                exec,
                got_pid: got.clone(),
            }),
        );
        cl.run();
        assert_eq!(*spawned.borrow(), 1);
        let pid_raw = got.borrow().expect("got a pid");
        // The spawned loader lives on the server's logical host.
        let pid = v_kernel::Pid::from_raw(pid_raw).expect("valid pid");
        assert_eq!(pid.host(), cl.logical_host(HostId(1)));
    }
}
