//! Client-side helpers for the I/O protocol.
//!
//! Application processes access system services "through stub routines
//! that provide a procedural interface to the message primitives" (§3.4).
//! [`stub`] builds correctly-flagged request messages; [`FsClient`] is a
//! ready-made process that runs a script of file operations and verifies
//! the results — used by integration tests and examples.

use v_kernel::{Access, Api, Message, Outcome, Pid, Program};

use crate::proto::{IoOp, IoReply, IoRequest, IoStatus};
use crate::store::FileId;
use crate::BLOCK_SIZE;

/// Stub routines: build request messages with the right segment grants.
pub mod stub {
    use super::*;

    /// Open-by-name: the name lives at `name_addr`/`name_len` in the
    /// client's space; read access is granted so it rides the request.
    pub fn open(name_addr: u32, name_len: u32, tag: u16) -> Message {
        let mut m = IoRequest {
            op: IoOp::Open,
            file: FileId(0),
            block: 0,
            count: 0,
            buffer: 0,
            aux: 0,
            tag,
        }
        .encode();
        m.set_segment(name_addr, name_len, Access::Read);
        m
    }

    /// Create a file of `size` bytes.
    pub fn create(name_addr: u32, name_len: u32, size: u32, tag: u16) -> Message {
        let mut m = IoRequest {
            op: IoOp::Create,
            file: FileId(0),
            block: 0,
            count: 0,
            buffer: 0,
            aux: size,
            tag,
        }
        .encode();
        m.set_segment(name_addr, name_len, Access::Read);
        m
    }

    /// Read one block into the buffer at `buffer` (write access granted
    /// so the server's `ReplyWithSegment`/`MoveTo` may deposit there).
    pub fn read(file: FileId, block: u32, count: u32, buffer: u32, tag: u16) -> Message {
        let mut m = IoRequest {
            op: IoOp::Read,
            file,
            block,
            count,
            buffer,
            aux: 0,
            tag,
        }
        .encode();
        m.set_segment(buffer, count, Access::Write);
        m
    }

    /// Cached read: like [`read`] but announces the client's cache
    /// agent (`agent` = its pid) so the server registers the holder
    /// and answers with a cacheability grant.
    pub fn read_cached(
        file: FileId,
        block: u32,
        count: u32,
        buffer: u32,
        agent: u32,
        tag: u16,
    ) -> Message {
        let mut m = IoRequest {
            op: IoOp::ReadCached,
            file,
            block,
            count,
            buffer,
            aux: agent,
            tag,
        }
        .encode();
        m.set_segment(buffer, count, Access::Write);
        m
    }

    /// Write one block from the buffer at `buffer` (read access granted;
    /// the kernel appends the first part to the request packet).
    /// `agent` names the writer's own cache agent (0 for uncached
    /// writers) so the server skips it during invalidation.
    pub fn write(
        file: FileId,
        block: u32,
        count: u32,
        buffer: u32,
        agent: u32,
        tag: u16,
    ) -> Message {
        let mut m = IoRequest {
            op: IoOp::Write,
            file,
            block,
            count,
            buffer,
            aux: agent,
            tag,
        }
        .encode();
        m.set_segment(buffer, count, Access::Read);
        m
    }

    /// Query a file's length.
    pub fn query(file: FileId, tag: u16) -> Message {
        IoRequest {
            op: IoOp::Query,
            file,
            block: 0,
            count: 0,
            buffer: 0,
            aux: 0,
            tag,
        }
        .encode()
    }

    /// Large read of `count` bytes starting at block `block` into
    /// `buffer` (the server pushes with `MoveTo`s).
    pub fn read_large(file: FileId, block: u32, count: u32, buffer: u32, tag: u16) -> Message {
        let mut m = IoRequest {
            op: IoOp::ReadLarge,
            file,
            block,
            count,
            buffer,
            aux: 0,
            tag,
        }
        .encode();
        m.set_segment(buffer, count, Access::Write);
        m
    }
}

/// One step of an [`FsClient`] script.
#[derive(Debug, Clone)]
pub enum FsCall {
    /// Open by name; remembers the returned file id.
    Open(String),
    /// Create a file of the given size; remembers the id.
    Create(String, u32),
    /// Read `count` bytes of `block` into the client buffer and check
    /// every byte equals the expectation.
    ReadExpect {
        /// Block index.
        block: u32,
        /// Byte count.
        count: u32,
        /// Expected fill byte.
        expect: u8,
    },
    /// Fill the client buffer with a byte and write it to `block`.
    WriteFill {
        /// Block index.
        block: u32,
        /// Byte count.
        count: u32,
        /// Fill byte.
        fill: u8,
    },
    /// Read `count` bytes of `block` without checking the contents —
    /// used by consistency tests that race readers against writers,
    /// where either the old or the new fill is a legal answer.
    ReadAny {
        /// Block index.
        block: u32,
        /// Byte count.
        count: u32,
    },
    /// Query the file length and check it.
    QueryExpect(u32),
    /// Large read into the buffer plus a fill check.
    ReadLargeExpect {
        /// Starting block.
        block: u32,
        /// Byte count.
        count: u32,
        /// Expected fill byte.
        expect: u8,
    },
}

/// Outcome summary of an [`FsClient`] / sharded-client run.
#[derive(Debug, Clone, Default)]
pub struct FsClientReport {
    /// Steps completed successfully.
    pub completed: u64,
    /// Protocol errors (bad status).
    pub errors: u64,
    /// Data mismatches.
    pub integrity_errors: u64,
    /// True once the whole script finished.
    pub done: bool,
    /// Simulated milliseconds from the first issued operation to script
    /// completion (0 until `done`).
    pub elapsed_ms: f64,
    /// Replies stamped by a different service than the one targeted:
    /// the request chased a migrated file through a server-side
    /// `Forward`, and the owner cache was corrected on the spot
    /// (sharded client only; reconciles against the servers'
    /// [`crate::FileServerStats::moved_forwards`]).
    pub stale_owner_forwards: u64,
    /// Writes refused with retry-after (file draining for migration)
    /// and re-issued after a backoff — each such write still completes
    /// exactly once (sharded client only).
    pub write_retries: u64,
    /// Steps re-routed after the cached owner's host died (sharded
    /// client with a placement overlay).
    pub owner_failovers: u64,
}

/// Client buffer locations (shared with [`crate::shard::ShardedFsClient`]).
pub(crate) const NAME_BUF: u32 = 0x0100;
pub(crate) const DATA_BUF: u32 = 0x20000;

/// Builds and sends the request for one script call to `server`,
/// staging the name/data buffers in the calling process's space.
/// `file` is the client's current file id (ignored by open/create).
/// Shared by [`FsClient`] and [`crate::shard::ShardedFsClient`], which
/// differ only in how they pick `server`. `cache_agent` is the
/// client's cache-agent pid when it caches: reads then go out as
/// `ReadCached` and writes carry the agent so the server skips it
/// during invalidation. `None` builds byte-for-byte the messages the
/// pre-cache client sent.
pub(crate) fn issue_call(
    api: &mut Api<'_>,
    call: &FsCall,
    file: FileId,
    tag: u16,
    server: Pid,
    cache_agent: Option<u32>,
) {
    match call {
        FsCall::Open(name) => {
            api.mem_write(NAME_BUF, name.as_bytes()).expect("name fits");
            api.send(stub::open(NAME_BUF, name.len() as u32, tag), server);
        }
        FsCall::Create(name, size) => {
            api.mem_write(NAME_BUF, name.as_bytes()).expect("name fits");
            api.send(
                stub::create(NAME_BUF, name.len() as u32, *size, tag),
                server,
            );
        }
        FsCall::ReadExpect { block, count, .. } | FsCall::ReadAny { block, count } => {
            api.mem_fill(DATA_BUF, *count as usize, 0x00).expect("fits");
            let m = match cache_agent {
                Some(agent) => stub::read_cached(file, *block, *count, DATA_BUF, agent, tag),
                None => stub::read(file, *block, *count, DATA_BUF, tag),
            };
            api.send(m, server);
        }
        FsCall::WriteFill { block, count, fill } => {
            api.mem_fill(DATA_BUF, *count as usize, *fill)
                .expect("fits");
            api.send(
                stub::write(
                    file,
                    *block,
                    *count,
                    DATA_BUF,
                    cache_agent.unwrap_or(0),
                    tag,
                ),
                server,
            );
        }
        FsCall::QueryExpect(_) => api.send(stub::query(file, tag), server),
        FsCall::ReadLargeExpect { block, count, .. } => {
            api.mem_fill(DATA_BUF, *count as usize, 0x00).expect("fits");
            api.send(
                stub::read_large(file, *block, *count, DATA_BUF, tag),
                server,
            );
        }
    }
}

/// Verifies a reply against the call that produced it, updating the
/// report. Returns the file id when the call was an open/create that
/// succeeded (so callers can adopt it as the current file).
pub(crate) fn check_reply(
    api: &Api<'_>,
    call: &FsCall,
    reply: &IoReply,
    rep: &mut FsClientReport,
) -> Option<FileId> {
    if reply.status != IoStatus::Ok {
        rep.errors += 1;
        return None;
    }
    let mut opened = None;
    match call {
        FsCall::Open(_) | FsCall::Create(_, _) => opened = Some(reply.file),
        FsCall::QueryExpect(expect) => {
            if reply.value != *expect {
                rep.integrity_errors += 1;
            }
        }
        FsCall::ReadExpect { count, expect, .. }
        | FsCall::ReadLargeExpect { count, expect, .. } => {
            let got = api.mem_read(DATA_BUF, *count as usize).expect("fits");
            if got.iter().any(|&b| b != *expect) {
                rep.integrity_errors += 1;
            }
        }
        FsCall::WriteFill { count, .. } => {
            if reply.value != (*count).min(BLOCK_SIZE as u32) {
                rep.integrity_errors += 1;
            }
        }
        FsCall::ReadAny { .. } => {}
    }
    rep.completed += 1;
    opened
}

/// A scripted file-service client, optionally carrying a block cache
/// (see [`crate::cache`]).
pub struct FsClient {
    /// The file server.
    pub server: Pid,
    /// Script to run.
    pub script: Vec<FsCall>,
    /// Shared results.
    pub report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    step: usize,
    file: FileId,
    started: Option<v_sim::SimTime>,
    cache: Option<crate::cache::CacheLayer>,
    pending_hit: Option<Vec<u8>>,
}

impl FsClient {
    /// Creates a scripted client.
    pub fn new(
        server: Pid,
        script: Vec<FsCall>,
        report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    ) -> FsClient {
        FsClient {
            server,
            script,
            report,
            step: 0,
            file: FileId(0),
            started: None,
            cache: None,
            pending_hit: None,
        }
    }

    /// Attaches a block cache to the read path.
    pub fn with_cache(mut self, layer: crate::cache::CacheLayer) -> FsClient {
        self.cache = Some(layer);
        self
    }

    fn issue(&mut self, api: &mut Api<'_>) {
        let started = *self.started.get_or_insert(api.now());
        let Some(call) = self.script.get(self.step).cloned() else {
            let mut rep = self.report.borrow_mut();
            rep.done = true;
            rep.elapsed_ms = api.now().since(started).as_millis_f64();
            drop(rep);
            api.exit();
            return;
        };
        let mut cache_agent = None;
        if let Some(layer) = self.cache.as_mut() {
            if let Some(data) = layer.try_hit(&call, self.file, api.now()) {
                self.pending_hit = Some(data);
                api.compute(layer.hit_cpu());
                return;
            }
            layer.on_issue(&call, self.file);
            cache_agent = Some(layer.agent_aux());
        }
        issue_call(
            api,
            &call,
            self.file,
            self.step as u16,
            self.server,
            cache_agent,
        );
    }

    fn check(&mut self, api: &mut Api<'_>, reply: IoReply) {
        let call = self.script[self.step].clone();
        let mut rep = self.report.borrow_mut();
        if let Some(opened) = check_reply(api, &call, &reply, &mut rep) {
            self.file = opened;
        }
        drop(rep);
        if let Some(layer) = self.cache.as_mut() {
            layer.install_reply(api, &call, self.file, &reply, api.now());
        }
    }

    /// Completes a cache hit: deposits the cached bytes where the
    /// remote path would have and synthesizes an `Ok` reply (with a
    /// [`crate::proto::CACHE_DENY`] grant so it is not re-installed),
    /// so the shared check path treats hits and misses alike.
    fn finish_hit(&mut self, api: &mut Api<'_>, data: Vec<u8>) {
        api.mem_write(DATA_BUF, &data).expect("fits");
        let reply = IoReply {
            status: IoStatus::Ok,
            file: self.file,
            value: data.len() as u32,
            aux: crate::proto::CACHE_DENY,
            owner: 0,
            tag: self.step as u16,
        };
        self.check(api, reply);
        self.step += 1;
        self.issue(api);
    }
}

impl Program for FsClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => self.issue(api),
            Outcome::Send(Ok(reply)) => {
                let reply = IoReply::decode(&reply);
                self.check(api, reply);
                self.step += 1;
                self.issue(api);
            }
            Outcome::Send(Err(_)) => {
                self.report.borrow_mut().errors += 1;
                api.exit();
            }
            Outcome::Compute if self.pending_hit.is_some() => {
                let data = self.pending_hit.take().expect("hit in flight");
                self.finish_hit(api, data);
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FileServer, FileServerConfig};
    use crate::store::BlockStore;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
    use v_sim::SimDuration;

    fn run_script(script: Vec<FsCall>) -> FsClientReport {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let mut store = BlockStore::new();
        let data = vec![0x7Eu8; 4 * BLOCK_SIZE];
        store.create_with("boot", &data).unwrap();
        let server = cl.spawn(
            HostId(1),
            "fileserver",
            Box::new(FileServer::new(
                FileServerConfig {
                    disk: crate::disk::DiskModel::fixed(SimDuration::from_millis(1)),
                    ..FileServerConfig::default()
                },
                store,
            )),
        );
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(0),
            "fsclient",
            Box::new(FsClient::new(server, script, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        r
    }

    #[test]
    fn open_read_write_query_round_trip() {
        let rep = run_script(vec![
            FsCall::Open("boot".into()),
            FsCall::QueryExpect(4 * BLOCK_SIZE as u32),
            FsCall::ReadExpect {
                block: 2,
                count: BLOCK_SIZE as u32,
                expect: 0x7E,
            },
            FsCall::WriteFill {
                block: 1,
                count: BLOCK_SIZE as u32,
                fill: 0x99,
            },
            FsCall::ReadExpect {
                block: 1,
                count: BLOCK_SIZE as u32,
                expect: 0x99,
            },
        ]);
        assert!(rep.done, "{rep:?}");
        assert_eq!(rep.errors, 0);
        assert_eq!(rep.integrity_errors, 0);
        assert_eq!(rep.completed, 5);
    }

    #[test]
    fn create_then_large_read() {
        let rep = run_script(vec![
            FsCall::Open("boot".into()),
            FsCall::ReadLargeExpect {
                block: 0,
                count: 4 * BLOCK_SIZE as u32,
                expect: 0x7E,
            },
            FsCall::Create("new".into(), 1024),
            FsCall::QueryExpect(1024),
            FsCall::WriteFill {
                block: 0,
                count: 512,
                fill: 0x11,
            },
            FsCall::ReadExpect {
                block: 0,
                count: 512,
                expect: 0x11,
            },
        ]);
        assert!(rep.done, "{rep:?}");
        assert_eq!(rep.errors, 0);
        assert_eq!(rep.integrity_errors, 0);
    }

    #[test]
    fn open_missing_file_reports_error() {
        let rep = run_script(vec![FsCall::Open("missing".into())]);
        assert!(rep.done);
        assert_eq!(rep.errors, 1);
        assert_eq!(rep.completed, 0);
    }
}
