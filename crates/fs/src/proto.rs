//! The Verex-style I/O protocol, packed into 32-byte V messages.
//!
//! "V file access is implemented using an I/O protocol developed for
//! Verex. To read a page or block of a file, a client sends a message to
//! the file server process specifying the file, block number, byte count
//! and the address of the buffer into which the data is to be returned."
//!
//! File *names* (for open/create) travel as read-granted segments on the
//! request — the paper notes the segment mechanism "has proven useful
//! under more general circumstances, e.g. in passing character string
//! names to name servers".
//!
//! Message layout (byte 0 is reserved for the kernel's segment flag
//! bits; bytes 24–31 for the segment spec):
//!
//! ```text
//! byte  1     op / status
//! bytes 2-3   file id
//! bytes 4-7   block number (requests) / value (replies)
//! bytes 8-11  byte count
//! bytes 12-15 client buffer address (requests) / replier's service pid (replies)
//! bytes 16-19 aux (create size; read-large transfer hint)
//! bytes 20-21 tag (echoed in replies)
//! ```

use v_kernel::Message;

use crate::store::FileId;

/// File operation opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum IoOp {
    /// Look up a file by name (name in the request's segment).
    Open = 1,
    /// Create a file (name in the segment, size in aux).
    Create = 2,
    /// Read one block (page): answered with `ReplyWithSegment`.
    Read = 3,
    /// Write one block: data arrives appended to the request.
    Write = 4,
    /// Query file length.
    Query = 5,
    /// Large read: the server pushes the range with `MoveTo`s.
    ReadLarge = 6,
    /// Read one block through the client cache: served like [`Read`]
    /// but registers the client's cache agent (request `aux` = agent
    /// pid) as a holder of the file. The reply's `aux` carries the
    /// cacheability grant (see [`IoReply::aux`]).
    ///
    /// [`Read`]: IoOp::Read
    ReadCached = 7,
    /// Server → cache-agent invalidation callback: drop every cached
    /// block of `file`. Answered with a plain `Ok` reply.
    Invalidate = 8,
    /// Rebalancer → owning server: freeze writes to `file` (drain) so
    /// its blocks can be copied out. The reply carries the file length
    /// in `value`, the name length in `aux`, and deposits the name into
    /// the requester's write-granted buffer — everything the
    /// destination needs to adopt the file.
    MigrateBegin = 9,
    /// Rebalancer → destination migration agent: pull `file` (length in
    /// `count`) from the old owner (`aux` = its raw service pid, name
    /// appended as a read-granted segment) block by block with ordinary
    /// reads. Answered once the copy is complete.
    MigratePull = 10,
    /// Rebalancer → old owner: the copy is complete — drop the file and
    /// forward every later request for it to the new owner (`aux` = the
    /// new service's raw pid).
    MigrateCommit = 11,
    /// Rebalancer → old owner: the copy failed — unfreeze writes, keep
    /// serving the file.
    MigrateAbort = 12,
}

impl IoOp {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<IoOp> {
        Some(match b {
            1 => IoOp::Open,
            2 => IoOp::Create,
            3 => IoOp::Read,
            4 => IoOp::Write,
            5 => IoOp::Query,
            6 => IoOp::ReadLarge,
            7 => IoOp::ReadCached,
            8 => IoOp::Invalidate,
            9 => IoOp::MigrateBegin,
            10 => IoOp::MigratePull,
            11 => IoOp::MigrateCommit,
            12 => IoOp::MigrateAbort,
            _ => return None,
        })
    }
}

/// Reply status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum IoStatus {
    /// Success.
    Ok = 0,
    /// No such file.
    NotFound = 1,
    /// Name already exists.
    Exists = 2,
    /// Block out of range.
    BadBlock = 3,
    /// Transfer or protocol failure.
    Error = 4,
    /// The server is a read-only replica; mutating ops are refused.
    ReadOnly = 5,
    /// The file is draining for migration: the write is refused without
    /// side effects and the client should back off briefly and retry —
    /// the team keeps serving everything else meanwhile.
    RetryAfter = 6,
}

impl IoStatus {
    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> IoStatus {
        match b {
            0 => IoStatus::Ok,
            1 => IoStatus::NotFound,
            2 => IoStatus::Exists,
            3 => IoStatus::BadBlock,
            5 => IoStatus::ReadOnly,
            6 => IoStatus::RetryAfter,
            _ => IoStatus::Error,
        }
    }
}

/// A decoded I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Operation.
    pub op: IoOp,
    /// Target file (ignored by open/create).
    pub file: FileId,
    /// Block number.
    pub block: u32,
    /// Byte count.
    pub count: u32,
    /// Client buffer address (for reads).
    pub buffer: u32,
    /// Auxiliary word (create size).
    pub aux: u32,
    /// Client-chosen tag echoed in the reply.
    pub tag: u16,
}

impl IoRequest {
    /// Encodes into a message (segment bits are the caller's business —
    /// reads grant write access on the buffer, writes/opens grant read
    /// access on the data/name).
    pub fn encode(&self) -> Message {
        let mut m = Message::empty();
        m.set_byte(1, self.op as u8);
        m.set_u16(2, self.file.0);
        m.set_u32(4, self.block);
        m.set_u32(8, self.count);
        m.set_u32(12, self.buffer);
        m.set_u32(16, self.aux);
        m.set_u16(20, self.tag);
        m
    }

    /// Decodes from a message; `None` for unknown opcodes.
    pub fn decode(m: &Message) -> Option<IoRequest> {
        Some(IoRequest {
            op: IoOp::from_u8(m.byte(1))?,
            file: FileId(m.get_u16(2)),
            block: m.get_u32(4),
            count: m.get_u32(8),
            buffer: m.get_u32(12),
            aux: m.get_u32(16),
            tag: m.get_u16(20),
        })
    }
}

/// Reply `aux` grant on a [`IoOp::ReadCached`]: the client must not
/// cache the block (a write is pending on the file, or the server runs
/// with caching off).
pub const CACHE_DENY: u32 = 0;
/// Reply `aux` grant on a [`IoOp::ReadCached`]: cache the block until
/// an [`IoOp::Invalidate`] callback arrives (write-invalidate mode).
/// Any other nonzero value is a lease duration in microseconds.
pub const CACHE_UNTIL_INVALIDATED: u32 = u32::MAX;

/// A decoded I/O reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoReply {
    /// Outcome.
    pub status: IoStatus,
    /// File id (open/create).
    pub file: FileId,
    /// Operation-dependent value (bytes read/written, file length).
    pub value: u32,
    /// Cacheability grant on `ReadCached` replies: [`CACHE_DENY`],
    /// [`CACHE_UNTIL_INVALIDATED`], or a lease in microseconds. On
    /// `MigrateBegin` replies, the deposited name's length. Zero on
    /// every other reply (bytes 8–11 are free in the reply layout).
    pub aux: u32,
    /// Raw pid of the *service* that actually produced this reply (the
    /// receptionist for a team, the server itself when sequential) — 0
    /// when unknown. A client whose request was forwarded because the
    /// file migrated sees an owner different from the pid it targeted
    /// and corrects its owner cache on the spot.
    pub owner: u32,
    /// Echo of the request tag.
    pub tag: u16,
}

impl IoReply {
    /// Encodes into a message.
    pub fn encode(&self) -> Message {
        let mut m = Message::empty();
        m.set_byte(1, self.status as u8);
        m.set_u16(2, self.file.0);
        m.set_u32(4, self.value);
        m.set_u32(8, self.aux);
        m.set_u32(12, self.owner);
        m.set_u16(20, self.tag);
        m
    }

    /// Decodes from a message.
    pub fn decode(m: &Message) -> IoReply {
        IoReply {
            status: IoStatus::from_u8(m.byte(1)),
            file: FileId(m.get_u16(2)),
            value: m.get_u32(4),
            aux: m.get_u32(8),
            owner: m.get_u32(12),
            tag: m.get_u16(20),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let r = IoRequest {
            op: IoOp::Read,
            file: FileId(7),
            block: 42,
            count: 512,
            buffer: 0x2000,
            aux: 9,
            tag: 0xABCD,
        };
        assert_eq!(IoRequest::decode(&r.encode()), Some(r));
    }

    #[test]
    fn reply_round_trip() {
        let r = IoReply {
            status: IoStatus::BadBlock,
            file: FileId(3),
            value: 65536,
            aux: 1_000_000,
            owner: 0x0003_0007,
            tag: 17,
        };
        assert_eq!(IoReply::decode(&r.encode()), r);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut m = Message::empty();
        m.set_byte(1, 99);
        assert_eq!(IoRequest::decode(&m), None);
    }

    #[test]
    fn segment_bits_do_not_clobber_fields() {
        use v_kernel::Access;
        let r = IoRequest {
            op: IoOp::Write,
            file: FileId(1),
            block: 2,
            count: 512,
            buffer: 0x3000,
            aux: 0,
            tag: 5,
        };
        let mut m = r.encode();
        m.set_segment(0x3000, 512, Access::Read);
        assert_eq!(IoRequest::decode(&m), Some(r));
        assert!(m.segment().is_some());
    }

    #[test]
    fn all_opcodes_round_trip() {
        for op in [
            IoOp::Open,
            IoOp::Create,
            IoOp::Read,
            IoOp::Write,
            IoOp::Query,
            IoOp::ReadLarge,
            IoOp::ReadCached,
            IoOp::Invalidate,
            IoOp::MigrateBegin,
            IoOp::MigratePull,
            IoOp::MigrateCommit,
            IoOp::MigrateAbort,
        ] {
            assert_eq!(IoOp::from_u8(op as u8), Some(op));
        }
        assert_eq!(IoOp::from_u8(0), None);
        assert_eq!(
            IoStatus::from_u8(IoStatus::RetryAfter as u8),
            IoStatus::RetryAfter
        );
    }
}
