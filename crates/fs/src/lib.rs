//! File access for diskless workstations.
//!
//! "Network interprocess communication is predominantly used for remote
//! file access since most SUN workstations at Stanford are configured
//! without a local disk." This crate provides the file-service side of
//! that arrangement, built — as the paper insists — *on top of* the
//! general-purpose V IPC rather than a specialized protocol:
//!
//! * [`disk`] — the disk model (per-request positioning latency +
//!   transfer time) standing in for the file server's spindles; a
//!   [`DiskParams`]-built unit stripes blocks over several independent
//!   arms ([`FileServerConfig::disk_arms`]) so concurrent requests
//!   overlap their seeks;
//! * [`store`] — an in-memory block store with a flat directory
//!   (create/lookup/read/write), the server's cache+filesystem state;
//! * [`proto`] — the Verex-style I/O protocol: file requests and replies
//!   packed into 32-byte V messages;
//! * [`server`] — the file-server process: page reads answered with
//!   `ReplyWithSegment`, page writes taken from the appended segment via
//!   `ReceiveWithSegment`, large reads broken into `MoveTo`s of at most
//!   one transfer unit (the paper's VAX server used 4 KB), sequential
//!   read-ahead against the disk model;
//! * [`team`] — server *teams*: a receptionist that `Forward`s each
//!   request to an idle worker, so disk waits on one request overlap
//!   receive and file-system processing on the next
//!   ([`FileServerConfig::workers`]; `1` = the paper's sequential
//!   server, bit-identical);
//! * [`client`] — client-side helpers that format requests and drive
//!   multi-step operations;
//! * [`shard`] — sharded file-service placement: a name-hash
//!   [`ShardMap`] partitioning the directory over several servers (one
//!   per segment of a mesh, typically), each registered under a
//!   distinct logical id, and a [`ShardedFsClient`] that resolves and
//!   caches the owning server per file;
//! * [`loader`] — program loading exactly as §6.3 describes (one block
//!   read for the header, then one large read via `MoveTo` into the new
//!   program space) and the §7 exec server that runs programs *on* the
//!   file server;
//! * [`replica`] — a replicated *read-only* root: N identical replicas
//!   spawned from clones of one [`BlockStore`] (so file ids agree
//!   everywhere), and a [`ReplicatedFsClient`] that fails over to the
//!   next replica when the kernel reports a replica's host down;
//! * [`cache`] — per-client block caching ([`BlockCache`] + the
//!   invalidation [`CacheAgent`](cache::CacheAgent)) with a
//!   write-invalidate or lease consistency protocol driven by the
//!   server ([`CacheMode`]); `Off` is bit-identical to the pre-cache
//!   client;
//! * [`migrate`] — live file migration between shards: a four-exchange
//!   drain → copy → commit protocol built from ordinary V exchanges,
//!   with a destination-side [`MigrationAgent`](migrate::MigrationAgent)
//!   pulling blocks as plain reads and the old owner `Forward`ing
//!   stale requests after the flip;
//! * [`rebalance`] — the policy half: a [`Rebalancer`] process samples
//!   each shard's decayed [`FileHeat`], and while the hottest shard
//!   sits outside a configurable band of the mean it issues move-plans
//!   for the hottest files until the shards converge.

pub mod cache;
pub mod client;
pub mod disk;
pub mod loader;
pub mod migrate;
pub mod proto;
pub mod rebalance;
pub mod replica;
pub mod server;
pub mod shard;
pub mod store;
pub mod team;

pub use cache::{spawn_caching_client, BlockCache, CacheConfig, CacheMode, CacheStats};
pub use disk::{DiskModel, DiskParams, DiskStats};
pub use migrate::{spawn_shard_service, ShardService};
pub use proto::{IoReply, IoRequest, IoStatus};
pub use rebalance::{
    spawn_rebalancer, MigrationLedger, MoveRecord, Rebalancer, RebalancerConfig, ShardHandle,
};
pub use replica::{spawn_replica, spawn_replica_group, ReplicaReport, ReplicatedFsClient};
pub use server::{FileHeat, FileServer, FileServerConfig, FileServerStats, HeatEntry};
pub use shard::{spawn_shard_server, ShardMap, ShardOverlay, ShardedFsClient};
pub use store::BlockStore;
pub use team::{spawn_file_server, FileServerTeam};

/// The file system's block (page) size, matching the paper's 512-byte
/// pages.
pub const BLOCK_SIZE: usize = 512;
