//! The file-server process.
//!
//! One V process serving the Verex I/O protocol over V IPC:
//!
//! * page **reads** are `Receive` → disk → `ReplyWithSegment` (two
//!   packets on the wire, §3.4);
//! * page **writes** arrive with the data appended to the request
//!   (`ReceiveWithSegment`); any remainder beyond the appended prefix is
//!   pulled with `MoveFrom`;
//! * **large reads** (program loading) are pushed with `MoveTo`s of at
//!   most one transfer unit — the paper's VAX server used 4 KB;
//! * sequential reads trigger **read-ahead**: the next block is fetched
//!   from the disk model while the client digests the current one
//!   (Table 6-2's structure).

use v_kernel::{naming, Api, Outcome, Pid, Program, Scope};
use v_sim::SimDuration;

use crate::disk::DiskModel;
use crate::proto::{IoOp, IoReply, IoRequest, IoStatus};
use crate::store::{BlockStore, FileId, StoreError};
use crate::BLOCK_SIZE;

/// Where request segments (names, write data) land in the server space.
pub const SRV_IN: u32 = 0x0400;
/// Staging buffer for outgoing data.
pub const SRV_OUT: u32 = 0x10000;

/// File-server configuration.
pub struct FileServerConfig {
    /// The disk behind the store.
    pub disk: DiskModel,
    /// File-system processing charged per request (the paper estimates
    /// 2.5 ms at 10 MHz for a local system, 3.5 ms from LOCUS for
    /// capacity planning).
    pub fs_cpu: SimDuration,
    /// `MoveTo`/`MoveFrom` chunking for large transfers.
    pub transfer_unit: u32,
    /// Prefetch the next sequential block after each read.
    pub read_ahead: bool,
    /// Register under this logical id at startup (scope `Both`).
    pub register: Option<u32>,
}

impl Default for FileServerConfig {
    fn default() -> Self {
        FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(15)),
            fs_cpu: SimDuration::from_micros(2500),
            transfer_unit: 4096,
            read_ahead: true,
            register: Some(naming::logical::FILE_SERVER),
        }
    }
}

/// Counters the server accumulates.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileServerStats {
    /// Requests served, by rough class.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Large reads served.
    pub large_reads: u64,
    /// Opens/creates/queries served.
    pub meta: u64,
    /// Requests refused with an error status.
    pub errors: u64,
    /// Read-ahead hits (no disk wait).
    pub readahead_hits: u64,
}

enum Phase {
    Idle,
    FsWork,
    DiskWait,
    FetchRest { have: u32 },
    Pushing { pushed: u32 },
}

struct Current {
    from: Pid,
    req: IoRequest,
    seg_len: u32,
}

/// The file-server program.
pub struct FileServer {
    cfg: FileServerConfig,
    store: BlockStore,
    /// Shared stats probe (single-threaded simulator).
    pub stats: std::rc::Rc<std::cell::RefCell<FileServerStats>>,
    phase: Phase,
    current: Option<Current>,
    /// (file, block) the pending read-ahead will satisfy, and when the
    /// disk will have it.
    prefetch: Option<(FileId, u32, v_sim::SimTime)>,
}

impl FileServer {
    /// Creates a file server over a pre-populated store.
    pub fn new(cfg: FileServerConfig, store: BlockStore) -> FileServer {
        FileServer {
            cfg,
            store,
            stats: Default::default(),
            phase: Phase::Idle,
            current: None,
            prefetch: None,
        }
    }

    /// Handle to the server's counters.
    pub fn stats_handle(&self) -> std::rc::Rc<std::cell::RefCell<FileServerStats>> {
        self.stats.clone()
    }

    fn rearm(&mut self, api: &mut Api<'_>) {
        self.phase = Phase::Idle;
        self.current = None;
        api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32);
    }

    fn reply_status(&mut self, api: &mut Api<'_>, status: IoStatus, value: u32, file: FileId) {
        let cur = self.current.as_ref().expect("request in progress");
        if status != IoStatus::Ok {
            self.stats.borrow_mut().errors += 1;
        }
        let reply = IoReply {
            status,
            file,
            value,
            tag: cur.req.tag,
        }
        .encode();
        let _ = api.reply(reply, cur.from);
        self.rearm(api);
    }

    fn store_status(e: StoreError) -> IoStatus {
        match e {
            StoreError::NotFound => IoStatus::NotFound,
            StoreError::Exists => IoStatus::Exists,
            StoreError::BadBlock => IoStatus::BadBlock,
        }
    }

    /// Dispatch after the fs-processing charge.
    fn dispatch(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let seg_len = cur.seg_len;
        match req.op {
            IoOp::Open => {
                self.stats.borrow_mut().meta += 1;
                let name_bytes = api.mem_read(SRV_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                match self.store.open(&name) {
                    Ok(id) => {
                        let len = self.store.len(id).expect("exists") as u32;
                        self.reply_status(api, IoStatus::Ok, len, id);
                    }
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, FileId(0)),
                }
            }
            IoOp::Create => {
                self.stats.borrow_mut().meta += 1;
                let name_bytes = api.mem_read(SRV_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                match self.store.create(&name, req.aux as usize) {
                    Ok(id) => self.reply_status(api, IoStatus::Ok, req.aux, id),
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, FileId(0)),
                }
            }
            IoOp::Query => {
                self.stats.borrow_mut().meta += 1;
                match self.store.len(req.file) {
                    Ok(len) => self.reply_status(api, IoStatus::Ok, len as u32, req.file),
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
                }
            }
            IoOp::Read => {
                // Read-ahead hit?
                if let Some((f, b, ready)) = self.prefetch {
                    if f == req.file && b == req.block {
                        self.prefetch = None;
                        if api.now() >= ready {
                            self.stats.borrow_mut().readahead_hits += 1;
                            self.serve_read(api);
                            return;
                        }
                        // Prefetch still spinning: wait out the rest.
                        self.phase = Phase::DiskWait;
                        api.delay(ready.since(api.now()));
                        return;
                    }
                }
                let done = self
                    .cfg
                    .disk
                    .request(api.now(), req.count.min(BLOCK_SIZE as u32) as usize);
                self.phase = Phase::DiskWait;
                api.delay(done.since(api.now()));
            }
            IoOp::Write => {
                let count = req.count.min(BLOCK_SIZE as u32);
                if seg_len < count {
                    // The appended prefix didn't cover the block: pull
                    // the rest from the client's granted segment.
                    self.phase = Phase::FetchRest { have: seg_len };
                    let grant_start = req.buffer; // client buffer address
                    api.move_from(
                        cur.from,
                        SRV_IN + seg_len,
                        grant_start + seg_len,
                        count - seg_len,
                    );
                } else {
                    let done = self.cfg.disk.request(api.now(), count as usize);
                    self.phase = Phase::DiskWait;
                    api.delay(done.since(api.now()));
                }
            }
            IoOp::ReadLarge => {
                let done = self.cfg.disk.request(api.now(), req.count as usize);
                self.phase = Phase::DiskWait;
                api.delay(done.since(api.now()));
            }
        }
    }

    /// Completes a single-block read after the disk wait.
    fn serve_read(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let from = cur.from;
        match self
            .store
            .read_block(req.file, req.block, req.count as usize)
        {
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
            Ok(data) => {
                let n = data.len() as u32;
                let data = data.to_vec();
                api.mem_write(SRV_OUT, &data).expect("staging fits");
                let reply = IoReply {
                    status: IoStatus::Ok,
                    file: req.file,
                    value: n,
                    tag: req.tag,
                }
                .encode();
                if api
                    .reply_with_segment(reply, from, req.buffer, SRV_OUT, n)
                    .is_err()
                {
                    self.stats.borrow_mut().errors += 1;
                }
                self.stats.borrow_mut().reads += 1;
                // Read-ahead: start fetching the next block now.
                if self.cfg.read_ahead {
                    let next = req.block + 1;
                    if self.store.read_block(req.file, next, BLOCK_SIZE).is_ok() {
                        let ready = self.cfg.disk.request(api.now(), BLOCK_SIZE);
                        self.prefetch = Some((req.file, next, ready));
                    }
                }
                self.rearm(api);
            }
        }
    }

    /// Completes a write after data + disk are in.
    fn serve_write(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let count = req.count.min(BLOCK_SIZE as u32);
        let data = api.mem_read(SRV_IN, count as usize).expect("in buffer");
        match self.store.write_block(req.file, req.block, &data) {
            Ok(()) => {
                self.stats.borrow_mut().writes += 1;
                self.reply_status(api, IoStatus::Ok, count, req.file);
            }
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
        }
    }

    /// Starts or continues the MoveTo push of a large read.
    fn push_large(&mut self, api: &mut Api<'_>, pushed: u32) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let from = cur.from;
        let n = self.cfg.transfer_unit.min(req.count - pushed);
        self.phase = Phase::Pushing { pushed };
        api.move_to(from, req.buffer + pushed, SRV_OUT + pushed, n);
    }
}

impl Program for FileServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                if let Some(id) = self.cfg.register {
                    api.set_pid(id, api.self_pid(), Scope::Both);
                }
                self.rearm(api);
            }
            Outcome::ReceiveSeg { from, msg, seg_len } => {
                let Some(req) = IoRequest::decode(&msg) else {
                    // Unknown request: answer with an error so the client
                    // is not left blocked forever.
                    self.current = Some(Current {
                        from,
                        req: IoRequest {
                            op: IoOp::Query,
                            file: FileId(0),
                            block: 0,
                            count: 0,
                            buffer: 0,
                            aux: 0,
                            tag: msg.get_u16(20),
                        },
                        seg_len: 0,
                    });
                    self.reply_status(api, IoStatus::Error, 0, FileId(0));
                    return;
                };
                self.current = Some(Current { from, req, seg_len });
                self.phase = Phase::FsWork;
                api.compute(self.cfg.fs_cpu);
            }
            Outcome::Compute => self.dispatch(api),
            Outcome::Delay => {
                // Disk finished.
                let op = self.current.as_ref().expect("request in progress").req.op;
                match op {
                    IoOp::Read => self.serve_read(api),
                    IoOp::Write => self.serve_write(api),
                    IoOp::ReadLarge => {
                        let cur = self.current.as_ref().expect("in progress");
                        let req = cur.req;
                        match self.store.read_range(
                            req.file,
                            req.block as usize * BLOCK_SIZE,
                            req.count as usize,
                        ) {
                            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
                            Ok(data) => {
                                let data = data.to_vec();
                                api.mem_write(SRV_OUT, &data).expect("staging fits");
                                self.push_large(api, 0);
                            }
                        }
                    }
                    _ => self.rearm(api),
                }
            }
            Outcome::Move(Ok(n)) => match self.phase {
                Phase::FetchRest { have } => {
                    let count = {
                        let cur = self.current.as_ref().expect("in progress");
                        cur.req.count.min(BLOCK_SIZE as u32)
                    };
                    let have = have + n;
                    if have < count {
                        self.phase = Phase::FetchRest { have };
                        let cur = self.current.as_ref().expect("in progress");
                        let (from, buffer) = (cur.from, cur.req.buffer);
                        api.move_from(from, SRV_IN + have, buffer + have, count - have);
                    } else {
                        let done = self.cfg.disk.request(api.now(), count as usize);
                        self.phase = Phase::DiskWait;
                        api.delay(done.since(api.now()));
                    }
                }
                Phase::Pushing { pushed } => {
                    let (count, file, tag) = {
                        let cur = self.current.as_ref().expect("in progress");
                        (cur.req.count, cur.req.file, cur.req.tag)
                    };
                    let pushed = pushed + n;
                    if pushed < count {
                        self.push_large(api, pushed);
                    } else {
                        self.stats.borrow_mut().large_reads += 1;
                        let _ = tag;
                        self.reply_status(api, IoStatus::Ok, pushed, file);
                    }
                }
                _ => self.rearm(api),
            },
            Outcome::Move(Err(_)) => {
                self.stats.borrow_mut().errors += 1;
                self.reply_status(api, IoStatus::Error, 0, FileId(0));
            }
            _ => api.exit(),
        }
    }
}
