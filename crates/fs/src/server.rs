//! The file-server process.
//!
//! One V process serving the Verex I/O protocol over V IPC:
//!
//! * page **reads** are `Receive` → disk → `ReplyWithSegment` (two
//!   packets on the wire, §3.4);
//! * page **writes** arrive with the data appended to the request
//!   (`ReceiveWithSegment`); any remainder beyond the appended prefix is
//!   pulled with `MoveFrom`;
//! * **large reads** (program loading) are pushed with `MoveTo`s of at
//!   most one transfer unit — the paper's VAX server used 4 KB;
//! * sequential reads trigger **read-ahead**: the next block is fetched
//!   from the disk model while the client digests the current one
//!   (Table 6-2's structure).
//!
//! The same state machine serves in two roles. Standalone (the paper's
//! single sequential server, [`FileServerConfig::workers`]` == 1`), it
//! receives requests directly from clients. As a **team worker** (see
//! [`crate::team`]), it receives requests *forwarded* by a receptionist,
//! replies directly to the client, and then sends an idle notification
//! back to the receptionist — the store, disk and stats are shared
//! across the whole team.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{naming, Api, Message, Outcome, Pid, Program, Scope};
use v_sim::{SimDuration, SimTime};

use crate::disk::{DiskModel, DiskStats};
use crate::proto::{IoOp, IoReply, IoRequest, IoStatus};
use crate::store::{BlockStore, FileId, StoreError};
use crate::BLOCK_SIZE;

/// Where request segments (names, write data) land in the server space.
pub const SRV_IN: u32 = 0x0400;
/// Staging buffer for outgoing data.
pub const SRV_OUT: u32 = 0x10000;

/// File-server configuration.
#[derive(Debug, Clone)]
pub struct FileServerConfig {
    /// The disk behind the store.
    pub disk: DiskModel,
    /// Independent disk arms blocks are striped over. `1` (the default)
    /// keeps `disk` exactly as given — bit-identical to the historical
    /// single-arm server. `>= 2` reshapes `disk` into a striped
    /// multi-arm unit at spawn time (see [`DiskModel::with_arms`]), so
    /// a worker team's concurrent requests overlap their seeks instead
    /// of queueing behind one arm. Threaded unchanged through the team,
    /// shard and replica builders, which all take this config.
    pub disk_arms: usize,
    /// File-system processing charged per request (the paper estimates
    /// 2.5 ms at 10 MHz for a local system, 3.5 ms from LOCUS for
    /// capacity planning).
    pub fs_cpu: SimDuration,
    /// `MoveTo`/`MoveFrom` chunking for large transfers.
    pub transfer_unit: u32,
    /// Prefetch the next sequential block after each read.
    pub read_ahead: bool,
    /// Register under this logical id at startup (scope `Both`).
    pub register: Option<u32>,
    /// Worker processes serving requests. `1` (the default) is the
    /// paper's sequential server — one process does everything, and the
    /// timing is bit-identical to the pre-team implementation. `>= 2`
    /// spawns a receptionist that `Forward`s each request to an idle
    /// worker, so one request's disk wait overlaps the next request's
    /// receive and file-system processing (see [`crate::team`]).
    pub workers: usize,
    /// Refuse mutating operations (`Create`, `Write`) with
    /// [`IoStatus::ReadOnly`]. Read-only replicas of the root file
    /// service (see [`crate::replica`]) set this so the replicas can
    /// never diverge: every copy serves the same immutable image.
    pub read_only: bool,
}

impl Default for FileServerConfig {
    fn default() -> Self {
        FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(15)),
            disk_arms: 1,
            fs_cpu: SimDuration::from_micros(2500),
            transfer_unit: 4096,
            read_ahead: true,
            register: Some(naming::logical::FILE_SERVER),
            workers: 1,
            read_only: false,
        }
    }
}

impl FileServerConfig {
    /// The disk unit a spawn actually installs: `disk` as given for
    /// `disk_arms <= 1` (a pre-striped [`crate::DiskParams`] build
    /// passes through untouched), reshaped to `disk_arms` striped arms
    /// otherwise.
    pub(crate) fn build_disk(&self) -> DiskModel {
        if self.disk_arms > 1 {
            self.disk.clone().with_arms(self.disk_arms)
        } else {
            self.disk.clone()
        }
    }
}

/// Counters the server (or the whole team) accumulates.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileServerStats {
    /// Requests served, by rough class.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Large reads served.
    pub large_reads: u64,
    /// Opens/creates/queries served.
    pub meta: u64,
    /// Requests refused with an error status.
    pub errors: u64,
    /// Read-ahead hits (no disk wait).
    pub readahead_hits: u64,
    /// Requests the receptionist forwarded to workers (0 for the
    /// sequential server).
    pub forwarded: u64,
    /// Deepest backlog the receptionist parked while every worker was
    /// busy.
    pub parked_peak: u64,
    /// The shared disk's queueing counters — aggregated across every
    /// arm of a striped unit ([`DiskStats::absorb`]) — refreshed on
    /// every disk request so experiments can report utilization and
    /// queue depth instead of inferring them. Per-arm breakdowns come
    /// from the disk handle itself ([`DiskModel::per_arm_stats`]).
    pub disk: DiskStats,
}

/// State one server team shares: the block store, the disk unit (one
/// arm or a striped set), the stats block and the read-ahead slot. The
/// sequential server owns a private copy of the same structure, so its
/// code path is identical.
#[derive(Clone)]
pub(crate) struct SharedServerState {
    pub(crate) store: Rc<RefCell<BlockStore>>,
    pub(crate) disk: Rc<RefCell<DiskModel>>,
    pub(crate) stats: Rc<RefCell<FileServerStats>>,
    /// (file, block) the pending read-ahead will satisfy, and when the
    /// disk will have it. Shared: any worker may take the hit.
    pub(crate) prefetch: Rc<RefCell<Option<(FileId, u32, SimTime)>>>,
}

impl SharedServerState {
    pub(crate) fn new(disk: DiskModel, store: BlockStore) -> SharedServerState {
        SharedServerState {
            store: Rc::new(RefCell::new(store)),
            disk: Rc::new(RefCell::new(disk)),
            stats: Default::default(),
            prefetch: Default::default(),
        }
    }
}

enum Phase {
    Idle,
    FsWork,
    DiskWait,
    FetchRest { have: u32 },
    Pushing { pushed: u32 },
}

struct Current {
    from: Pid,
    req: IoRequest,
    seg_len: u32,
}

/// The file-server program.
pub struct FileServer {
    cfg: FileServerConfig,
    shared: SharedServerState,
    /// Team-worker mode: the receptionist to notify after each served
    /// request (None: standalone sequential server).
    notify: Option<Pid>,
    phase: Phase,
    current: Option<Current>,
}

impl FileServer {
    /// Creates a standalone (sequential) file server over a
    /// pre-populated store.
    pub fn new(cfg: FileServerConfig, store: BlockStore) -> FileServer {
        let shared = SharedServerState::new(cfg.build_disk(), store);
        FileServer::with_shared(cfg, shared, None)
    }

    /// Creates a server over team-shared state; `notify` puts it in
    /// worker mode (idle notifications to the receptionist).
    pub(crate) fn with_shared(
        cfg: FileServerConfig,
        shared: SharedServerState,
        notify: Option<Pid>,
    ) -> FileServer {
        FileServer {
            cfg,
            shared,
            notify,
            phase: Phase::Idle,
            current: None,
        }
    }

    /// Handle to the server's counters.
    pub fn stats_handle(&self) -> Rc<RefCell<FileServerStats>> {
        self.shared.stats.clone()
    }

    /// Issues a single-block-class disk request, routed to the arm the
    /// striping assigns `(file, block)`, and refreshes the surfaced
    /// (aggregate) disk counters.
    fn disk_request(&mut self, now: SimTime, file: FileId, block: u32, bytes: usize) -> SimTime {
        let done = self
            .shared
            .disk
            .borrow_mut()
            .request_striped(now, file.0 as u32, block, bytes);
        self.shared.stats.borrow_mut().disk = self.shared.disk.borrow().stats();
        done
    }

    /// Issues a multi-block span request (large reads): on a striped
    /// unit each touched arm transfers its stripes in parallel.
    fn disk_span(&mut self, now: SimTime, file: FileId, block: u32, bytes: usize) -> SimTime {
        let done = self
            .shared
            .disk
            .borrow_mut()
            .request_span(now, file.0 as u32, block, bytes);
        self.shared.stats.borrow_mut().disk = self.shared.disk.borrow().stats();
        done
    }

    fn rearm(&mut self, api: &mut Api<'_>) {
        self.phase = Phase::Idle;
        self.current = None;
        match self.notify {
            // Sequential: wait for the next client request directly.
            None => api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32),
            // Team worker: report idle to the receptionist; the next
            // forwarded request arrives after its reply (see resume).
            Some(receptionist) => api.send(Message::empty(), receptionist),
        }
    }

    fn reply_status(&mut self, api: &mut Api<'_>, status: IoStatus, value: u32, file: FileId) {
        let cur = self.current.as_ref().expect("request in progress");
        if status != IoStatus::Ok {
            self.shared.stats.borrow_mut().errors += 1;
        }
        let reply = IoReply {
            status,
            file,
            value,
            tag: cur.req.tag,
        }
        .encode();
        let _ = api.reply(reply, cur.from);
        self.rearm(api);
    }

    fn store_status(e: StoreError) -> IoStatus {
        match e {
            StoreError::NotFound => IoStatus::NotFound,
            StoreError::Exists => IoStatus::Exists,
            StoreError::BadBlock => IoStatus::BadBlock,
        }
    }

    /// Dispatch after the fs-processing charge.
    fn dispatch(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let seg_len = cur.seg_len;
        if self.cfg.read_only && matches!(req.op, IoOp::Create | IoOp::Write) {
            // Refused before any side effect: the store, the disk queue
            // and the read-ahead slot are untouched.
            self.reply_status(api, IoStatus::ReadOnly, 0, req.file);
            return;
        }
        match req.op {
            IoOp::Open => {
                self.shared.stats.borrow_mut().meta += 1;
                let name_bytes = api.mem_read(SRV_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                let opened = self.shared.store.borrow().open(&name);
                match opened {
                    Ok(id) => {
                        let len = self.shared.store.borrow().len(id).expect("exists") as u32;
                        self.reply_status(api, IoStatus::Ok, len, id);
                    }
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, FileId(0)),
                }
            }
            IoOp::Create => {
                self.shared.stats.borrow_mut().meta += 1;
                let name_bytes = api.mem_read(SRV_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                let created = self
                    .shared
                    .store
                    .borrow_mut()
                    .create(&name, req.aux as usize);
                match created {
                    Ok(id) => self.reply_status(api, IoStatus::Ok, req.aux, id),
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, FileId(0)),
                }
            }
            IoOp::Query => {
                self.shared.stats.borrow_mut().meta += 1;
                let len = self.shared.store.borrow().len(req.file);
                match len {
                    Ok(len) => self.reply_status(api, IoStatus::Ok, len as u32, req.file),
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
                }
            }
            IoOp::Read => {
                // Read-ahead hit?
                let pending = *self.shared.prefetch.borrow();
                if let Some((f, b, ready)) = pending {
                    if f == req.file && b == req.block {
                        *self.shared.prefetch.borrow_mut() = None;
                        if api.now() >= ready {
                            self.shared.stats.borrow_mut().readahead_hits += 1;
                            self.serve_read(api);
                            return;
                        }
                        // Prefetch still spinning: wait out the rest.
                        self.phase = Phase::DiskWait;
                        api.delay(ready.since(api.now()));
                        return;
                    }
                }
                let done = self.disk_request(
                    api.now(),
                    req.file,
                    req.block,
                    req.count.min(BLOCK_SIZE as u32) as usize,
                );
                self.phase = Phase::DiskWait;
                api.delay(done.since(api.now()));
            }
            IoOp::Write => {
                let count = req.count.min(BLOCK_SIZE as u32);
                if seg_len < count {
                    // The appended prefix didn't cover the block: pull
                    // the rest from the client's granted segment.
                    self.phase = Phase::FetchRest { have: seg_len };
                    let grant_start = req.buffer; // client buffer address
                    api.move_from(
                        cur.from,
                        SRV_IN + seg_len,
                        grant_start + seg_len,
                        count - seg_len,
                    );
                } else {
                    let done = self.disk_request(api.now(), req.file, req.block, count as usize);
                    self.phase = Phase::DiskWait;
                    api.delay(done.since(api.now()));
                }
            }
            IoOp::ReadLarge => {
                let done = self.disk_span(api.now(), req.file, req.block, req.count as usize);
                self.phase = Phase::DiskWait;
                api.delay(done.since(api.now()));
            }
        }
    }

    /// Completes a single-block read after the disk wait.
    fn serve_read(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let from = cur.from;
        let read: Result<Vec<u8>, StoreError> = self
            .shared
            .store
            .borrow()
            .read_block(req.file, req.block, req.count as usize)
            .map(|d| d.to_vec());
        match read {
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
            Ok(data) => {
                let n = data.len() as u32;
                api.mem_write(SRV_OUT, &data).expect("staging fits");
                let reply = IoReply {
                    status: IoStatus::Ok,
                    file: req.file,
                    value: n,
                    tag: req.tag,
                }
                .encode();
                if api
                    .reply_with_segment(reply, from, req.buffer, SRV_OUT, n)
                    .is_err()
                {
                    self.shared.stats.borrow_mut().errors += 1;
                }
                self.shared.stats.borrow_mut().reads += 1;
                // Read-ahead: start fetching the next block now. The
                // existence probe is free — no block copy.
                if self.cfg.read_ahead {
                    let next = req.block + 1;
                    if self.shared.store.borrow().has_block(req.file, next) {
                        let ready = self.disk_request(api.now(), req.file, next, BLOCK_SIZE);
                        *self.shared.prefetch.borrow_mut() = Some((req.file, next, ready));
                    }
                }
                self.rearm(api);
            }
        }
    }

    /// Completes a write after data + disk are in.
    fn serve_write(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let count = req.count.min(BLOCK_SIZE as u32);
        let data = api.mem_read(SRV_IN, count as usize).expect("in buffer");
        let wrote = self
            .shared
            .store
            .borrow_mut()
            .write_block(req.file, req.block, &data);
        match wrote {
            Ok(()) => {
                self.shared.stats.borrow_mut().writes += 1;
                self.reply_status(api, IoStatus::Ok, count, req.file);
            }
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
        }
    }

    /// Starts or continues the MoveTo push of a large read.
    fn push_large(&mut self, api: &mut Api<'_>, pushed: u32) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let from = cur.from;
        let n = self.cfg.transfer_unit.min(req.count - pushed);
        self.phase = Phase::Pushing { pushed };
        api.move_to(from, req.buffer + pushed, SRV_OUT + pushed, n);
    }
}

impl Program for FileServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                if let Some(id) = self.cfg.register {
                    api.set_pid(id, api.self_pid(), Scope::Both);
                }
                self.rearm(api);
            }
            Outcome::ReceiveSeg { from, msg, seg_len } => {
                let Some(req) = IoRequest::decode(&msg) else {
                    // Unknown request: answer with an error so the client
                    // is not left blocked forever.
                    self.current = Some(Current {
                        from,
                        req: IoRequest {
                            op: IoOp::Query,
                            file: FileId(0),
                            block: 0,
                            count: 0,
                            buffer: 0,
                            aux: 0,
                            tag: msg.get_u16(20),
                        },
                        seg_len: 0,
                    });
                    self.reply_status(api, IoStatus::Error, 0, FileId(0));
                    return;
                };
                self.current = Some(Current { from, req, seg_len });
                self.phase = Phase::FsWork;
                api.compute(self.cfg.fs_cpu);
            }
            Outcome::Compute => self.dispatch(api),
            Outcome::Delay => {
                // Disk finished.
                let op = self.current.as_ref().expect("request in progress").req.op;
                match op {
                    IoOp::Read => self.serve_read(api),
                    IoOp::Write => self.serve_write(api),
                    IoOp::ReadLarge => {
                        let (file, offset, count) = {
                            let cur = self.current.as_ref().expect("in progress");
                            (
                                cur.req.file,
                                cur.req.block as usize * BLOCK_SIZE,
                                cur.req.count as usize,
                            )
                        };
                        let read: Result<Vec<u8>, StoreError> = self
                            .shared
                            .store
                            .borrow()
                            .read_range(file, offset, count)
                            .map(|d| d.to_vec());
                        match read {
                            Err(e) => self.reply_status(api, Self::store_status(e), 0, file),
                            Ok(data) => {
                                api.mem_write(SRV_OUT, &data).expect("staging fits");
                                self.push_large(api, 0);
                            }
                        }
                    }
                    _ => self.rearm(api),
                }
            }
            Outcome::Move(Ok(n)) => match self.phase {
                Phase::FetchRest { have } => {
                    let count = {
                        let cur = self.current.as_ref().expect("in progress");
                        cur.req.count.min(BLOCK_SIZE as u32)
                    };
                    let have = have + n;
                    if have < count {
                        self.phase = Phase::FetchRest { have };
                        let cur = self.current.as_ref().expect("in progress");
                        let (from, buffer) = (cur.from, cur.req.buffer);
                        api.move_from(from, SRV_IN + have, buffer + have, count - have);
                    } else {
                        let (file, block) = {
                            let cur = self.current.as_ref().expect("in progress");
                            (cur.req.file, cur.req.block)
                        };
                        let done = self.disk_request(api.now(), file, block, count as usize);
                        self.phase = Phase::DiskWait;
                        api.delay(done.since(api.now()));
                    }
                }
                Phase::Pushing { pushed } => {
                    let (count, file) = {
                        let cur = self.current.as_ref().expect("in progress");
                        (cur.req.count, cur.req.file)
                    };
                    let pushed = pushed + n;
                    if pushed < count {
                        self.push_large(api, pushed);
                    } else {
                        self.shared.stats.borrow_mut().large_reads += 1;
                        self.reply_status(api, IoStatus::Ok, pushed, file);
                    }
                }
                _ => self.rearm(api),
            },
            Outcome::Move(Err(_)) => {
                self.shared.stats.borrow_mut().errors += 1;
                self.reply_status(api, IoStatus::Error, 0, FileId(0));
            }
            // Team worker only: the receptionist acknowledged our idle
            // notification — wait for the next forwarded request.
            Outcome::Send(Ok(_)) if self.notify.is_some() => {
                api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32);
            }
            _ => api.exit(),
        }
    }
}
