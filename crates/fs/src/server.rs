//! The file-server process.
//!
//! One V process serving the Verex I/O protocol over V IPC:
//!
//! * page **reads** are `Receive` → disk → `ReplyWithSegment` (two
//!   packets on the wire, §3.4);
//! * page **writes** arrive with the data appended to the request
//!   (`ReceiveWithSegment`); any remainder beyond the appended prefix is
//!   pulled with `MoveFrom`;
//! * **large reads** (program loading) are pushed with `MoveTo`s of at
//!   most one transfer unit — the paper's VAX server used 4 KB;
//! * sequential reads trigger **read-ahead**: the next block is fetched
//!   from the disk model while the client digests the current one
//!   (Table 6-2's structure).
//!
//! The same state machine serves in two roles. Standalone (the paper's
//! single sequential server, [`FileServerConfig::workers`]` == 1`), it
//! receives requests directly from clients. As a **team worker** (see
//! [`crate::team`]), it receives requests *forwarded* by a receptionist,
//! replies directly to the client, and then sends an idle notification
//! back to the receptionist — the store, disk and stats are shared
//! across the whole team.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use v_kernel::{naming, Api, Message, Outcome, Pid, Program, Scope};
use v_sim::{SimDuration, SimTime};

use crate::cache::CacheMode;
use crate::disk::{DiskModel, DiskStats};
use crate::proto::{IoOp, IoReply, IoRequest, IoStatus, CACHE_DENY, CACHE_UNTIL_INVALIDATED};
use crate::store::{BlockStore, FileId, StoreError};
use crate::BLOCK_SIZE;

/// Where request segments (names, write data) land in the server space.
pub const SRV_IN: u32 = 0x0400;
/// Staging buffer for outgoing data.
pub const SRV_OUT: u32 = 0x10000;

/// File-server configuration.
#[derive(Debug, Clone)]
pub struct FileServerConfig {
    /// The disk behind the store.
    pub disk: DiskModel,
    /// Independent disk arms blocks are striped over. `1` (the default)
    /// keeps `disk` exactly as given — bit-identical to the historical
    /// single-arm server. `>= 2` reshapes `disk` into a striped
    /// multi-arm unit at spawn time (see [`DiskModel::with_arms`]), so
    /// a worker team's concurrent requests overlap their seeks instead
    /// of queueing behind one arm. Threaded unchanged through the team,
    /// shard and replica builders, which all take this config.
    pub disk_arms: usize,
    /// File-system processing charged per request (the paper estimates
    /// 2.5 ms at 10 MHz for a local system, 3.5 ms from LOCUS for
    /// capacity planning).
    pub fs_cpu: SimDuration,
    /// `MoveTo`/`MoveFrom` chunking for large transfers.
    pub transfer_unit: u32,
    /// Prefetch the next sequential block after each read.
    pub read_ahead: bool,
    /// Register under this logical id at startup (scope `Both`).
    pub register: Option<u32>,
    /// Worker processes serving requests. `1` (the default) is the
    /// paper's sequential server — one process does everything, and the
    /// timing is bit-identical to the pre-team implementation. `>= 2`
    /// spawns a receptionist that `Forward`s each request to an idle
    /// worker, so one request's disk wait overlaps the next request's
    /// receive and file-system processing (see [`crate::team`]).
    pub workers: usize,
    /// Refuse mutating operations (`Create`, `Write`) with
    /// [`IoStatus::ReadOnly`]. Read-only replicas of the root file
    /// service (see [`crate::replica`]) set this so the replicas can
    /// never diverge: every copy serves the same immutable image.
    pub read_only: bool,
    /// Client-cache consistency scheme (see [`CacheMode`]). `Off` (the
    /// default) never registers holders, never calls anyone back, and
    /// answers `ReadCached` with a deny grant — the write path is
    /// bit-identical to the pre-cache server.
    pub cache_mode: CacheMode,
    /// Lease granted per cached read in [`CacheMode::Leases`]; writes
    /// wait out the longest unexpired lease (plus [`LEASE_GUARD`])
    /// instead of calling holders back.
    pub lease: SimDuration,
}

impl Default for FileServerConfig {
    fn default() -> Self {
        FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(15)),
            disk_arms: 1,
            fs_cpu: SimDuration::from_micros(2500),
            transfer_unit: 4096,
            read_ahead: true,
            register: Some(naming::logical::FILE_SERVER),
            workers: 1,
            read_only: false,
            cache_mode: CacheMode::Off,
            lease: SimDuration::from_millis(500),
        }
    }
}

/// Slack a lease-mode write waits beyond the last lease expiry: covers
/// the reply's flight time, during which the client's lease clock
/// (started when the grant *arrived*) still runs.
pub const LEASE_GUARD: SimDuration = SimDuration::from_millis(10);

impl FileServerConfig {
    /// The disk unit a spawn actually installs: `disk` as given for
    /// `disk_arms <= 1` (a pre-striped [`crate::DiskParams`] build
    /// passes through untouched), reshaped to `disk_arms` striped arms
    /// otherwise.
    pub(crate) fn build_disk(&self) -> DiskModel {
        if self.disk_arms > 1 {
            self.disk.clone().with_arms(self.disk_arms)
        } else {
            self.disk.clone()
        }
    }
}

/// One file's heat row: lifetime totals, the current sampling epoch,
/// and an exponentially decayed score.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HeatEntry {
    /// The file.
    pub file: FileId,
    /// Lifetime reads (page + large + cached).
    pub reads: u64,
    /// Lifetime writes.
    pub writes: u64,
    /// Reads since the last [`FileHeat::decay`].
    pub epoch_reads: u64,
    /// Writes since the last [`FileHeat::decay`].
    pub epoch_writes: u64,
    /// Exponentially decayed operation count: `+1` per operation,
    /// multiplied by the decay factor at each sampling epoch. Recent
    /// traffic dominates; ancient traffic fades geometrically — the
    /// rebalancer ranks files by this, so a file that *was* hot last
    /// minute doesn't get migrated on stale evidence.
    pub score: f64,
}

/// Per-file read/write heat, kept sorted by file id — which files a
/// server actually serves, and how hot each one runs *now*. Lifetime
/// totals never decay (cachemix reporting); the [`HeatEntry::score`]
/// and epoch counters age via [`FileHeat::decay`], which the
/// rebalancer calls once per sampling interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileHeat {
    /// Rows sorted by file id.
    entries: Vec<HeatEntry>,
}

impl FileHeat {
    fn slot(&mut self, file: FileId) -> &mut HeatEntry {
        let idx = match self.entries.binary_search_by_key(&file.0, |e| e.file.0) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(
                    i,
                    HeatEntry {
                        file,
                        ..HeatEntry::default()
                    },
                );
                i
            }
        };
        &mut self.entries[idx]
    }

    /// Counts one read (page or large) of `file`.
    pub fn bump_read(&mut self, file: FileId) {
        let s = self.slot(file);
        s.reads += 1;
        s.epoch_reads += 1;
        s.score += 1.0;
    }

    /// Counts one write of `file`.
    pub fn bump_write(&mut self, file: FileId) {
        let s = self.slot(file);
        s.writes += 1;
        s.epoch_writes += 1;
        s.score += 1.0;
    }

    /// Lifetime `(reads, writes)` served for `file`.
    pub fn of(&self, file: FileId) -> (u64, u64) {
        self.entry(file).map_or((0, 0), |e| (e.reads, e.writes))
    }

    /// `(reads, writes)` served for `file` since the last decay — the
    /// sampled-epoch view a policy process reads between intervals.
    pub fn epoch_of(&self, file: FileId) -> (u64, u64) {
        self.entry(file)
            .map_or((0, 0), |e| (e.epoch_reads, e.epoch_writes))
    }

    /// The decayed score of `file` (0.0 when unknown).
    pub fn score_of(&self, file: FileId) -> f64 {
        self.entry(file).map_or(0.0, |e| e.score)
    }

    /// Sum of every file's decayed score — the load this server carries
    /// on the rebalancer's clock.
    pub fn total_score(&self) -> f64 {
        self.entries.iter().map(|e| e.score).sum()
    }

    fn entry(&self, file: FileId) -> Option<&HeatEntry> {
        self.entries
            .binary_search_by_key(&file.0, |e| e.file.0)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// All rows, sorted by file id.
    pub fn entries(&self) -> &[HeatEntry] {
        &self.entries
    }

    /// The file with the most total operations (ties: lowest id).
    pub fn hottest(&self) -> Option<(FileId, u64)> {
        self.entries
            .iter()
            .map(|e| (e.file, e.reads + e.writes))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)))
    }

    /// Ages every row by one sampling epoch: scores are multiplied by
    /// `factor` (half-life = `ln 2 / ln(1/factor)` epochs) and the
    /// epoch counters reset. Lifetime totals are untouched.
    pub fn decay(&mut self, factor: f64) {
        for e in &mut self.entries {
            e.score *= factor;
            e.epoch_reads = 0;
            e.epoch_writes = 0;
        }
    }

    /// Removes and returns `file`'s row — the releasing half of moving
    /// a file's heat along with its blocks during migration.
    pub fn take(&mut self, file: FileId) -> Option<HeatEntry> {
        match self.entries.binary_search_by_key(&file.0, |e| e.file.0) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    /// Grafts a row taken from another server's heat table (merging if
    /// the file already has local history).
    pub fn graft(&mut self, row: HeatEntry) {
        let s = self.slot(row.file);
        s.reads += row.reads;
        s.writes += row.writes;
        s.epoch_reads += row.epoch_reads;
        s.epoch_writes += row.epoch_writes;
        s.score += row.score;
    }

    /// Folds another heat table into this one (team aggregation).
    pub fn absorb(&mut self, other: &FileHeat) {
        for &row in &other.entries {
            self.graft(row);
        }
    }
}

/// Counters the server (or the whole team) accumulates.
#[derive(Debug, Clone, Default)]
pub struct FileServerStats {
    /// Requests served, by rough class.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Large reads served.
    pub large_reads: u64,
    /// Opens/creates/queries served.
    pub meta: u64,
    /// Requests refused with an error status.
    pub errors: u64,
    /// Read-ahead hits (no disk wait).
    pub readahead_hits: u64,
    /// Requests the receptionist forwarded to workers (0 for the
    /// sequential server).
    pub forwarded: u64,
    /// Deepest backlog the receptionist parked while every worker was
    /// busy.
    pub parked_peak: u64,
    /// `ReadCached` requests served (a subset of `reads`).
    pub cached_reads: u64,
    /// Invalidation callbacks delivered to holders before writes.
    pub invalidations: u64,
    /// Callbacks that failed (dead holder host): the holder is dropped
    /// and the write proceeds.
    pub invalidation_failures: u64,
    /// Writes that waited out at least one unexpired lease.
    pub lease_waits: u64,
    /// Requests that arrived for a file this service no longer owns
    /// (it migrated away) and were `Forward`ed to the new owner. Each
    /// such request completes exactly once — at the new owner, which
    /// replies to the client directly.
    pub moved_forwards: u64,
    /// Writes refused with [`IoStatus::RetryAfter`] because the target
    /// file was draining for migration.
    pub drain_write_refusals: u64,
    /// Files this service released to another shard (migration commit).
    pub migrated_out: u64,
    /// Files this service adopted from another shard (copy completed).
    pub migrated_in: u64,
    /// Per-file read/write heat across every request class.
    pub heat: FileHeat,
    /// The shared disk's queueing counters — aggregated across every
    /// arm of a striped unit ([`DiskStats::absorb`]) — refreshed on
    /// every disk request so experiments can report utilization and
    /// queue depth instead of inferring them. Per-arm breakdowns come
    /// from the disk handle itself ([`DiskModel::per_arm_stats`]).
    pub disk: DiskStats,
}

/// One registered cache holder of a file.
#[derive(Debug, Clone, Copy)]
struct Holder {
    /// The holder's cache agent.
    agent: Pid,
    /// Lease expiry (`None` in write-invalidate mode).
    expires: Option<SimTime>,
}

/// Holder bookkeeping for one file.
#[derive(Debug, Default)]
pub(crate) struct FileHolders {
    holders: Vec<Holder>,
    /// Writes between holder-drain and commit. While nonzero, new
    /// cached reads get a deny grant — a read served concurrently with
    /// the write could otherwise install pre-write data *after* the
    /// holders were drained, with nobody left to call it back.
    write_pending: u32,
}

/// Live-migration bookkeeping one server team shares (see
/// [`crate::migrate`] for the mechanism and [`crate::rebalance`] for
/// the policy that drives it).
#[derive(Debug, Default)]
pub(crate) struct MigrationTable {
    /// Files frozen for copy-out: writes are refused with
    /// [`IoStatus::RetryAfter`] (reads keep flowing — the frozen image
    /// is exactly what the destination is copying).
    pub(crate) draining: std::collections::HashSet<u16>,
    /// Writes currently between dispatch and commit, per file — a
    /// `MigrateBegin` is refused (retry-after) while nonzero, so the
    /// copied image can never miss a write that was already in flight
    /// past the drain check on another worker.
    pub(crate) inflight_writes: HashMap<u16, u32>,
    /// file id → the service now owning it (commit flipped ownership).
    pub(crate) moved: HashMap<u16, Pid>,
    /// file name → new owner, for `Open`s arriving by name.
    pub(crate) moved_names: HashMap<String, Pid>,
}

impl MigrationTable {
    fn note_write_begin(&mut self, file: FileId) {
        *self.inflight_writes.entry(file.0).or_insert(0) += 1;
    }

    fn note_write_end(&mut self, file: FileId) {
        if let Some(n) = self.inflight_writes.get_mut(&file.0) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.inflight_writes.remove(&file.0);
            }
        }
    }

    fn writes_in_flight(&self, file: FileId) -> bool {
        self.inflight_writes.get(&file.0).copied().unwrap_or(0) > 0
    }

    /// Where a request for `file` should go instead, if anywhere.
    pub(crate) fn redirect_for(&self, file: FileId) -> Option<Pid> {
        self.moved.get(&file.0).copied()
    }

    /// Where an open of `name` should go instead, if anywhere.
    pub(crate) fn redirect_for_name(&self, name: &str) -> Option<Pid> {
        self.moved_names.get(name).copied()
    }
}

/// State one server team shares: the block store, the disk unit (one
/// arm or a striped set), the stats block and the read-ahead slot. The
/// sequential server owns a private copy of the same structure, so its
/// code path is identical.
#[derive(Clone)]
pub(crate) struct SharedServerState {
    pub(crate) store: Rc<RefCell<BlockStore>>,
    pub(crate) disk: Rc<RefCell<DiskModel>>,
    pub(crate) stats: Rc<RefCell<FileServerStats>>,
    /// (file, block) the pending read-ahead will satisfy, and when the
    /// disk will have it. Shared: any worker may take the hit.
    pub(crate) prefetch: Rc<RefCell<Option<(FileId, u32, SimTime)>>>,
    /// Cache holders per file id — team-shared so any worker's write
    /// invalidates holders registered through any other worker.
    pub(crate) holders: Rc<RefCell<HashMap<u16, FileHolders>>>,
    /// Migration state — team-shared so a drain set by one worker
    /// refuses writes dispatched through any other worker.
    pub(crate) migration: Rc<RefCell<MigrationTable>>,
}

impl SharedServerState {
    pub(crate) fn new(disk: DiskModel, store: BlockStore) -> SharedServerState {
        SharedServerState {
            store: Rc::new(RefCell::new(store)),
            disk: Rc::new(RefCell::new(disk)),
            stats: Default::default(),
            prefetch: Default::default(),
            holders: Default::default(),
            migration: Default::default(),
        }
    }
}

enum Phase {
    Idle,
    FsWork,
    DiskWait,
    FetchRest {
        have: u32,
    },
    Pushing {
        pushed: u32,
    },
    /// Write-invalidate: callbacks in flight, queue in
    /// `FileServer::inval_queue`; the disk write starts when it drains.
    Invalidating,
    /// Leases: waiting out the longest unexpired lease before the disk
    /// write.
    LeaseWait,
}

struct Current {
    from: Pid,
    req: IoRequest,
    seg_len: u32,
    /// The raw message as received — kept so a request for a migrated
    /// file can be `Forward`ed to the new owner verbatim, appended
    /// write data and all.
    msg: Message,
}

/// The file-server program.
pub struct FileServer {
    cfg: FileServerConfig,
    shared: SharedServerState,
    /// Team-worker mode: the receptionist to notify after each served
    /// request (None: standalone sequential server).
    notify: Option<Pid>,
    phase: Phase,
    current: Option<Current>,
    /// Holders still to call back for the in-progress write (reversed:
    /// `pop()` walks registration order).
    inval_queue: Vec<Pid>,
}

impl FileServer {
    /// Creates a standalone (sequential) file server over a
    /// pre-populated store.
    pub fn new(cfg: FileServerConfig, store: BlockStore) -> FileServer {
        let shared = SharedServerState::new(cfg.build_disk(), store);
        FileServer::with_shared(cfg, shared, None)
    }

    /// Creates a server over team-shared state; `notify` puts it in
    /// worker mode (idle notifications to the receptionist).
    pub(crate) fn with_shared(
        cfg: FileServerConfig,
        shared: SharedServerState,
        notify: Option<Pid>,
    ) -> FileServer {
        FileServer {
            cfg,
            shared,
            notify,
            phase: Phase::Idle,
            current: None,
            inval_queue: Vec::new(),
        }
    }

    /// Handle to the server's counters.
    pub fn stats_handle(&self) -> Rc<RefCell<FileServerStats>> {
        self.shared.stats.clone()
    }

    /// Issues a single-block-class disk request, routed to the arm the
    /// striping assigns `(file, block)`, and refreshes the surfaced
    /// (aggregate) disk counters.
    fn disk_request(&mut self, now: SimTime, file: FileId, block: u32, bytes: usize) -> SimTime {
        let done = self
            .shared
            .disk
            .borrow_mut()
            .request_striped(now, file.0 as u32, block, bytes);
        self.shared.stats.borrow_mut().disk = self.shared.disk.borrow().stats();
        done
    }

    /// Issues a multi-block span request (large reads): on a striped
    /// unit each touched arm transfers its stripes in parallel.
    fn disk_span(&mut self, now: SimTime, file: FileId, block: u32, bytes: usize) -> SimTime {
        let done = self
            .shared
            .disk
            .borrow_mut()
            .request_span(now, file.0 as u32, block, bytes);
        self.shared.stats.borrow_mut().disk = self.shared.disk.borrow().stats();
        done
    }

    fn rearm(&mut self, api: &mut Api<'_>) {
        self.phase = Phase::Idle;
        self.current = None;
        match self.notify {
            // Sequential: wait for the next client request directly.
            None => api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32),
            // Team worker: report idle to the receptionist; the next
            // forwarded request arrives after its reply (see resume).
            Some(receptionist) => api.send(Message::empty(), receptionist),
        }
    }

    /// The pid clients know this service by: the receptionist for a
    /// team worker, the server itself when sequential — stamped into
    /// every reply's `owner` so a client whose request was forwarded
    /// can correct its owner cache.
    fn service_pid(&self, api: &Api<'_>) -> Pid {
        self.notify.unwrap_or_else(|| api.self_pid())
    }

    fn reply_status(&mut self, api: &mut Api<'_>, status: IoStatus, value: u32, file: FileId) {
        let owner = self.service_pid(api).raw();
        let cur = self.current.as_ref().expect("request in progress");
        // Retry-after is back-pressure, not failure: the client retries
        // and the operation still completes exactly once.
        if status != IoStatus::Ok && status != IoStatus::RetryAfter {
            self.shared.stats.borrow_mut().errors += 1;
        }
        let reply = IoReply {
            status,
            file,
            value,
            aux: 0,
            owner,
            tag: cur.req.tag,
        }
        .encode();
        let _ = api.reply(reply, cur.from);
        self.rearm(api);
    }

    fn store_status(e: StoreError) -> IoStatus {
        match e {
            StoreError::NotFound => IoStatus::NotFound,
            StoreError::Exists => IoStatus::Exists,
            StoreError::BadBlock => IoStatus::BadBlock,
            StoreError::Full => IoStatus::Error,
        }
    }

    /// Registers the requesting cache agent as a holder of the file
    /// (dispatch time, *before* the disk — so a write dispatched during
    /// this read's disk wait still finds the holder and calls it back).
    /// Reads arriving while a write is pending are not registered: the
    /// serve-time grant will deny them.
    fn register_holder(&mut self, now: SimTime, req: &IoRequest) {
        if self.cfg.cache_mode == CacheMode::Off {
            return;
        }
        let Some(agent) = Pid::from_raw(req.aux) else {
            return;
        };
        let expires = match self.cfg.cache_mode {
            CacheMode::Leases => Some(now + self.cfg.lease),
            _ => None,
        };
        let mut h = self.shared.holders.borrow_mut();
        let fh = h.entry(req.file.0).or_default();
        if fh.write_pending > 0 {
            return;
        }
        // Drop holders whose lease already lapsed while here.
        fh.holders
            .retain(|x| x.expires.map_or(true, |e| e > now) || x.agent == agent);
        match fh.holders.iter_mut().find(|x| x.agent == agent) {
            Some(x) => x.expires = expires,
            None => fh.holders.push(Holder { agent, expires }),
        }
    }

    /// The cacheability grant for a served read: deny unless the
    /// requester is (still) a registered holder with no write pending.
    fn read_grant(&self, now: SimTime, req: &IoRequest) -> u32 {
        if self.cfg.cache_mode == CacheMode::Off || req.op != IoOp::ReadCached {
            return CACHE_DENY;
        }
        let Some(agent) = Pid::from_raw(req.aux) else {
            return CACHE_DENY;
        };
        let h = self.shared.holders.borrow();
        let Some(fh) = h.get(&req.file.0) else {
            return CACHE_DENY;
        };
        if fh.write_pending > 0 {
            return CACHE_DENY;
        }
        let Some(holder) = fh.holders.iter().find(|x| x.agent == agent) else {
            return CACHE_DENY;
        };
        match holder.expires {
            None => CACHE_UNTIL_INVALIDATED,
            Some(exp) if exp > now => {
                let us = exp.since(now).as_nanos() / 1_000;
                us.min(CACHE_UNTIL_INVALIDATED as u64 - 1) as u32
            }
            Some(_) => CACHE_DENY,
        }
    }

    /// Starts the disk write for the current request (the pre-cache
    /// write path).
    fn write_disk(&mut self, api: &mut Api<'_>) {
        let (file, block, count) = {
            let cur = self.current.as_ref().expect("request in progress");
            (
                cur.req.file,
                cur.req.block,
                cur.req.count.min(BLOCK_SIZE as u32),
            )
        };
        let done = self.disk_request(api.now(), file, block, count as usize);
        self.phase = Phase::DiskWait;
        api.delay(done.since(api.now()));
    }

    /// A write's data is fully in: run the consistency protocol before
    /// committing. `Off` goes straight to the disk (bit-identical);
    /// write-invalidate drains the file's holders with callbacks;
    /// leases wait out the longest unexpired lease.
    fn begin_write_commit(&mut self, api: &mut Api<'_>) {
        if self.cfg.cache_mode == CacheMode::Off {
            self.write_disk(api);
            return;
        }
        let (file, excl) = {
            let cur = self.current.as_ref().expect("request in progress");
            (cur.req.file, cur.req.aux)
        };
        let now = api.now();
        let taken = {
            let mut h = self.shared.holders.borrow_mut();
            let fh = h.entry(file.0).or_default();
            fh.write_pending += 1;
            std::mem::take(&mut fh.holders)
        };
        // The writer's own agent (if caching) purged locally at issue.
        let excl_agent = Pid::from_raw(excl);
        match self.cfg.cache_mode {
            CacheMode::Off => unreachable!("handled above"),
            CacheMode::WriteInvalidate => {
                self.inval_queue = taken
                    .iter()
                    .filter(|x| Some(x.agent) != excl_agent)
                    .map(|x| x.agent)
                    .rev()
                    .collect();
                self.phase = Phase::Invalidating;
                self.next_invalidation(api);
            }
            CacheMode::Leases => {
                let latest = taken
                    .iter()
                    .filter(|x| Some(x.agent) != excl_agent)
                    .filter_map(|x| x.expires)
                    .filter(|&e| e > now)
                    .max();
                match latest {
                    Some(exp) => {
                        self.shared.stats.borrow_mut().lease_waits += 1;
                        self.phase = Phase::LeaseWait;
                        api.delay(exp.since(now) + LEASE_GUARD);
                    }
                    None => self.write_disk(api),
                }
            }
        }
    }

    /// Sends the next pending invalidation callback, or starts the disk
    /// write once the queue is drained.
    fn next_invalidation(&mut self, api: &mut Api<'_>) {
        match self.inval_queue.pop() {
            Some(agent) => {
                let (file, tag) = {
                    let cur = self.current.as_ref().expect("request in progress");
                    (cur.req.file, cur.req.tag)
                };
                let msg = IoRequest {
                    op: IoOp::Invalidate,
                    file,
                    block: 0,
                    count: 0,
                    buffer: 0,
                    aux: 0,
                    tag,
                }
                .encode();
                api.send(msg, agent);
            }
            None => self.write_disk(api),
        }
    }

    /// Balances `begin_write_commit`'s pending marker once the write
    /// commits (or fails at the store).
    fn finish_write_pending(&mut self, file: FileId) {
        if self.cfg.cache_mode == CacheMode::Off {
            return;
        }
        let mut h = self.shared.holders.borrow_mut();
        if let Some(fh) = h.get_mut(&file.0) {
            fh.write_pending = fh.write_pending.saturating_sub(1);
            if fh.write_pending == 0 && fh.holders.is_empty() {
                h.remove(&file.0);
            }
        }
    }

    /// Hands the current request — still carrying the client's reply
    /// obligation and any appended/granted segments — to the service
    /// that owns the file now. The new owner serves it and replies to
    /// the client directly; this server goes back to its queue.
    fn forward_to_owner(&mut self, api: &mut Api<'_>, new_owner: Pid) {
        let cur = self.current.as_ref().expect("request in progress");
        let (msg, from, file) = (cur.msg, cur.from, cur.req.file);
        match api.forward(msg, from, new_owner) {
            Ok(()) => {
                self.shared.stats.borrow_mut().moved_forwards += 1;
                self.rearm(api);
            }
            // The new owner is unreachable: fail the request back to
            // the client rather than leaving it blocked — its own
            // failover logic takes it from there.
            Err(_) => self.reply_status(api, IoStatus::Error, 0, file),
        }
    }

    /// Dispatch after the fs-processing charge.
    fn dispatch(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let seg_len = cur.seg_len;
        // A request addressed (by id) to a file that migrated away is
        // forwarded to its new owner — stale owner caches self-correct
        // off the reply's `owner` stamp. Opens (by name) check the
        // moved-names side of the table in their own arm below.
        if !matches!(req.op, IoOp::Open | IoOp::Create | IoOp::Invalidate) {
            let moved = self.shared.migration.borrow().redirect_for(req.file);
            if let Some(new_owner) = moved {
                self.forward_to_owner(api, new_owner);
                return;
            }
        }
        if self.cfg.read_only && matches!(req.op, IoOp::Create | IoOp::Write) {
            // Refused before any side effect: the store, the disk queue
            // and the read-ahead slot are untouched.
            self.reply_status(api, IoStatus::ReadOnly, 0, req.file);
            return;
        }
        if req.op == IoOp::Write
            && self
                .shared
                .migration
                .borrow()
                .draining
                .contains(&req.file.0)
        {
            // The file is frozen for copy-out. Refuse without side
            // effects — the client backs off and retries, and the team
            // keeps serving everything else meanwhile.
            self.shared.stats.borrow_mut().drain_write_refusals += 1;
            self.reply_status(api, IoStatus::RetryAfter, 0, req.file);
            return;
        }
        match req.op {
            IoOp::Open => {
                let name_bytes = api.mem_read(SRV_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                let moved = self.shared.migration.borrow().redirect_for_name(&name);
                if let Some(new_owner) = moved {
                    self.forward_to_owner(api, new_owner);
                    return;
                }
                self.shared.stats.borrow_mut().meta += 1;
                let opened = self.shared.store.borrow().open(&name);
                match opened {
                    Ok(id) => {
                        let len = self.shared.store.borrow().len(id).expect("exists") as u32;
                        self.reply_status(api, IoStatus::Ok, len, id);
                    }
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, FileId(0)),
                }
            }
            IoOp::Create => {
                self.shared.stats.borrow_mut().meta += 1;
                let name_bytes = api.mem_read(SRV_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                let created = self
                    .shared
                    .store
                    .borrow_mut()
                    .create(&name, req.aux as usize);
                match created {
                    Ok(id) => self.reply_status(api, IoStatus::Ok, req.aux, id),
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, FileId(0)),
                }
            }
            IoOp::Query => {
                self.shared.stats.borrow_mut().meta += 1;
                let len = self.shared.store.borrow().len(req.file);
                match len {
                    Ok(len) => self.reply_status(api, IoStatus::Ok, len as u32, req.file),
                    Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
                }
            }
            IoOp::Read | IoOp::ReadCached => {
                if req.op == IoOp::ReadCached {
                    self.shared.stats.borrow_mut().cached_reads += 1;
                    self.register_holder(api.now(), &req);
                }
                // Read-ahead hit?
                let pending = *self.shared.prefetch.borrow();
                if let Some((f, b, ready)) = pending {
                    if f == req.file && b == req.block {
                        *self.shared.prefetch.borrow_mut() = None;
                        if api.now() >= ready {
                            self.shared.stats.borrow_mut().readahead_hits += 1;
                            self.serve_read(api);
                            return;
                        }
                        // Prefetch still spinning: wait out the rest.
                        self.phase = Phase::DiskWait;
                        api.delay(ready.since(api.now()));
                        return;
                    }
                }
                let done = self.disk_request(
                    api.now(),
                    req.file,
                    req.block,
                    req.count.min(BLOCK_SIZE as u32) as usize,
                );
                self.phase = Phase::DiskWait;
                api.delay(done.since(api.now()));
            }
            IoOp::Write => {
                self.shared
                    .migration
                    .borrow_mut()
                    .note_write_begin(req.file);
                let count = req.count.min(BLOCK_SIZE as u32);
                if seg_len < count {
                    // The appended prefix didn't cover the block: pull
                    // the rest from the client's granted segment.
                    self.phase = Phase::FetchRest { have: seg_len };
                    let grant_start = req.buffer; // client buffer address
                    api.move_from(
                        cur.from,
                        SRV_IN + seg_len,
                        grant_start + seg_len,
                        count - seg_len,
                    );
                } else {
                    self.begin_write_commit(api);
                }
            }
            IoOp::ReadLarge => {
                let done = self.disk_span(api.now(), req.file, req.block, req.count as usize);
                self.phase = Phase::DiskWait;
                api.delay(done.since(api.now()));
            }
            // Invalidate is a server→agent callback; a server receiving
            // one is a protocol error.
            IoOp::Invalidate => self.reply_status(api, IoStatus::Error, 0, req.file),
            IoOp::MigrateBegin => self.serve_migrate_begin(api, &req),
            IoOp::MigrateCommit => self.serve_migrate_commit(api, &req),
            IoOp::MigrateAbort => {
                // Copy failed: unfreeze and keep serving the file.
                self.shared.stats.borrow_mut().meta += 1;
                let dropped = self
                    .shared
                    .migration
                    .borrow_mut()
                    .draining
                    .remove(&req.file.0);
                let status = if dropped {
                    IoStatus::Ok
                } else {
                    IoStatus::NotFound
                };
                self.reply_status(api, status, 0, req.file);
            }
            // Pull is addressed to a destination's migration agent
            // ([`crate::migrate`]); a file server receiving one is a
            // protocol error.
            IoOp::MigratePull => self.reply_status(api, IoStatus::Error, 0, req.file),
        }
    }

    /// `MigrateBegin`: freeze writes to the file and hand the
    /// rebalancer everything the destination needs to adopt it — the
    /// length (reply `value`), and the name, deposited into the
    /// requester's write-granted buffer (length in reply `aux`).
    fn serve_migrate_begin(&mut self, api: &mut Api<'_>, req: &IoRequest) {
        if self.shared.migration.borrow().writes_in_flight(req.file) {
            // A write already passed the drain check on another worker:
            // freezing now could snapshot a torn image. Back off.
            self.reply_status(api, IoStatus::RetryAfter, 0, req.file);
            return;
        }
        let info = {
            let store = self.shared.store.borrow();
            store
                .len(req.file)
                .and_then(|len| store.name(req.file).map(|n| (len, n.to_string())))
        };
        match info {
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
            Ok((len, name)) => {
                self.shared
                    .migration
                    .borrow_mut()
                    .draining
                    .insert(req.file.0);
                self.shared.stats.borrow_mut().meta += 1;
                let owner = self.service_pid(api).raw();
                let cur = self.current.as_ref().expect("request in progress");
                let n = name.len() as u32;
                api.mem_write(SRV_OUT, name.as_bytes())
                    .expect("staging fits");
                let reply = IoReply {
                    status: IoStatus::Ok,
                    file: req.file,
                    value: len as u32,
                    aux: n,
                    owner,
                    tag: req.tag,
                }
                .encode();
                if api
                    .reply_with_segment(reply, cur.from, req.buffer, SRV_OUT, n)
                    .is_err()
                {
                    // The rebalancer died mid-handshake: nobody will
                    // commit or abort this drain, so lift it here.
                    self.shared
                        .migration
                        .borrow_mut()
                        .draining
                        .remove(&req.file.0);
                    self.shared.stats.borrow_mut().errors += 1;
                }
                self.rearm(api);
            }
        }
    }

    /// `MigrateCommit`: the destination holds a complete copy — drop
    /// the local file and forward every later request for it (by id or
    /// name) to the new owner (`aux` = its raw service pid).
    fn serve_migrate_commit(&mut self, api: &mut Api<'_>, req: &IoRequest) {
        let Some(new_owner) = Pid::from_raw(req.aux) else {
            self.reply_status(api, IoStatus::Error, 0, req.file);
            return;
        };
        let name = {
            let store = self.shared.store.borrow();
            store.name(req.file).map(|n| n.to_string())
        };
        match name {
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
            Ok(name) => {
                self.shared
                    .store
                    .borrow_mut()
                    .remove(req.file)
                    .expect("name() just found it");
                {
                    let mut mig = self.shared.migration.borrow_mut();
                    mig.draining.remove(&req.file.0);
                    mig.moved.insert(req.file.0, new_owner);
                    mig.moved_names.insert(name, new_owner);
                }
                // Cache holders of the file are released: the new owner
                // starts with a clean registry and clients re-register
                // on their next (forwarded) cached read.
                self.shared.holders.borrow_mut().remove(&req.file.0);
                {
                    let mut st = self.shared.stats.borrow_mut();
                    st.meta += 1;
                    st.migrated_out += 1;
                }
                self.reply_status(api, IoStatus::Ok, 0, req.file);
            }
        }
    }

    /// Completes a single-block read after the disk wait.
    fn serve_read(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let from = cur.from;
        let read: Result<Vec<u8>, StoreError> = self
            .shared
            .store
            .borrow()
            .read_block(req.file, req.block, req.count as usize)
            .map(|d| d.to_vec());
        match read {
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
            Ok(data) => {
                let n = data.len() as u32;
                api.mem_write(SRV_OUT, &data).expect("staging fits");
                let reply = IoReply {
                    status: IoStatus::Ok,
                    file: req.file,
                    value: n,
                    aux: self.read_grant(api.now(), &req),
                    owner: self.service_pid(api).raw(),
                    tag: req.tag,
                }
                .encode();
                if api
                    .reply_with_segment(reply, from, req.buffer, SRV_OUT, n)
                    .is_err()
                {
                    self.shared.stats.borrow_mut().errors += 1;
                }
                {
                    let mut st = self.shared.stats.borrow_mut();
                    st.reads += 1;
                    st.heat.bump_read(req.file);
                }
                // Read-ahead: start fetching the next block now. The
                // existence probe is free — no block copy.
                if self.cfg.read_ahead {
                    let next = req.block + 1;
                    if self.shared.store.borrow().has_block(req.file, next) {
                        let ready = self.disk_request(api.now(), req.file, next, BLOCK_SIZE);
                        *self.shared.prefetch.borrow_mut() = Some((req.file, next, ready));
                    }
                }
                self.rearm(api);
            }
        }
    }

    /// Completes a write after data + disk (and any invalidation
    /// callbacks / lease waits) are in.
    fn serve_write(&mut self, api: &mut Api<'_>) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        self.shared.migration.borrow_mut().note_write_end(req.file);
        let count = req.count.min(BLOCK_SIZE as u32);
        let data = api.mem_read(SRV_IN, count as usize).expect("in buffer");
        let wrote = self
            .shared
            .store
            .borrow_mut()
            .write_block(req.file, req.block, &data);
        self.finish_write_pending(req.file);
        match wrote {
            Ok(()) => {
                {
                    let mut st = self.shared.stats.borrow_mut();
                    st.writes += 1;
                    st.heat.bump_write(req.file);
                }
                self.reply_status(api, IoStatus::Ok, count, req.file);
            }
            Err(e) => self.reply_status(api, Self::store_status(e), 0, req.file),
        }
    }

    /// Starts or continues the MoveTo push of a large read.
    fn push_large(&mut self, api: &mut Api<'_>, pushed: u32) {
        let cur = self.current.as_ref().expect("request in progress");
        let req = cur.req;
        let from = cur.from;
        let n = self.cfg.transfer_unit.min(req.count - pushed);
        self.phase = Phase::Pushing { pushed };
        api.move_to(from, req.buffer + pushed, SRV_OUT + pushed, n);
    }
}

impl Program for FileServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                if let Some(id) = self.cfg.register {
                    api.set_pid(id, api.self_pid(), Scope::Both);
                }
                self.rearm(api);
            }
            Outcome::ReceiveSeg { from, msg, seg_len } => {
                let Some(req) = IoRequest::decode(&msg) else {
                    // Unknown request: answer with an error so the client
                    // is not left blocked forever.
                    self.current = Some(Current {
                        from,
                        req: IoRequest {
                            op: IoOp::Query,
                            file: FileId(0),
                            block: 0,
                            count: 0,
                            buffer: 0,
                            aux: 0,
                            tag: msg.get_u16(20),
                        },
                        seg_len: 0,
                        msg,
                    });
                    self.reply_status(api, IoStatus::Error, 0, FileId(0));
                    return;
                };
                self.current = Some(Current {
                    from,
                    req,
                    seg_len,
                    msg,
                });
                self.phase = Phase::FsWork;
                api.compute(self.cfg.fs_cpu);
            }
            Outcome::Compute => self.dispatch(api),
            Outcome::Delay if matches!(self.phase, Phase::LeaseWait) => {
                // Every blocking lease has now expired on the holders'
                // clocks too (the guard covers the grant flight).
                self.write_disk(api);
            }
            Outcome::Delay => {
                // Disk finished.
                let op = self.current.as_ref().expect("request in progress").req.op;
                match op {
                    IoOp::Read | IoOp::ReadCached => self.serve_read(api),
                    IoOp::Write => self.serve_write(api),
                    IoOp::ReadLarge => {
                        let (file, offset, count) = {
                            let cur = self.current.as_ref().expect("in progress");
                            (
                                cur.req.file,
                                cur.req.block as usize * BLOCK_SIZE,
                                cur.req.count as usize,
                            )
                        };
                        let read: Result<Vec<u8>, StoreError> = self
                            .shared
                            .store
                            .borrow()
                            .read_range(file, offset, count)
                            .map(|d| d.to_vec());
                        match read {
                            Err(e) => self.reply_status(api, Self::store_status(e), 0, file),
                            Ok(data) => {
                                api.mem_write(SRV_OUT, &data).expect("staging fits");
                                self.push_large(api, 0);
                            }
                        }
                    }
                    _ => self.rearm(api),
                }
            }
            Outcome::Move(Ok(n)) => match self.phase {
                Phase::FetchRest { have } => {
                    let count = {
                        let cur = self.current.as_ref().expect("in progress");
                        cur.req.count.min(BLOCK_SIZE as u32)
                    };
                    let have = have + n;
                    if have < count {
                        self.phase = Phase::FetchRest { have };
                        let cur = self.current.as_ref().expect("in progress");
                        let (from, buffer) = (cur.from, cur.req.buffer);
                        api.move_from(from, SRV_IN + have, buffer + have, count - have);
                    } else {
                        self.begin_write_commit(api);
                    }
                }
                Phase::Pushing { pushed } => {
                    let (count, file) = {
                        let cur = self.current.as_ref().expect("in progress");
                        (cur.req.count, cur.req.file)
                    };
                    let pushed = pushed + n;
                    if pushed < count {
                        self.push_large(api, pushed);
                    } else {
                        {
                            let mut st = self.shared.stats.borrow_mut();
                            st.large_reads += 1;
                            st.heat.bump_read(file);
                        }
                        self.reply_status(api, IoStatus::Ok, pushed, file);
                    }
                }
                _ => self.rearm(api),
            },
            Outcome::Move(Err(_)) => {
                if matches!(self.phase, Phase::FetchRest { .. }) {
                    // The write's data pull failed: it will never reach
                    // serve_write, so balance the in-flight marker here.
                    let file = self.current.as_ref().expect("in progress").req.file;
                    self.shared.migration.borrow_mut().note_write_end(file);
                }
                self.shared.stats.borrow_mut().errors += 1;
                self.reply_status(api, IoStatus::Error, 0, FileId(0));
            }
            // An invalidation callback completed (the holder's agent
            // replied) or failed (holder host down after the detection
            // budget): either way the holder is gone — move on. Matched
            // before the worker idle-ack arm: a worker's Send in this
            // phase is a callback, not an idle notification.
            Outcome::Send(res) if matches!(self.phase, Phase::Invalidating) => {
                {
                    let mut st = self.shared.stats.borrow_mut();
                    match res {
                        Ok(_) => st.invalidations += 1,
                        Err(_) => st.invalidation_failures += 1,
                    }
                }
                self.next_invalidation(api);
            }
            // Team worker only: the receptionist acknowledged our idle
            // notification — wait for the next forwarded request.
            Outcome::Send(Ok(_)) if self.notify.is_some() => {
                api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32);
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decay ages the score geometrically and resets the epoch window,
    /// while lifetime totals never shrink.
    #[test]
    fn heat_decay_ages_scores_and_resets_epochs() {
        let mut heat = FileHeat::default();
        let f = FileId(7);
        for _ in 0..6 {
            heat.bump_read(f);
        }
        for _ in 0..2 {
            heat.bump_write(f);
        }
        assert_eq!(heat.of(f), (6, 2));
        assert_eq!(heat.epoch_of(f), (6, 2));
        assert_eq!(heat.score_of(f), 8.0);

        heat.decay(0.5);
        assert_eq!(heat.of(f), (6, 2), "lifetime totals survive decay");
        assert_eq!(heat.epoch_of(f), (0, 0), "epoch window resets");
        assert_eq!(heat.score_of(f), 4.0, "score halves");

        // A quiet file fades geometrically toward zero...
        heat.decay(0.5);
        heat.decay(0.5);
        assert_eq!(heat.score_of(f), 1.0);

        // ...while fresh traffic immediately outweighs old history.
        let g = FileId(9);
        for _ in 0..3 {
            heat.bump_read(g);
        }
        assert!(heat.score_of(g) > heat.score_of(f));
        assert_eq!(heat.total_score(), 4.0);
        assert_eq!(heat.epoch_of(g), (3, 0));
    }

    /// `take` + `graft` carries a row between tables without losing
    /// operations — the heat transfer that rides each migration.
    #[test]
    fn heat_take_and_graft_conserve_history() {
        let mut src = FileHeat::default();
        let mut dst = FileHeat::default();
        let f = FileId(3);
        for _ in 0..5 {
            src.bump_read(f);
        }
        src.decay(0.5); // score 2.5, epochs reset, totals 5 reads

        let row = src.take(f).expect("row exists");
        assert_eq!(src.score_of(f), 0.0, "taken row leaves no residue");
        assert!(src.take(f).is_none(), "second take finds nothing");

        // The destination already served the file once (a pulled copy
        // read would do this): grafting merges, not overwrites.
        dst.bump_read(f);
        dst.graft(row);
        assert_eq!(dst.of(f), (6, 0));
        assert_eq!(dst.score_of(f), 3.5);
        assert_eq!(dst.hottest(), Some((f, 6)));
    }
}
