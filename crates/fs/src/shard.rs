//! Sharded file-service placement.
//!
//! The paper runs **one** file server on one segment; the cluster
//! deployments that followed (shared-root NFS clusters, AutoClient
//! farms) partition the file service across machines so most page reads
//! stay close to the client. This module provides that arrangement on
//! top of the ordinary V IPC — no protocol change, exactly as the paper
//! insists file access needs none:
//!
//! * [`ShardMap`] — a deterministic directory partition: file *names*
//!   hash to one of `N` shards, and each shard's file server
//!   registers under a distinct well-known logical id;
//! * [`ShardedFsClient`] — a scripted client that routes each open or
//!   create to the owning shard by name, **caches the owning server per
//!   file id** from the reply, and directs every later block operation
//!   at the cached owner. Owners can be supplied directly or resolved
//!   mesh-wide with broadcast `GetPid` (the flood crosses every gateway
//!   of a `v_net::MeshConfig` topology);
//! * [`spawn_shard_server`] — places one shard's server process on a
//!   host, registered under the shard's logical id.

use std::collections::HashMap;

use v_kernel::{naming::Scope, Api, Cluster, HostId, Outcome, Pid, Program};

use crate::client::{check_reply, issue_call, FsCall, FsClientReport};
use crate::proto::IoReply;
use crate::server::FileServerConfig;
use crate::store::{BlockStore, FileId};

/// First logical id of the sharded file-service range: shard `i`
/// registers as `SHARD_LOGICAL_BASE + i`. Distinct from the well-known
/// single-server ids in [`v_kernel::naming::logical`].
pub const SHARD_LOGICAL_BASE: u32 = 0x40;

/// A deterministic directory partition over `N` file-service shards.
///
/// Placement is by file *name* (FNV-1a), so every kernel computes the
/// same owner with no metadata service in the loop; the owning server
/// for an already-open file is whatever server answered the open, which
/// the client caches per file id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` servers.
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards >= 1, "a shard map needs at least one shard");
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a file name (FNV-1a over the bytes).
    pub fn shard_of_name(&self, name: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.shards as u64) as usize
    }

    /// The well-known logical id shard `i`'s server registers under.
    pub fn logical_id(&self, shard: usize) -> u32 {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        SHARD_LOGICAL_BASE + shard as u32
    }

    /// The file-id base shard `i`'s [`BlockStore`] should allocate from
    /// ([`BlockStore::with_id_base`]): disjoint [`BlockStore::MAX_FILES`]
    /// wide ranges, so a file id never collides across shards and the
    /// owner cache in [`ShardedFsClient`] stays sound.
    pub fn id_base(&self, shard: usize) -> u16 {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        assert!(self.shards <= 16, "id ranges cover at most 16 shards");
        (shard * BlockStore::MAX_FILES) as u16
    }

    /// A file name that hashes to `shard`: `stem` plus the smallest
    /// numeric suffix that lands there. Deterministic; used by tests and
    /// benches to pin a file's placement.
    pub fn name_for_shard(&self, shard: usize, stem: &str) -> String {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        (0u32..)
            .map(|i| format!("{stem}.{i}"))
            .find(|name| self.shard_of_name(name) == shard)
            .expect("some suffix hashes to every shard")
    }
}

/// Spawns shard `i`'s file server on `host`, registered under the
/// shard's logical id (scope `Both`, so remote kernels resolve it by
/// broadcast) and serving `store`. `cfg.workers` picks the shape: `1`
/// is the sequential server, `>= 2` a pipelined receptionist/worker
/// team ([`crate::team::spawn_file_server`]); clients address the
/// returned pid either way. `cfg.disk_arms` passes through too, so a
/// sharded deployment can give every shard a striped multi-arm disk.
pub fn spawn_shard_server(
    cl: &mut Cluster,
    host: HostId,
    map: &ShardMap,
    shard: usize,
    cfg: FileServerConfig,
    store: BlockStore,
) -> Pid {
    let cfg = FileServerConfig {
        register: Some(map.logical_id(shard)),
        ..cfg
    };
    crate::team::spawn_file_server(cl, host, cfg, store).server
}

/// How a [`ShardedFsClient`] learns the shard servers' pids.
enum Owners {
    /// Pids supplied up front (index = shard).
    Given(Vec<Pid>),
    /// Resolve each shard's logical id with broadcast `GetPid` before
    /// running the script.
    Resolving { resolved: Vec<Pid> },
}

/// A scripted client over a sharded file service.
///
/// Runs the same [`FsCall`] scripts as [`crate::client::FsClient`], but
/// against `N` servers: opens and creates route to the shard owning the
/// name, and the owning server is cached per returned file id so block
/// reads and writes go straight to the right machine — the resolve cost
/// is paid once per file, not per page.
pub struct ShardedFsClient {
    map: ShardMap,
    owners: Owners,
    script: Vec<FsCall>,
    /// Shared results.
    pub report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    step: usize,
    file: FileId,
    /// Owning server per file id, filled from open/create replies.
    owner_of: HashMap<u16, Pid>,
    /// Server the in-flight request went to.
    target: Option<Pid>,
    started: Option<v_sim::SimTime>,
    cache: Option<crate::cache::CacheLayer>,
    pending_hit: Option<Vec<u8>>,
}

impl ShardedFsClient {
    /// A client with the shard servers' pids supplied directly.
    pub fn with_servers(
        servers: Vec<Pid>,
        script: Vec<FsCall>,
        report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    ) -> ShardedFsClient {
        assert!(!servers.is_empty(), "need at least one shard server");
        ShardedFsClient {
            map: ShardMap::new(servers.len()),
            owners: Owners::Given(servers),
            script,
            report,
            step: 0,
            file: FileId(0),
            owner_of: HashMap::new(),
            target: None,
            started: None,
            cache: None,
            pending_hit: None,
        }
    }

    /// A client that first resolves all `shards` logical ids with
    /// broadcast `GetPid` (flooded mesh-wide on a multi-segment
    /// topology), then runs the script.
    pub fn resolving(
        shards: usize,
        script: Vec<FsCall>,
        report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    ) -> ShardedFsClient {
        ShardedFsClient {
            map: ShardMap::new(shards),
            owners: Owners::Resolving {
                resolved: Vec::new(),
            },
            script,
            report,
            step: 0,
            file: FileId(0),
            owner_of: HashMap::new(),
            target: None,
            started: None,
            cache: None,
            pending_hit: None,
        }
    }

    /// Attaches a block cache to the read path. Cached blocks are keyed
    /// by file id, which [`ShardMap::id_base`] keeps disjoint across
    /// shards — one cache serves every shard without collisions.
    pub fn with_cache(mut self, layer: crate::cache::CacheLayer) -> ShardedFsClient {
        self.cache = Some(layer);
        self
    }

    fn servers(&self) -> &[Pid] {
        match &self.owners {
            Owners::Given(s) => s,
            Owners::Resolving { resolved } => resolved,
        }
    }

    /// The server a block operation on the current file should go to:
    /// the cached owner, or — when the cache is cold (an open failed,
    /// or a script skipped its open) — the shard the file id's range
    /// belongs to ([`ShardMap::id_base`] allocates disjoint ranges), so
    /// a bad script degrades to a server-side error, never a panic.
    fn owner_for_current_file(&self) -> Pid {
        self.owner_of.get(&self.file.0).copied().unwrap_or_else(|| {
            let shard = (self.file.0 as usize / BlockStore::MAX_FILES).min(self.map.shards() - 1);
            self.servers()[shard]
        })
    }

    fn issue(&mut self, api: &mut Api<'_>) {
        let started = *self.started.get_or_insert(api.now());
        let Some(call) = self.script.get(self.step).cloned() else {
            let mut rep = self.report.borrow_mut();
            rep.done = true;
            rep.elapsed_ms = api.now().since(started).as_millis_f64();
            drop(rep);
            api.exit();
            return;
        };
        let mut cache_agent = None;
        if let Some(layer) = self.cache.as_mut() {
            if let Some(data) = layer.try_hit(&call, self.file, api.now()) {
                self.pending_hit = Some(data);
                api.compute(layer.hit_cpu());
                return;
            }
            layer.on_issue(&call, self.file);
            cache_agent = Some(layer.agent_aux());
        }
        let owner = match &call {
            FsCall::Open(name) | FsCall::Create(name, _) => {
                self.servers()[self.map.shard_of_name(name)]
            }
            _ => self.owner_for_current_file(),
        };
        self.target = Some(owner);
        issue_call(api, &call, self.file, self.step as u16, owner, cache_agent);
    }

    fn check(&mut self, api: &mut Api<'_>, reply: IoReply) {
        let call = self.script[self.step].clone();
        let mut rep = self.report.borrow_mut();
        if let Some(opened) = check_reply(api, &call, &reply, &mut rep) {
            self.file = opened;
            // Cache the owner: every later block operation on this file
            // goes straight to the server that answered the open.
            self.owner_of
                .insert(opened.0, self.target.expect("request in flight"));
        }
        drop(rep);
        if let Some(layer) = self.cache.as_mut() {
            layer.install_reply(api, &call, self.file, &reply, api.now());
        }
    }

    /// Completes a cache hit exactly like [`crate::client::FsClient`]:
    /// deposit the bytes, synthesize an `Ok` reply, run the shared
    /// check path.
    fn finish_hit(&mut self, api: &mut Api<'_>, data: Vec<u8>) {
        api.mem_write(crate::client::DATA_BUF, &data).expect("fits");
        let reply = IoReply {
            status: crate::proto::IoStatus::Ok,
            file: self.file,
            value: data.len() as u32,
            aux: crate::proto::CACHE_DENY,
            tag: self.step as u16,
        };
        self.check(api, reply);
        self.step += 1;
        self.issue(api);
    }
}

impl Program for ShardedFsClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => match &self.owners {
                Owners::Resolving { .. } => {
                    api.get_pid(self.map.logical_id(0), Scope::Both);
                }
                Owners::Given(_) => self.issue(api),
            },
            Outcome::GetPid(found) => {
                let Owners::Resolving { resolved } = &mut self.owners else {
                    api.exit();
                    return;
                };
                let Some(pid) = found else {
                    self.report.borrow_mut().errors += 1;
                    api.exit();
                    return;
                };
                resolved.push(pid);
                if resolved.len() < self.map.shards() {
                    let next = self.map.logical_id(resolved.len());
                    api.get_pid(next, Scope::Both);
                } else {
                    self.issue(api);
                }
            }
            Outcome::Send(Ok(reply)) => {
                let reply = IoReply::decode(&reply);
                self.check(api, reply);
                self.step += 1;
                self.issue(api);
            }
            Outcome::Send(Err(_)) => {
                self.report.borrow_mut().errors += 1;
                api.exit();
            }
            Outcome::Compute if self.pending_hit.is_some() => {
                let data = self.pending_hit.take().expect("hit in flight");
                self.finish_hit(api, data);
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskModel;
    use crate::server::FileServer;
    use crate::BLOCK_SIZE;
    use v_kernel::{ClusterConfig, CpuSpeed};
    use v_net::MeshConfig;
    use v_sim::SimDuration;

    #[test]
    fn shard_map_is_deterministic_and_covers_all_shards() {
        let map = ShardMap::new(3);
        let mut hit = [false; 3];
        for i in 0..32 {
            let s = map.shard_of_name(&format!("file{i}"));
            assert!(s < 3);
            assert_eq!(s, map.shard_of_name(&format!("file{i}")), "deterministic");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "names spread over every shard");
        for s in 0..3 {
            let name = map.name_for_shard(s, "vol");
            assert_eq!(map.shard_of_name(&name), s);
        }
        assert_eq!(map.logical_id(0), SHARD_LOGICAL_BASE);
    }

    /// A 3-segment line mesh with one shard server per segment and a
    /// client on segment 0; files pinned to each shard round-trip
    /// through open → read → write → read, with owners resolved
    /// mesh-wide by broadcast `GetPid`.
    #[test]
    fn sharded_access_works_across_a_mesh() {
        let map = ShardMap::new(3);
        let mut cfg = ClusterConfig::mesh(MeshConfig::line(3));
        for seg in 0..3 {
            cfg = cfg.with_host_on(CpuSpeed::Mc68000At10MHz, seg); // servers
        }
        cfg = cfg.with_host_on(CpuSpeed::Mc68000At10MHz, 0); // client
        let mut cl = Cluster::new(cfg);

        for shard in 0..3 {
            let mut store = BlockStore::with_id_base(map.id_base(shard));
            let name = map.name_for_shard(shard, "vol");
            store
                .create_with(&name, &vec![0x7E; 4 * BLOCK_SIZE])
                .unwrap();
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                ..FileServerConfig::default()
            };
            spawn_shard_server(&mut cl, HostId(shard), &map, shard, fs_cfg, store);
        }
        cl.run(); // let every server reach its Receive

        let mut script = Vec::new();
        for shard in 0..3 {
            script.push(FsCall::Open(map.name_for_shard(shard, "vol")));
            script.push(FsCall::ReadExpect {
                block: 1,
                count: BLOCK_SIZE as u32,
                expect: 0x7E,
            });
            script.push(FsCall::WriteFill {
                block: 2,
                count: BLOCK_SIZE as u32,
                fill: 0x40 + shard as u8,
            });
            script.push(FsCall::ReadExpect {
                block: 2,
                count: BLOCK_SIZE as u32,
                expect: 0x40 + shard as u8,
            });
        }
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(3),
            "shardclient",
            Box::new(ShardedFsClient::resolving(3, script, rep.clone())),
        );
        cl.run();

        let r = rep.borrow().clone();
        assert!(r.done, "{r:?}");
        assert_eq!(r.errors, 0, "{r:?}");
        assert_eq!(r.integrity_errors, 0, "{r:?}");
        assert_eq!(r.completed, 12);
        assert!(r.elapsed_ms > 0.0);
        // Shards 1 and 2 sit across gateways: traffic crossed the mesh.
        assert!(cl.gateway_stats_total().unwrap().forwarded > 0);
    }

    /// A failed open followed by block operations must degrade to
    /// server-side errors (routed by the file id's shard range), never
    /// panic — matching `FsClient` on the same bad script.
    #[test]
    fn failed_open_degrades_to_errors_not_a_panic() {
        let map = ShardMap::new(2);
        let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let mut servers = Vec::new();
        for shard in 0..2 {
            let store = BlockStore::with_id_base(map.id_base(shard));
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                register: None,
                ..FileServerConfig::default()
            };
            servers.push(cl.spawn(
                HostId(shard),
                "srv",
                Box::new(FileServer::new(fs_cfg, store)),
            ));
        }
        cl.run();
        let script = vec![
            FsCall::Open("missing".into()),
            FsCall::ReadExpect {
                block: 0,
                count: BLOCK_SIZE as u32,
                expect: 0x00,
            },
        ];
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(2),
            "client",
            Box::new(ShardedFsClient::with_servers(servers, script, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        assert!(r.done, "script must run to completion: {r:?}");
        assert_eq!(r.errors, 2, "open NotFound + read NotFound: {r:?}");
        assert_eq!(r.completed, 0);
    }

    /// The owner cache routes block operations without re-resolving:
    /// with the wrong server supplied for a file's shard, reads would
    /// fail — supplying the right map routes every op to the server
    /// that owns the file.
    #[test]
    fn owner_cache_routes_block_ops_to_the_opening_server() {
        let map = ShardMap::new(2);
        let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let mut servers = Vec::new();
        for shard in 0..2 {
            let mut store = BlockStore::with_id_base(map.id_base(shard));
            store
                .create_with(
                    &map.name_for_shard(shard, "f"),
                    &vec![0x11 * (shard as u8 + 1); 2 * BLOCK_SIZE],
                )
                .unwrap();
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                register: None,
                ..FileServerConfig::default()
            };
            servers.push(cl.spawn(
                HostId(shard),
                "srv",
                Box::new(FileServer::new(fs_cfg, store)),
            ));
        }
        cl.run();

        // Interleave the two files: the cache must switch owners per file.
        let script = vec![
            FsCall::Open(map.name_for_shard(0, "f")),
            FsCall::ReadExpect {
                block: 0,
                count: BLOCK_SIZE as u32,
                expect: 0x11,
            },
            FsCall::Open(map.name_for_shard(1, "f")),
            FsCall::ReadExpect {
                block: 0,
                count: BLOCK_SIZE as u32,
                expect: 0x22,
            },
        ];
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(2),
            "client",
            Box::new(ShardedFsClient::with_servers(servers, script, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        assert!(r.done && r.errors == 0 && r.integrity_errors == 0, "{r:?}");
        assert_eq!(r.completed, 4);
    }
}
