//! Sharded file-service placement.
//!
//! The paper runs **one** file server on one segment; the cluster
//! deployments that followed (shared-root NFS clusters, AutoClient
//! farms) partition the file service across machines so most page reads
//! stay close to the client. This module provides that arrangement on
//! top of the ordinary V IPC — no protocol change, exactly as the paper
//! insists file access needs none:
//!
//! * [`ShardMap`] — a deterministic directory partition: file *names*
//!   hash to one of `N` shards, and each shard's file server
//!   registers under a distinct well-known logical id;
//! * [`ShardedFsClient`] — a scripted client that routes each open or
//!   create to the owning shard by name, **caches the owning server per
//!   file id** from the reply, and directs every later block operation
//!   at the cached owner. Owners can be supplied directly or resolved
//!   mesh-wide with broadcast `GetPid` (the flood crosses every gateway
//!   of a `v_net::MeshConfig` topology);
//! * [`spawn_shard_server`] — places one shard's server process on a
//!   host, registered under the shard's logical id.

use std::collections::HashMap;

use v_kernel::{naming::Scope, Api, Cluster, HostId, Outcome, Pid, Program};

use crate::client::{check_reply, issue_call, FsCall, FsClientReport};
use crate::proto::IoReply;
use crate::server::FileServerConfig;
use crate::store::{BlockStore, FileId};

/// First logical id of the sharded file-service range: shard `i`
/// registers as `SHARD_LOGICAL_BASE + i`. Distinct from the well-known
/// single-server ids in [`v_kernel::naming::logical`].
pub const SHARD_LOGICAL_BASE: u32 = 0x40;

/// A deterministic directory partition over `N` file-service shards.
///
/// Placement is by file *name* (FNV-1a), so every kernel computes the
/// same owner with no metadata service in the loop; the owning server
/// for an already-open file is whatever server answered the open, which
/// the client caches per file id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` servers.
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards >= 1, "a shard map needs at least one shard");
        assert!(
            shards <= (u16::MAX as usize) + 1,
            "{shards} shards cannot get disjoint file-id ranges from a 16-bit id space"
        );
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a file name (FNV-1a over the bytes).
    pub fn shard_of_name(&self, name: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.shards as u64) as usize
    }

    /// The well-known logical id shard `i`'s server registers under.
    pub fn logical_id(&self, shard: usize) -> u32 {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        SHARD_LOGICAL_BASE + shard as u32
    }

    /// Width of each shard's disjoint file-id range:
    /// [`BlockStore::MAX_FILES`] for up to 16 shards (bit-identical to
    /// the historical fixed-width layout), narrowed to the largest
    /// power of two that still fits `shards` disjoint ranges into the
    /// 16-bit id space beyond that — the old hard 16-shard ceiling is
    /// gone. [`ShardMap::new`] rejects maps the id space cannot hold at
    /// all.
    pub fn id_range_width(&self) -> usize {
        let fit = ((u16::MAX as usize) + 1) / self.shards;
        debug_assert!(fit >= 1, "ShardMap::new caps shards at 65536");
        let pow2 = 1usize << (usize::BITS - 1 - fit.leading_zeros());
        pow2.min(BlockStore::MAX_FILES)
    }

    /// The file-id base shard `i`'s [`BlockStore`] should allocate from
    /// ([`BlockStore::with_id_range`], width
    /// [`ShardMap::id_range_width`]): disjoint ranges, so a file id
    /// never collides across shards and the owner cache in
    /// [`ShardedFsClient`] stays sound.
    pub fn id_base(&self, shard: usize) -> u16 {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        (shard * self.id_range_width()) as u16
    }

    /// The shard whose id range holds `file` — the inverse of
    /// [`ShardMap::id_base`], clamped into range for ids beyond the
    /// last shard's allocation.
    pub fn shard_of_id(&self, file: FileId) -> usize {
        (file.0 as usize / self.id_range_width()).min(self.shards - 1)
    }

    /// A file name that hashes to `shard`: `stem` plus the smallest
    /// numeric suffix that lands there. Deterministic; used by tests and
    /// benches to pin a file's placement.
    pub fn name_for_shard(&self, shard: usize, stem: &str) -> String {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        (0u32..)
            .map(|i| format!("{stem}.{i}"))
            .find(|name| self.shard_of_name(name) == shard)
            .expect("some suffix hashes to every shard")
    }
}

/// Per-file placement overrides layered over a [`ShardMap`]: the
/// authoritative record of every migration the rebalancer has
/// committed, consulted *before* the name hash / id range when a
/// client routes a request.
///
/// Shared (`Rc<RefCell<…>>`) between the [`crate::rebalance::Rebalancer`]
/// that writes it and the [`ShardedFsClient`]s that read it. A client
/// without the overlay still works — its stale request reaches the old
/// owner, which `Forward`s it to the new one and the reply's `owner`
/// stamp corrects the client's cache — the overlay just skips that
/// extra hop for files it knows about, and is the failover route when
/// the old owner is dead and can no longer forward anything.
#[derive(Debug, Clone, Default)]
pub struct ShardOverlay {
    by_id: HashMap<u16, Pid>,
    by_name: HashMap<String, Pid>,
}

impl ShardOverlay {
    /// An empty overlay (every file still lives where the hash put it).
    pub fn new() -> ShardOverlay {
        ShardOverlay::default()
    }

    /// Records a committed migration: `file` (named `name`) is now
    /// served by `new_owner`. Later moves of the same file overwrite.
    pub fn record_move(&mut self, file: FileId, name: &str, new_owner: Pid) {
        self.by_id.insert(file.0, new_owner);
        self.by_name.insert(name.to_string(), new_owner);
    }

    /// The overriding owner of `file`, if it has migrated.
    pub fn owner_of_id(&self, file: FileId) -> Option<Pid> {
        self.by_id.get(&file.0).copied()
    }

    /// The overriding owner of `name`, if it has migrated.
    pub fn owner_of_name(&self, name: &str) -> Option<Pid> {
        self.by_name.get(name).copied()
    }

    /// Number of files with overridden placement.
    pub fn moves(&self) -> usize {
        self.by_id.len()
    }
}

/// Spawns shard `i`'s file server on `host`, registered under the
/// shard's logical id (scope `Both`, so remote kernels resolve it by
/// broadcast) and serving `store`. `cfg.workers` picks the shape: `1`
/// is the sequential server, `>= 2` a pipelined receptionist/worker
/// team ([`crate::team::spawn_file_server`]); clients address the
/// returned pid either way. `cfg.disk_arms` passes through too, so a
/// sharded deployment can give every shard a striped multi-arm disk.
pub fn spawn_shard_server(
    cl: &mut Cluster,
    host: HostId,
    map: &ShardMap,
    shard: usize,
    cfg: FileServerConfig,
    store: BlockStore,
) -> Pid {
    let cfg = FileServerConfig {
        register: Some(map.logical_id(shard)),
        ..cfg
    };
    crate::team::spawn_file_server(cl, host, cfg, store).server
}

/// How a [`ShardedFsClient`] learns the shard servers' pids.
enum Owners {
    /// Pids supplied up front (index = shard).
    Given(Vec<Pid>),
    /// Resolve each shard's logical id with broadcast `GetPid` before
    /// running the script.
    Resolving { resolved: Vec<Pid> },
}

/// A scripted client over a sharded file service.
///
/// Runs the same [`FsCall`] scripts as [`crate::client::FsClient`], but
/// against `N` servers: opens and creates route to the shard owning the
/// name, and the owning server is cached per returned file id so block
/// reads and writes go straight to the right machine — the resolve cost
/// is paid once per file, not per page.
pub struct ShardedFsClient {
    map: ShardMap,
    owners: Owners,
    script: Vec<FsCall>,
    /// Shared results.
    pub report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    step: usize,
    file: FileId,
    /// Owning server per file id, filled from open/create replies and
    /// self-corrected from the `owner` stamp on forwarded replies.
    owner_of: HashMap<u16, Pid>,
    /// Server the in-flight request went to.
    target: Option<Pid>,
    started: Option<v_sim::SimTime>,
    cache: Option<crate::cache::CacheLayer>,
    pending_hit: Option<Vec<u8>>,
    /// Committed-migration placement overrides, shared with the
    /// rebalancer (see [`ShardOverlay`]).
    overlay: Option<std::rc::Rc<std::cell::RefCell<ShardOverlay>>>,
    /// A `RetryAfter` backoff is in flight for the current step.
    pending_retry: bool,
    /// Retries already burned on the current step.
    retries_this_step: u32,
    /// Consecutive `Send` failures (dead-host failover bookkeeping).
    consecutive_failures: usize,
}

/// First backoff before re-issuing a write refused with
/// [`crate::proto::IoStatus::RetryAfter`] — roughly one block copy of
/// drain time; a healthy migration only freezes a file for a handful
/// of these. The backoff doubles per refusal up to
/// [`RETRY_BACKOFF_CAP_SHIFT`] doublings, so a drain stuck behind the
/// kernel's host-down detection (seconds, not milliseconds, when the
/// copy destination crashes mid-pull) is ridden out rather than
/// declared an error.
const RETRY_BACKOFF: v_sim::SimDuration = v_sim::SimDuration::from_millis(2);
/// Doublings of [`RETRY_BACKOFF`] before the backoff plateaus (2 ms →
/// 64 ms).
const RETRY_BACKOFF_CAP_SHIFT: u32 = 5;
/// Retries per step before the client gives up and counts an error.
/// With the plateaued backoff this spans several seconds — past the
/// worst-case abort latency — so a drain that outlives it is a stuck
/// migration, not back-pressure.
const MAX_RETRIES_PER_STEP: u32 = 64;

impl ShardedFsClient {
    /// A client with the shard servers' pids supplied directly.
    pub fn with_servers(
        servers: Vec<Pid>,
        script: Vec<FsCall>,
        report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    ) -> ShardedFsClient {
        assert!(!servers.is_empty(), "need at least one shard server");
        ShardedFsClient {
            map: ShardMap::new(servers.len()),
            owners: Owners::Given(servers),
            script,
            report,
            step: 0,
            file: FileId(0),
            owner_of: HashMap::new(),
            target: None,
            started: None,
            cache: None,
            pending_hit: None,
            overlay: None,
            pending_retry: false,
            retries_this_step: 0,
            consecutive_failures: 0,
        }
    }

    /// A client that first resolves all `shards` logical ids with
    /// broadcast `GetPid` (flooded mesh-wide on a multi-segment
    /// topology), then runs the script.
    pub fn resolving(
        shards: usize,
        script: Vec<FsCall>,
        report: std::rc::Rc<std::cell::RefCell<FsClientReport>>,
    ) -> ShardedFsClient {
        ShardedFsClient {
            map: ShardMap::new(shards),
            owners: Owners::Resolving {
                resolved: Vec::new(),
            },
            script,
            report,
            step: 0,
            file: FileId(0),
            owner_of: HashMap::new(),
            target: None,
            started: None,
            cache: None,
            pending_hit: None,
            overlay: None,
            pending_retry: false,
            retries_this_step: 0,
            consecutive_failures: 0,
        }
    }

    /// Attaches the shared placement overlay: committed migrations are
    /// routed directly (no forwarding hop), and block operations can
    /// fail over to a file's new owner when the old one is dead.
    pub fn with_overlay(
        mut self,
        overlay: std::rc::Rc<std::cell::RefCell<ShardOverlay>>,
    ) -> ShardedFsClient {
        self.overlay = Some(overlay);
        self
    }

    /// Attaches a block cache to the read path. Cached blocks are keyed
    /// by file id, which [`ShardMap::id_base`] keeps disjoint across
    /// shards — one cache serves every shard without collisions.
    pub fn with_cache(mut self, layer: crate::cache::CacheLayer) -> ShardedFsClient {
        self.cache = Some(layer);
        self
    }

    fn servers(&self) -> &[Pid] {
        match &self.owners {
            Owners::Given(s) => s,
            Owners::Resolving { resolved } => resolved,
        }
    }

    /// The server a block operation on the current file should go to:
    /// the cached owner; else the shared overlay (a committed migration
    /// the rebalancer recorded); else — when both are cold (an open
    /// failed, or a script skipped its open) — the shard the file id's
    /// range belongs to ([`ShardMap::id_base`] allocates disjoint
    /// ranges), so a bad script degrades to a server-side error, never
    /// a panic. Cached-owner-first keeps the non-migrating path
    /// bit-identical to the overlay-less client.
    fn owner_for_current_file(&self) -> Pid {
        self.owner_of
            .get(&self.file.0)
            .copied()
            .or_else(|| {
                self.overlay
                    .as_ref()
                    .and_then(|o| o.borrow().owner_of_id(self.file))
            })
            .unwrap_or_else(|| self.servers()[self.map.shard_of_id(self.file)])
    }

    fn issue(&mut self, api: &mut Api<'_>) {
        let started = *self.started.get_or_insert(api.now());
        let Some(call) = self.script.get(self.step).cloned() else {
            let mut rep = self.report.borrow_mut();
            rep.done = true;
            rep.elapsed_ms = api.now().since(started).as_millis_f64();
            drop(rep);
            api.exit();
            return;
        };
        let mut cache_agent = None;
        if let Some(layer) = self.cache.as_mut() {
            if let Some(data) = layer.try_hit(&call, self.file, api.now()) {
                self.pending_hit = Some(data);
                api.compute(layer.hit_cpu());
                return;
            }
            layer.on_issue(&call, self.file);
            cache_agent = Some(layer.agent_aux());
        }
        let owner = match &call {
            FsCall::Open(name) | FsCall::Create(name, _) => self
                .overlay
                .as_ref()
                .and_then(|o| o.borrow().owner_of_name(name))
                .unwrap_or_else(|| self.servers()[self.map.shard_of_name(name)]),
            _ => self.owner_for_current_file(),
        };
        self.target = Some(owner);
        issue_call(api, &call, self.file, self.step as u16, owner, cache_agent);
    }

    fn check(&mut self, api: &mut Api<'_>, reply: IoReply) {
        let call = self.script[self.step].clone();
        let mut rep = self.report.borrow_mut();
        if let Some(opened) = check_reply(api, &call, &reply, &mut rep) {
            self.file = opened;
            // Cache the owner: every later block operation on this file
            // goes straight to the server that answered the open.
            self.owner_of
                .insert(opened.0, self.target.expect("request in flight"));
        }
        // Owner-cache self-correction: a reply stamped by a different
        // service than we targeted means the request chased a migrated
        // file through a `Forward` — point the cache at the service
        // that actually answered, so the next op skips the hop.
        if let Some(actual) = Pid::from_raw(reply.owner) {
            if self.target.is_some_and(|t| t != actual) {
                rep.stale_owner_forwards += 1;
                let key = match &call {
                    FsCall::Open(_) | FsCall::Create(_, _) => reply.file.0,
                    _ => self.file.0,
                };
                self.owner_of.insert(key, actual);
            }
        }
        drop(rep);
        if let Some(layer) = self.cache.as_mut() {
            layer.install_reply(api, &call, self.file, &reply, api.now());
        }
    }

    /// Completes a cache hit exactly like [`crate::client::FsClient`]:
    /// deposit the bytes, synthesize an `Ok` reply, run the shared
    /// check path.
    fn finish_hit(&mut self, api: &mut Api<'_>, data: Vec<u8>) {
        api.mem_write(crate::client::DATA_BUF, &data).expect("fits");
        let reply = IoReply {
            status: crate::proto::IoStatus::Ok,
            file: self.file,
            value: data.len() as u32,
            aux: crate::proto::CACHE_DENY,
            owner: 0,
            tag: self.step as u16,
        };
        self.check(api, reply);
        self.step += 1;
        self.issue(api);
    }
}

impl Program for ShardedFsClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => match &self.owners {
                Owners::Resolving { .. } => {
                    api.get_pid(self.map.logical_id(0), Scope::Both);
                }
                Owners::Given(_) => self.issue(api),
            },
            Outcome::GetPid(found) => {
                let Owners::Resolving { resolved } = &mut self.owners else {
                    api.exit();
                    return;
                };
                let Some(pid) = found else {
                    self.report.borrow_mut().errors += 1;
                    api.exit();
                    return;
                };
                resolved.push(pid);
                if resolved.len() < self.map.shards() {
                    let next = self.map.logical_id(resolved.len());
                    api.get_pid(next, Scope::Both);
                } else {
                    self.issue(api);
                }
            }
            Outcome::Send(Ok(reply)) => {
                self.consecutive_failures = 0;
                let reply = IoReply::decode(&reply);
                if reply.status == crate::proto::IoStatus::RetryAfter {
                    // The file is draining for migration: back off and
                    // re-issue the same step. Not a failure — the op
                    // still completes exactly once, at whichever owner
                    // holds the file by then.
                    if self.retries_this_step < MAX_RETRIES_PER_STEP {
                        let shift = self.retries_this_step.min(RETRY_BACKOFF_CAP_SHIFT);
                        self.retries_this_step += 1;
                        self.report.borrow_mut().write_retries += 1;
                        self.pending_retry = true;
                        api.delay(RETRY_BACKOFF * (1u64 << shift));
                        return;
                    }
                    // Stuck drain: record the failure and move on.
                    self.report.borrow_mut().errors += 1;
                } else {
                    self.check(api, reply);
                }
                self.retries_this_step = 0;
                self.step += 1;
                self.issue(api);
            }
            Outcome::Send(Err(_)) => {
                // The targeted server's host is down. Drop the stale
                // owner-cache entry and re-issue the same step — the
                // overlay (or the id-range fallback) routes it to the
                // file's current owner. Bounded: after `2 × shards`
                // consecutive dead ends, give up on the script.
                self.consecutive_failures += 1;
                if self.consecutive_failures >= 2 * self.map.shards().max(1) {
                    self.report.borrow_mut().errors += 1;
                    api.exit();
                    return;
                }
                self.report.borrow_mut().owner_failovers += 1;
                self.owner_of.remove(&self.file.0);
                self.issue(api);
            }
            Outcome::Delay if self.pending_retry => {
                self.pending_retry = false;
                self.issue(api);
            }
            Outcome::Compute if self.pending_hit.is_some() => {
                self.consecutive_failures = 0;
                let data = self.pending_hit.take().expect("hit in flight");
                self.finish_hit(api, data);
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskModel;
    use crate::server::FileServer;
    use crate::BLOCK_SIZE;
    use v_kernel::{ClusterConfig, CpuSpeed};
    use v_net::MeshConfig;
    use v_sim::SimDuration;

    #[test]
    fn shard_map_is_deterministic_and_covers_all_shards() {
        let map = ShardMap::new(3);
        let mut hit = [false; 3];
        for i in 0..32 {
            let s = map.shard_of_name(&format!("file{i}"));
            assert!(s < 3);
            assert_eq!(s, map.shard_of_name(&format!("file{i}")), "deterministic");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "names spread over every shard");
        for s in 0..3 {
            let name = map.name_for_shard(s, "vol");
            assert_eq!(map.shard_of_name(&name), s);
        }
        assert_eq!(map.logical_id(0), SHARD_LOGICAL_BASE);
    }

    /// A 3-segment line mesh with one shard server per segment and a
    /// client on segment 0; files pinned to each shard round-trip
    /// through open → read → write → read, with owners resolved
    /// mesh-wide by broadcast `GetPid`.
    #[test]
    fn sharded_access_works_across_a_mesh() {
        let map = ShardMap::new(3);
        let mut cfg = ClusterConfig::mesh(MeshConfig::line(3));
        for seg in 0..3 {
            cfg = cfg.with_host_on(CpuSpeed::Mc68000At10MHz, seg); // servers
        }
        cfg = cfg.with_host_on(CpuSpeed::Mc68000At10MHz, 0); // client
        let mut cl = Cluster::new(cfg);

        for shard in 0..3 {
            let mut store = BlockStore::with_id_base(map.id_base(shard));
            let name = map.name_for_shard(shard, "vol");
            store
                .create_with(&name, &vec![0x7E; 4 * BLOCK_SIZE])
                .unwrap();
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                ..FileServerConfig::default()
            };
            spawn_shard_server(&mut cl, HostId(shard), &map, shard, fs_cfg, store);
        }
        cl.run(); // let every server reach its Receive

        let mut script = Vec::new();
        for shard in 0..3 {
            script.push(FsCall::Open(map.name_for_shard(shard, "vol")));
            script.push(FsCall::ReadExpect {
                block: 1,
                count: BLOCK_SIZE as u32,
                expect: 0x7E,
            });
            script.push(FsCall::WriteFill {
                block: 2,
                count: BLOCK_SIZE as u32,
                fill: 0x40 + shard as u8,
            });
            script.push(FsCall::ReadExpect {
                block: 2,
                count: BLOCK_SIZE as u32,
                expect: 0x40 + shard as u8,
            });
        }
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(3),
            "shardclient",
            Box::new(ShardedFsClient::resolving(3, script, rep.clone())),
        );
        cl.run();

        let r = rep.borrow().clone();
        assert!(r.done, "{r:?}");
        assert_eq!(r.errors, 0, "{r:?}");
        assert_eq!(r.integrity_errors, 0, "{r:?}");
        assert_eq!(r.completed, 12);
        assert!(r.elapsed_ms > 0.0);
        // Shards 1 and 2 sit across gateways: traffic crossed the mesh.
        assert!(cl.gateway_stats_total().unwrap().forwarded > 0);
    }

    /// A failed open followed by block operations must degrade to
    /// server-side errors (routed by the file id's shard range), never
    /// panic — matching `FsClient` on the same bad script.
    #[test]
    fn failed_open_degrades_to_errors_not_a_panic() {
        let map = ShardMap::new(2);
        let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let mut servers = Vec::new();
        for shard in 0..2 {
            let store = BlockStore::with_id_base(map.id_base(shard));
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                register: None,
                ..FileServerConfig::default()
            };
            servers.push(cl.spawn(
                HostId(shard),
                "srv",
                Box::new(FileServer::new(fs_cfg, store)),
            ));
        }
        cl.run();
        let script = vec![
            FsCall::Open("missing".into()),
            FsCall::ReadExpect {
                block: 0,
                count: BLOCK_SIZE as u32,
                expect: 0x00,
            },
        ];
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(2),
            "client",
            Box::new(ShardedFsClient::with_servers(servers, script, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        assert!(r.done, "script must run to completion: {r:?}");
        assert_eq!(r.errors, 2, "open NotFound + read NotFound: {r:?}");
        assert_eq!(r.completed, 0);
    }

    /// The owner cache routes block operations without re-resolving:
    /// with the wrong server supplied for a file's shard, reads would
    /// fail — supplying the right map routes every op to the server
    /// that owns the file.
    #[test]
    fn owner_cache_routes_block_ops_to_the_opening_server() {
        let map = ShardMap::new(2);
        let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let mut servers = Vec::new();
        for shard in 0..2 {
            let mut store = BlockStore::with_id_base(map.id_base(shard));
            store
                .create_with(
                    &map.name_for_shard(shard, "f"),
                    &vec![0x11 * (shard as u8 + 1); 2 * BLOCK_SIZE],
                )
                .unwrap();
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                register: None,
                ..FileServerConfig::default()
            };
            servers.push(cl.spawn(
                HostId(shard),
                "srv",
                Box::new(FileServer::new(fs_cfg, store)),
            ));
        }
        cl.run();

        // Interleave the two files: the cache must switch owners per file.
        let script = vec![
            FsCall::Open(map.name_for_shard(0, "f")),
            FsCall::ReadExpect {
                block: 0,
                count: BLOCK_SIZE as u32,
                expect: 0x11,
            },
            FsCall::Open(map.name_for_shard(1, "f")),
            FsCall::ReadExpect {
                block: 0,
                count: BLOCK_SIZE as u32,
                expect: 0x22,
            },
        ];
        let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(2),
            "client",
            Box::new(ShardedFsClient::with_servers(servers, script, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        assert!(r.done && r.errors == 0 && r.integrity_errors == 0, "{r:?}");
        assert_eq!(r.completed, 4);
    }
}
