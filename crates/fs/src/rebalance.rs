//! Heat-driven shard rebalancing — the *policy* half of live file
//! migration (the mechanism lives in [`crate::migrate`]).
//!
//! A [`Rebalancer`] is a separate V process, not kernel machinery: it
//! periodically samples every shard's decayed [`crate::FileHeat`]
//! (the scores age each round, so only *recent* traffic counts),
//! computes an imbalance score — hottest shard over the mean — and,
//! while the spread exceeds a configurable band, issues explicit
//! move-plans for the hottest files from the hottest shard to the
//! coldest one. Each move is the four-exchange drain → copy → commit
//! protocol of [`crate::migrate`]; a failed copy is aborted cleanly
//! and the file stays put. The rebalancer runs a bounded number of
//! rounds and exits as soon as the shards converge, so a simulation
//! driven to quiescence always terminates.
//!
//! Everything the policy decided is written to a shared
//! [`MigrationLedger`], and every committed move is recorded in the
//! [`ShardOverlay`] the sharded clients route by.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{Api, Cluster, HostId, Outcome, Pid, Program};
use v_sim::SimDuration;

use crate::migrate::{stub, ShardService};
use crate::proto::{IoReply, IoStatus};
use crate::server::FileServerStats;
use crate::shard::ShardOverlay;
use crate::store::FileId;

/// Where `MigrateBegin` replies deposit the migrating file's name in
/// the rebalancer's space.
const REB_NAME_BUF: u32 = 0x0100;
/// Longest file name a move-plan can carry.
const REB_NAME_CAP: u32 = 128;

/// Rebalancing policy knobs.
#[derive(Debug, Clone)]
pub struct RebalancerConfig {
    /// Time between heat samples.
    pub interval: SimDuration,
    /// Sampling rounds before the rebalancer retires (bounds the run;
    /// convergence exits earlier).
    pub rounds: u32,
    /// Heat-score decay factor applied to every shard after each round
    /// (see [`crate::FileHeat::decay`]): `0.5` halves a file's score
    /// each interval it goes untouched.
    pub decay: f64,
    /// Convergence band: the shards are balanced when the hottest
    /// shard's score is within `band × mean` — no moves are planned
    /// and the rebalancer exits.
    pub band: f64,
    /// Most files moved per sampling round (migration bandwidth cap).
    pub max_moves_per_round: usize,
    /// Files with a decayed score below this are never moved — too
    /// cold for the copy to pay for itself.
    pub min_score: f64,
}

impl Default for RebalancerConfig {
    fn default() -> RebalancerConfig {
        RebalancerConfig {
            interval: SimDuration::from_millis(50),
            rounds: 8,
            decay: 0.5,
            band: 1.25,
            max_moves_per_round: 2,
            min_score: 4.0,
        }
    }
}

/// The rebalancer's view of one shard service.
#[derive(Clone)]
pub struct ShardHandle {
    /// The service clients address (`Begin`/`Commit`/`Abort` go here).
    pub server: Pid,
    /// The shard's destination-side migration agent (`Pull` goes here).
    pub agent: Pid,
    /// The shard's shared counters — sampled for heat, adjusted when a
    /// committed move carries a file's heat to its new shard.
    pub stats: Rc<RefCell<FileServerStats>>,
}

impl From<&ShardService> for ShardHandle {
    fn from(s: &ShardService) -> ShardHandle {
        ShardHandle {
            server: s.server,
            agent: s.agent,
            stats: s.stats.clone(),
        }
    }
}

/// One committed move.
#[derive(Debug, Clone)]
pub struct MoveRecord {
    /// The file that moved.
    pub file: FileId,
    /// Its name.
    pub name: String,
    /// Shard index it left.
    pub from_shard: usize,
    /// Shard index it now lives on.
    pub to_shard: usize,
    /// Decayed heat score that triggered the move.
    pub score: f64,
}

/// Everything the rebalancer did, shared for experiments to read.
#[derive(Debug, Clone, Default)]
pub struct MigrationLedger {
    /// Moves the policy planned.
    pub planned: u64,
    /// Moves that committed (blocks copied, ownership flipped).
    pub completed: u64,
    /// Moves aborted after a failure (file stayed at the old owner).
    pub aborted: u64,
    /// Moves skipped because the owner refused the drain (writes in
    /// flight) — retried on a later round if the file stays hot.
    pub skipped_busy: u64,
    /// Sampling rounds run.
    pub rounds: u64,
    /// Round after which the shards were inside the band, if reached.
    pub converged_after: Option<u64>,
    /// Every committed move, in order.
    pub moves: Vec<MoveRecord>,
}

struct PlannedMove {
    file: FileId,
    src: usize,
    dst: usize,
    score: f64,
    /// Filled from the `Begin` reply.
    name: String,
    len: u32,
}

enum Phase {
    Sleeping,
    Begin,
    Pull,
    Commit,
    Abort,
}

/// The policy process. See the module docs for the loop it runs.
pub struct Rebalancer {
    cfg: RebalancerConfig,
    shards: Vec<ShardHandle>,
    overlay: Rc<RefCell<ShardOverlay>>,
    /// Shared run record.
    pub ledger: Rc<RefCell<MigrationLedger>>,
    round: u32,
    plan: Vec<PlannedMove>,
    plan_idx: usize,
    phase: Phase,
}

/// Spawns a [`Rebalancer`] over `shards` on `host`; committed moves
/// are recorded in `overlay` (share it with the clients). Returns the
/// shared ledger.
pub fn spawn_rebalancer(
    cl: &mut Cluster,
    host: HostId,
    cfg: RebalancerConfig,
    shards: Vec<ShardHandle>,
    overlay: Rc<RefCell<ShardOverlay>>,
) -> Rc<RefCell<MigrationLedger>> {
    let ledger: Rc<RefCell<MigrationLedger>> = Default::default();
    let reb = Rebalancer {
        cfg,
        shards,
        overlay,
        ledger: ledger.clone(),
        round: 0,
        plan: Vec::new(),
        plan_idx: 0,
        phase: Phase::Sleeping,
    };
    cl.spawn(host, "rebalancer", Box::new(reb));
    ledger
}

impl Rebalancer {
    /// Per-shard decayed load scores.
    fn scores(&self) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| s.stats.borrow().heat.total_score())
            .collect()
    }

    /// Ends a sampling round: age every shard's heat, then sleep into
    /// the next round or retire.
    fn next_round(&mut self, api: &mut Api<'_>) {
        for s in &self.shards {
            s.stats.borrow_mut().heat.decay(self.cfg.decay);
        }
        self.round += 1;
        if self.round >= self.cfg.rounds {
            api.exit();
            return;
        }
        self.phase = Phase::Sleeping;
        api.delay(self.cfg.interval);
    }

    /// Samples heat, checks the band, and either exits (converged),
    /// sleeps (nothing worth moving), or starts executing a move-plan.
    fn sample(&mut self, api: &mut Api<'_>) {
        self.ledger.borrow_mut().rounds += 1;
        let scores = self.scores();
        let total: f64 = scores.iter().sum();
        let mean = total / scores.len() as f64;
        let (src, &max) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one shard");
        if total > 0.0 && max <= self.cfg.band * mean {
            // Inside the band: the shards have converged. Retire — a
            // later imbalance would need a fresh rebalancer, and a
            // bounded process keeps run-to-quiescence terminating.
            let round = self.round as u64;
            let mut led = self.ledger.borrow_mut();
            led.converged_after.get_or_insert(round);
            drop(led);
            api.exit();
            return;
        }
        let (dst, &min) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one shard");
        self.plan.clear();
        self.plan_idx = 0;
        if total > 0.0 && src != dst {
            // Hottest files first; move one while it narrows the gap.
            let mut candidates: Vec<(FileId, f64)> = self.shards[src]
                .stats
                .borrow()
                .heat
                .entries()
                .iter()
                .map(|e| (e.file, e.score))
                .collect();
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
            let (mut src_score, mut dst_score) = (max, min);
            for (file, score) in candidates {
                if self.plan.len() >= self.cfg.max_moves_per_round {
                    break;
                }
                if score < self.cfg.min_score {
                    break;
                }
                // Moving the file must narrow the spread, not flip it.
                if score >= src_score - dst_score {
                    continue;
                }
                src_score -= score;
                dst_score += score;
                self.plan.push(PlannedMove {
                    file,
                    src,
                    dst,
                    score,
                    name: String::new(),
                    len: 0,
                });
            }
        }
        if self.plan.is_empty() {
            self.next_round(api);
            return;
        }
        self.ledger.borrow_mut().planned += self.plan.len() as u64;
        self.issue_begin(api);
    }

    fn issue_begin(&mut self, api: &mut Api<'_>) {
        let mv = &self.plan[self.plan_idx];
        self.phase = Phase::Begin;
        api.send(
            stub::begin(mv.file, REB_NAME_BUF, REB_NAME_CAP, self.plan_idx as u16),
            self.shards[mv.src].server,
        );
    }

    /// Advances to the plan's next move, or ends the round.
    fn next_move(&mut self, api: &mut Api<'_>) {
        self.plan_idx += 1;
        if self.plan_idx < self.plan.len() {
            self.issue_begin(api);
        } else {
            self.next_round(api);
        }
    }

    /// A committed move: flip the overlay, carry the file's heat to
    /// its new shard, write the record.
    fn complete_move(&mut self) {
        let mv = &self.plan[self.plan_idx];
        let dst_pid = self.shards[mv.dst].server;
        self.overlay
            .borrow_mut()
            .record_move(mv.file, &mv.name, dst_pid);
        let row = self.shards[mv.src].stats.borrow_mut().heat.take(mv.file);
        if let Some(row) = row {
            self.shards[mv.dst].stats.borrow_mut().heat.graft(row);
        }
        let mut led = self.ledger.borrow_mut();
        led.completed += 1;
        led.moves.push(MoveRecord {
            file: mv.file,
            name: mv.name.clone(),
            from_shard: mv.src,
            to_shard: mv.dst,
            score: mv.score,
        });
    }

    fn issue_abort(&mut self, api: &mut Api<'_>) {
        let mv = &self.plan[self.plan_idx];
        self.phase = Phase::Abort;
        api.send(
            stub::abort(mv.file, self.plan_idx as u16),
            self.shards[mv.src].server,
        );
    }
}

impl Program for Rebalancer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                self.phase = Phase::Sleeping;
                api.delay(self.cfg.interval);
            }
            Outcome::Delay if matches!(self.phase, Phase::Sleeping) => self.sample(api),
            Outcome::Send(res) => match self.phase {
                Phase::Begin => match res.map(|m| IoReply::decode(&m)) {
                    Ok(reply) if reply.status == IoStatus::Ok => {
                        // Drain set; name + length are in. Ask the
                        // destination's agent to pull the blocks.
                        let name_len = reply.aux.min(REB_NAME_CAP);
                        let name_bytes = api
                            .mem_read(REB_NAME_BUF, name_len as usize)
                            .expect("name buffer");
                        let mv = &mut self.plan[self.plan_idx];
                        mv.name = String::from_utf8_lossy(&name_bytes).into_owned();
                        mv.len = reply.value;
                        let (file, len, src, dst) = (mv.file, mv.len, mv.src, mv.dst);
                        let src_pid = self.shards[src].server.raw();
                        self.phase = Phase::Pull;
                        api.send(
                            stub::pull(
                                file,
                                len,
                                src_pid,
                                REB_NAME_BUF,
                                name_len,
                                self.plan_idx as u16,
                            ),
                            self.shards[dst].agent,
                        );
                    }
                    Ok(reply) if reply.status == IoStatus::RetryAfter => {
                        // Writes in flight at the owner: no drain was
                        // set. Skip; a later round retries if the file
                        // stays hot.
                        self.ledger.borrow_mut().skipped_busy += 1;
                        self.next_move(api);
                    }
                    Ok(_) | Err(_) => {
                        // Owner refused or is dead; nothing was set up.
                        self.ledger.borrow_mut().aborted += 1;
                        self.next_move(api);
                    }
                },
                Phase::Pull => match res.map(|m| IoReply::decode(&m)) {
                    Ok(reply) if reply.status == IoStatus::Ok => {
                        // Copy complete at the destination: flip.
                        let mv = &self.plan[self.plan_idx];
                        let (file, src, dst) = (mv.file, mv.src, mv.dst);
                        let dst_pid = self.shards[dst].server.raw();
                        self.phase = Phase::Commit;
                        api.send(
                            stub::commit(file, dst_pid, self.plan_idx as u16),
                            self.shards[src].server,
                        );
                    }
                    // Copy failed (agent reported, or its host died):
                    // lift the drain, the file stays at the old owner.
                    Ok(_) | Err(_) => self.issue_abort(api),
                },
                Phase::Commit => {
                    match res.map(|m| IoReply::decode(&m)) {
                        Ok(reply) if reply.status == IoStatus::Ok => self.complete_move(),
                        // The old owner died with the commit on the
                        // wire. The destination holds a complete copy,
                        // so the move stands: record it and let the
                        // overlay carry clients to the new owner.
                        Err(_) => self.complete_move(),
                        Ok(_) => {
                            self.ledger.borrow_mut().aborted += 1;
                        }
                    }
                    self.next_move(api);
                }
                Phase::Abort => {
                    // Whether the owner acknowledged or is dead, the
                    // move is over and the file did not travel.
                    self.ledger.borrow_mut().aborted += 1;
                    self.next_move(api);
                }
                Phase::Sleeping => api.exit(),
            },
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{FsCall, FsClientReport};
    use crate::disk::DiskModel;
    use crate::migrate::spawn_shard_service;
    use crate::server::FileServerConfig;
    use crate::shard::{ShardMap, ShardedFsClient};
    use crate::store::BlockStore;
    use crate::BLOCK_SIZE;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    /// Two hot files pinned to shard 0, nothing on shard 1, one client
    /// streaming each file: one sampling round migrates one of them
    /// live, mid-stream. Neither client fails, duplicates, or corrupts
    /// an operation; the old owner forwards the mover's stale requests
    /// and the forward/self-correction counters reconcile exactly.
    #[test]
    fn live_migration_rebalances_without_losing_a_single_op() {
        let map = ShardMap::new(2);
        let cfg = ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);

        let hot_a = map.name_for_shard(0, "hotA");
        let hot_b = map.name_for_shard(0, "hotB");
        let mut services = Vec::new();
        for shard in 0..2 {
            let mut store = BlockStore::with_id_base(map.id_base(shard));
            if shard == 0 {
                store
                    .create_with(&hot_a, &vec![0xA1; 4 * BLOCK_SIZE])
                    .unwrap();
                store
                    .create_with(&hot_b, &vec![0xB2; 4 * BLOCK_SIZE])
                    .unwrap();
            }
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(v_sim::SimDuration::from_millis(1)),
                register: None,
                ..FileServerConfig::default()
            };
            services.push(spawn_shard_service(
                &mut cl,
                HostId(shard),
                &map,
                shard,
                fs_cfg,
                store,
            ));
        }
        cl.run(); // services reach their Receive

        // Each client opens its file once, then streams reads long past
        // the sampling interval — so whichever file migrates, its
        // client's cached owner goes stale mid-stream and the next read
        // must be forwarded. The closing write+read proves the moved
        // file still takes writes and kept its bytes through the copy.
        let script_for = |expect: u8, fill: u8, name: &str| {
            let mut script = vec![FsCall::Open(name.to_string())];
            for _ in 0..60 {
                script.push(FsCall::ReadExpect {
                    block: 1,
                    count: BLOCK_SIZE as u32,
                    expect,
                });
            }
            script.push(FsCall::WriteFill {
                block: 2,
                count: BLOCK_SIZE as u32,
                fill,
            });
            script.push(FsCall::ReadExpect {
                block: 2,
                count: BLOCK_SIZE as u32,
                expect: fill,
            });
            script
        };
        let overlay: Rc<RefCell<ShardOverlay>> = Default::default();
        let servers: Vec<_> = services.iter().map(|s| s.server).collect();
        let mut reports = Vec::new();
        let mut script_len = 0;
        for (i, (expect, fill, name)) in [(0xA1, 0x55, &hot_a), (0xB2, 0x66, &hot_b)]
            .into_iter()
            .enumerate()
        {
            let script = script_for(expect, fill, name);
            script_len = script.len() as u64;
            let rep = Rc::new(RefCell::new(FsClientReport::default()));
            cl.spawn(
                HostId(2 + i),
                "client",
                Box::new(
                    ShardedFsClient::with_servers(servers.clone(), script, rep.clone())
                        .with_overlay(overlay.clone()),
                ),
            );
            reports.push(rep);
        }
        let ledger = spawn_rebalancer(
            &mut cl,
            HostId(2),
            RebalancerConfig {
                interval: SimDuration::from_millis(30),
                rounds: 1,
                min_score: 1.0,
                ..RebalancerConfig::default()
            },
            services.iter().map(ShardHandle::from).collect(),
            overlay.clone(),
        );
        cl.run();

        let mut stale_total = 0;
        for rep in &reports {
            let r = rep.borrow().clone();
            assert!(r.done, "{r:?}");
            assert_eq!(r.errors, 0, "no op may fail across the move: {r:?}");
            assert_eq!(r.integrity_errors, 0, "no op may corrupt data: {r:?}");
            assert_eq!(r.completed, script_len, "every op exactly once: {r:?}");
            stale_total += r.stale_owner_forwards;
        }

        let led = ledger.borrow();
        assert_eq!(led.rounds, 1);
        assert_eq!(led.planned, 1, "{led:?}");
        assert_eq!(led.completed, 1, "{led:?}");
        assert_eq!(led.aborted, 0, "{led:?}");
        assert_eq!(led.moves[0].from_shard, 0);
        assert_eq!(led.moves[0].to_shard, 1);
        assert_eq!(overlay.borrow().moves(), 1);

        let (s0, s1) = (services[0].stats.borrow(), services[1].stats.borrow());
        assert_eq!(s0.migrated_out, 1, "{s0:?}");
        assert_eq!(s1.migrated_in, 1, "{s1:?}");
        // Reconciliation: every request the old owner forwarded came
        // back to a client stamped with the new owner, and was counted
        // as exactly one self-correction. No chains with a single
        // move, so the ledgers match exactly.
        assert!(stale_total >= 1, "a live forward happened: {s0:?}");
        assert_eq!(
            s0.moved_forwards + s1.moved_forwards,
            stale_total,
            "forward/correction ledgers reconcile: {s0:?} {s1:?}"
        );
        // The moved file's heat travelled with it.
        let moved = led.moves[0].file;
        assert_eq!(s0.heat.score_of(moved), 0.0);
        assert!(s1.heat.of(moved).0 > 0);
    }

    /// With traffic already uniform, the rebalancer observes the
    /// shards inside its band, plans nothing, moves nothing, and
    /// retires on its first round.
    #[test]
    fn balanced_shards_converge_with_zero_moves() {
        let map = ShardMap::new(2);
        let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let mut services = Vec::new();
        let names: Vec<String> = (0..2).map(|s| map.name_for_shard(s, "f")).collect();
        for (shard, name) in names.iter().enumerate() {
            let mut store = BlockStore::with_id_base(map.id_base(shard));
            store
                .create_with(name, &vec![0x33; 2 * BLOCK_SIZE])
                .unwrap();
            let fs_cfg = FileServerConfig {
                disk: DiskModel::fixed(v_sim::SimDuration::from_millis(1)),
                register: None,
                ..FileServerConfig::default()
            };
            services.push(spawn_shard_service(
                &mut cl,
                HostId(shard),
                &map,
                shard,
                fs_cfg,
                store,
            ));
        }
        cl.run();

        let mut script = Vec::new();
        for _ in 0..10 {
            for name in &names {
                script.push(FsCall::Open(name.clone()));
                script.push(FsCall::ReadExpect {
                    block: 0,
                    count: BLOCK_SIZE as u32,
                    expect: 0x33,
                });
            }
        }
        let overlay: Rc<RefCell<ShardOverlay>> = Default::default();
        let rep = Rc::new(RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(2),
            "client",
            Box::new(
                ShardedFsClient::with_servers(
                    services.iter().map(|s| s.server).collect(),
                    script,
                    rep.clone(),
                )
                .with_overlay(overlay.clone()),
            ),
        );
        let ledger = spawn_rebalancer(
            &mut cl,
            HostId(2),
            RebalancerConfig {
                interval: SimDuration::from_millis(30),
                rounds: 4,
                band: 1.5,
                ..RebalancerConfig::default()
            },
            services.iter().map(ShardHandle::from).collect(),
            overlay.clone(),
        );
        cl.run();

        let r = rep.borrow().clone();
        assert!(r.done && r.errors == 0 && r.integrity_errors == 0, "{r:?}");
        let led = ledger.borrow();
        assert_eq!(led.completed, 0, "{led:?}");
        assert_eq!(led.planned, 0, "{led:?}");
        assert!(led.converged_after.is_some(), "{led:?}");
        assert_eq!(overlay.borrow().moves(), 0);
        assert_eq!(r.stale_owner_forwards, 0, "{r:?}");
    }
}
