//! A replicated read-only root file service with client failover.
//!
//! The paper's diskless workstations hang off **one** file server; when
//! it dies, every workstation's root is gone. The deployments that
//! followed replicated the read-only portion of the root (boot images,
//! system binaries — the bulk of a diskless workstation's traffic, per
//! §6.3's program-loading analysis) across several machines, because
//! read-only state is trivially replicable: no coherence protocol, just
//! identical copies.
//!
//! This module provides that arrangement over the ordinary V IPC:
//!
//! * [`spawn_replica_group`] — `N` file servers on distinct hosts, each
//!   serving a *clone* of the same [`BlockStore`] with
//!   [`FileServerConfig::read_only`] set, all registered under one
//!   logical service id. Because the stores are clones, every replica
//!   allocates identical [`FileId`]s — a file id obtained from one
//!   replica is valid at every other, so failover never invalidates an
//!   open file.
//! * [`ReplicatedFsClient`] — a scripted client that directs every
//!   operation at its current replica and **fails over** when the
//!   kernel reports the replica's host down
//!   (`KernelError::HostDown`, surfaced as `Outcome::Send(Err(_))`):
//!   it advances to the next replica and re-issues the *same* script
//!   step. Read-only semantics make the retry safe — a re-issued read
//!   is idempotent by construction.
//!
//! The failover cost is visible in the client's [`ReplicaReport`]: one
//! read absorbs the kernel's retransmission budget (the failure
//! detector) before `HostDown` arrives, and every read after that is
//! served at normal latency by the next replica. The `v-bench failover`
//! experiment measures exactly that spike.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{Api, Cluster, HostId, Outcome, Pid, Program};
use v_sim::SimTime;

use crate::client::{check_reply, issue_call, FsCall, FsClientReport};
use crate::proto::IoReply;
use crate::server::FileServerConfig;
use crate::store::{BlockStore, FileId};

/// Spawns one read-only replica of `store` per host in `hosts`, each
/// registered under `cfg.register` (the same logical service id for the
/// whole group — resolve it with `GetPid` and any live replica may
/// answer). Returns the replicas' pids in `hosts` order.
///
/// Every replica serves `store.clone()`: identical directories,
/// identical file ids, identical data. `cfg.workers` picks each
/// replica's shape exactly as for a single server ([`crate::team`]).
/// [`FileServerConfig::read_only`] is forced on — a replica that
/// accepted writes would silently diverge from its peers.
pub fn spawn_replica_group(
    cl: &mut Cluster,
    hosts: &[HostId],
    cfg: &FileServerConfig,
    store: &BlockStore,
) -> Vec<Pid> {
    hosts
        .iter()
        .map(|&host| spawn_replica(cl, host, cfg, store))
        .collect()
}

/// Spawns a single read-only replica of `store` on `host` — the unit
/// [`spawn_replica_group`] is built from, also used to re-create a
/// replica on a restarted host (the kernel forgets everything on a
/// crash; re-registration is the service's job). Everything in `cfg`
/// except `read_only` passes through, so replicas can run worker teams
/// (`workers`) over striped disks (`disk_arms`) like any other server.
pub fn spawn_replica(
    cl: &mut Cluster,
    host: HostId,
    cfg: &FileServerConfig,
    store: &BlockStore,
) -> Pid {
    let cfg = FileServerConfig {
        read_only: true,
        ..cfg.clone()
    };
    crate::team::spawn_file_server(cl, host, cfg, store.clone()).server
}

/// What a [`ReplicatedFsClient`] run produced, over and above the plain
/// script results.
#[derive(Debug, Clone, Default)]
pub struct ReplicaReport {
    /// The ordinary script results (completions, protocol errors,
    /// integrity checks, elapsed time).
    pub fs: FsClientReport,
    /// Times the client switched replicas after a `HostDown`.
    pub failovers: u64,
    /// True when every replica in turn failed and the client abandoned
    /// the script (`fs.done` stays false).
    pub gave_up: bool,
    /// Per-operation `(completed_at_ms, latency_ms)` pairs in script
    /// order, on the simulation clock — the raw series the failover
    /// benchmark classifies into before / during / after the crash.
    pub op_ms: Vec<(f64, f64)>,
}

/// A scripted client over a replica group, failing over on host death.
///
/// Runs the same [`FsCall`] scripts as [`crate::client::FsClient`]
/// against a fixed list of replicas. All traffic goes to the *current*
/// replica; when a send fails (`HostDown` after the kernel's
/// retransmission budget, or any other kernel error), the client counts
/// a failover, advances to the next replica round-robin, and re-issues
/// the same step — file ids stay valid because replica stores are
/// identical clones. After `2 × replicas` consecutive failed attempts
/// (every replica tried twice with no answer) it gives up rather than
/// cycle forever.
pub struct ReplicatedFsClient {
    replicas: Vec<Pid>,
    current: usize,
    script: Vec<FsCall>,
    /// Shared results.
    pub report: Rc<RefCell<ReplicaReport>>,
    step: usize,
    file: FileId,
    started: Option<SimTime>,
    issued_at: SimTime,
    consecutive_failures: usize,
    cache: Option<crate::cache::CacheLayer>,
    pending_hit: Option<Vec<u8>>,
}

impl ReplicatedFsClient {
    /// A client over `replicas` (tried in order, starting at the first).
    pub fn new(
        replicas: Vec<Pid>,
        script: Vec<FsCall>,
        report: Rc<RefCell<ReplicaReport>>,
    ) -> ReplicatedFsClient {
        assert!(!replicas.is_empty(), "need at least one replica");
        ReplicatedFsClient {
            replicas,
            current: 0,
            script,
            report,
            step: 0,
            file: FileId(0),
            started: None,
            issued_at: SimTime::ZERO,
            consecutive_failures: 0,
            cache: None,
            pending_hit: None,
        }
    }

    /// Attaches a block cache to the read path. Replica stores are
    /// clones, so file ids (the cache key) agree across replicas — a
    /// cache warmed against one replica stays valid after failover.
    pub fn with_cache(mut self, layer: crate::cache::CacheLayer) -> ReplicatedFsClient {
        self.cache = Some(layer);
        self
    }

    /// Issues the current step. `fresh` is false on a failover retry:
    /// the step's recorded latency then spans from its *first* issue,
    /// so the failure-detection wait shows up in the op series as the
    /// client actually experienced it.
    fn issue(&mut self, api: &mut Api<'_>, fresh: bool) {
        let started = *self.started.get_or_insert(api.now());
        let Some(call) = self.script.get(self.step).cloned() else {
            let mut rep = self.report.borrow_mut();
            rep.fs.done = true;
            rep.fs.elapsed_ms = api.now().since(started).as_millis_f64();
            drop(rep);
            api.exit();
            return;
        };
        if fresh {
            self.issued_at = api.now();
        }
        let mut cache_agent = None;
        if let Some(layer) = self.cache.as_mut() {
            if let Some(data) = layer.try_hit(&call, self.file, api.now()) {
                // A hit never touches the wire: no failover, no
                // detection budget — served even while replicas die.
                self.pending_hit = Some(data);
                api.compute(layer.hit_cpu());
                return;
            }
            layer.on_issue(&call, self.file);
            cache_agent = Some(layer.agent_aux());
        }
        issue_call(
            api,
            &call,
            self.file,
            self.step as u16,
            self.replicas[self.current],
            cache_agent,
        );
    }

    fn check(&mut self, api: &mut Api<'_>, reply: IoReply) {
        let call = self.script[self.step].clone();
        let mut rep = self.report.borrow_mut();
        let latency = api.now().since(self.issued_at).as_millis_f64();
        rep.op_ms.push((api.now().as_millis_f64(), latency));
        if let Some(opened) = check_reply(api, &call, &reply, &mut rep.fs) {
            self.file = opened;
        }
        drop(rep);
        if let Some(layer) = self.cache.as_mut() {
            layer.install_reply(api, &call, self.file, &reply, api.now());
        }
    }

    /// Completes a cache hit through the shared check path (the hit's
    /// latency — the per-hit CPU charge — lands in `op_ms` like any
    /// other op).
    fn finish_hit(&mut self, api: &mut Api<'_>, data: Vec<u8>) {
        api.mem_write(crate::client::DATA_BUF, &data).expect("fits");
        let reply = IoReply {
            status: crate::proto::IoStatus::Ok,
            file: self.file,
            value: data.len() as u32,
            aux: crate::proto::CACHE_DENY,
            owner: 0,
            tag: self.step as u16,
        };
        self.check(api, reply);
        self.step += 1;
        self.issue(api, true);
    }
}

impl Program for ReplicatedFsClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => self.issue(api, true),
            Outcome::Send(Ok(reply)) => {
                self.consecutive_failures = 0;
                let reply = IoReply::decode(&reply);
                self.check(api, reply);
                self.step += 1;
                self.issue(api, true);
            }
            Outcome::Send(Err(_)) => {
                // The current replica's host is presumed down. Advance
                // and re-issue the same step: reads against identical
                // read-only stores are idempotent, so the retry is safe.
                self.consecutive_failures += 1;
                let mut rep = self.report.borrow_mut();
                rep.failovers += 1;
                if self.consecutive_failures >= 2 * self.replicas.len() {
                    rep.gave_up = true;
                    rep.fs.errors += 1;
                    drop(rep);
                    api.exit();
                    return;
                }
                drop(rep);
                self.current = (self.current + 1) % self.replicas.len();
                self.issue(api, false);
            }
            Outcome::Compute if self.pending_hit.is_some() => {
                self.consecutive_failures = 0;
                let data = self.pending_hit.take().expect("hit in flight");
                self.finish_hit(api, data);
            }
            _ => api.exit(),
        }
    }
}
