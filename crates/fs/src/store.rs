//! The server's block store and flat directory.

use std::collections::HashMap;

use crate::BLOCK_SIZE;

/// A file identifier, as carried in I/O protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u16);

/// Errors from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// No such file id / name.
    NotFound,
    /// A file with that name already exists.
    Exists,
    /// Block index beyond the end of the file.
    BadBlock,
}

#[derive(Debug, Clone)]
struct File {
    name: String,
    data: Vec<u8>,
}

/// An in-memory block store with a flat name directory — the file
/// server's filesystem state (the paper's servers expose UNIX files; the
/// protocol only ever addresses (file id, block index) pairs).
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    files: Vec<File>,
    by_name: HashMap<String, FileId>,
    /// All ids this store hands out are offset by this base, so stores
    /// on different servers (file-service shards) never allocate the
    /// same id — a file id identifies its owner cluster-wide.
    id_base: u16,
}

impl BlockStore {
    /// Largest number of files one store may hold. Ids are allocated
    /// from disjoint `MAX_FILES`-wide ranges per store, so in a sharded
    /// deployment a file id identifies its owning store cluster-wide —
    /// [`BlockStore::create`] enforces the range.
    pub const MAX_FILES: usize = 4096;

    /// Creates an empty store.
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    /// Creates an empty store whose file ids start at `base` (sharded
    /// deployments give each shard a disjoint range; see
    /// [`BlockStore::MAX_FILES`]). `base` must be range-aligned.
    pub fn with_id_base(base: u16) -> BlockStore {
        assert!(
            base as usize % Self::MAX_FILES == 0,
            "id base {base:#06x} must be a multiple of {} so shard id ranges stay disjoint",
            Self::MAX_FILES
        );
        BlockStore {
            id_base: base,
            ..BlockStore::default()
        }
    }

    /// Creates a file with `size` zeroed bytes.
    ///
    /// # Panics
    ///
    /// Panics when the store's [`BlockStore::MAX_FILES`] id range is
    /// exhausted — overrunning it would alias another shard's ids.
    pub fn create(&mut self, name: &str, size: usize) -> Result<FileId, StoreError> {
        if self.by_name.contains_key(name) {
            return Err(StoreError::Exists);
        }
        assert!(
            self.files.len() < Self::MAX_FILES,
            "store full: {} files — ids per store are capped so shard id ranges stay disjoint",
            Self::MAX_FILES
        );
        let id = FileId(self.id_base + self.files.len() as u16);
        self.files.push(File {
            name: name.to_string(),
            data: vec![0; size],
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Creates a file with the given contents.
    pub fn create_with(&mut self, name: &str, data: &[u8]) -> Result<FileId, StoreError> {
        let id = self.create(name, data.len())?;
        self.files[(id.0 - self.id_base) as usize]
            .data
            .copy_from_slice(data);
        Ok(id)
    }

    /// Looks a file up by name.
    pub fn open(&self, name: &str) -> Result<FileId, StoreError> {
        self.by_name.get(name).copied().ok_or(StoreError::NotFound)
    }

    /// File length in bytes.
    pub fn len(&self, id: FileId) -> Result<usize, StoreError> {
        self.file(id).map(|f| f.data.len())
    }

    /// True if the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// A file's name.
    pub fn name(&self, id: FileId) -> Result<&str, StoreError> {
        self.file(id).map(|f| f.name.as_str())
    }

    fn index(&self, id: FileId) -> Result<usize, StoreError> {
        id.0.checked_sub(self.id_base)
            .map(usize::from)
            .ok_or(StoreError::NotFound)
    }

    fn file(&self, id: FileId) -> Result<&File, StoreError> {
        self.files.get(self.index(id)?).ok_or(StoreError::NotFound)
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut File, StoreError> {
        let i = self.index(id)?;
        self.files.get_mut(i).ok_or(StoreError::NotFound)
    }

    /// True if `block` exists in file `id` — the cheap existence probe
    /// read-ahead planning needs (a [`BlockStore::read_block`] would
    /// copy a whole block just to answer the same question).
    pub fn has_block(&self, id: FileId, block: u32) -> bool {
        self.file(id).is_ok_and(|f| {
            let start = block as usize * BLOCK_SIZE;
            start < f.data.len() || (start == 0 && f.data.is_empty())
        })
    }

    /// Reads up to `count` bytes of block `block` (the tail block may be
    /// short).
    pub fn read_block(&self, id: FileId, block: u32, count: usize) -> Result<&[u8], StoreError> {
        let f = self.file(id)?;
        let start = block as usize * BLOCK_SIZE;
        if start >= f.data.len() && !(start == 0 && f.data.is_empty()) {
            return Err(StoreError::BadBlock);
        }
        let end = (start + count.min(BLOCK_SIZE)).min(f.data.len());
        Ok(&f.data[start..end])
    }

    /// Reads an arbitrary byte range (large reads / program images).
    pub fn read_range(&self, id: FileId, offset: usize, count: usize) -> Result<&[u8], StoreError> {
        let f = self.file(id)?;
        if offset > f.data.len() {
            return Err(StoreError::BadBlock);
        }
        let end = (offset + count).min(f.data.len());
        Ok(&f.data[offset..end])
    }

    /// Writes `data` at block `block`, growing the file if needed.
    pub fn write_block(&mut self, id: FileId, block: u32, data: &[u8]) -> Result<(), StoreError> {
        if data.len() > BLOCK_SIZE {
            return Err(StoreError::BadBlock);
        }
        let f = self.file_mut(id)?;
        let start = block as usize * BLOCK_SIZE;
        let end = start + data.len();
        if end > f.data.len() {
            f.data.resize(end, 0);
        }
        f.data[start..end].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_open_read_write() {
        let mut s = BlockStore::new();
        let id = s.create("prog", 1024).unwrap();
        assert_eq!(s.open("prog").unwrap(), id);
        assert_eq!(s.len(id).unwrap(), 1024);
        assert_eq!(s.name(id).unwrap(), "prog");
        s.write_block(id, 1, &[7u8; 512]).unwrap();
        assert_eq!(s.read_block(id, 1, 512).unwrap(), &[7u8; 512][..]);
        assert_eq!(s.read_block(id, 0, 512).unwrap(), &[0u8; 512][..]);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut s = BlockStore::new();
        s.create("x", 1).unwrap();
        assert_eq!(s.create("x", 1).unwrap_err(), StoreError::Exists);
    }

    #[test]
    fn missing_file_fails() {
        let s = BlockStore::new();
        assert_eq!(s.open("nope").unwrap_err(), StoreError::NotFound);
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_range_block_fails() {
        let mut s = BlockStore::new();
        let id = s.create("f", 600).unwrap();
        assert!(s.read_block(id, 0, 512).is_ok());
        // Block 1 exists (short tail), block 2 does not.
        assert_eq!(s.read_block(id, 1, 512).unwrap().len(), 88);
        assert_eq!(s.read_block(id, 2, 512).unwrap_err(), StoreError::BadBlock);
    }

    #[test]
    fn write_grows_file() {
        let mut s = BlockStore::new();
        let id = s.create("g", 0).unwrap();
        s.write_block(id, 2, &[1u8; 512]).unwrap();
        assert_eq!(s.len(id).unwrap(), 3 * BLOCK_SIZE);
    }

    #[test]
    fn id_base_offsets_every_id_and_rejects_foreign_ids() {
        let mut s = BlockStore::with_id_base(0x1000);
        let id = s.create("f", 512).unwrap();
        assert_eq!(id, FileId(0x1000));
        assert_eq!(s.open("f").unwrap(), id);
        assert!(s.read_block(id, 0, 512).is_ok());
        // Ids below the base belong to another shard's store.
        assert_eq!(s.len(FileId(0)).unwrap_err(), StoreError::NotFound);
        assert_eq!(s.len(FileId(0x0FFF)).unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn has_block_agrees_with_read_block() {
        let mut s = BlockStore::new();
        let id = s.create("f", 600).unwrap();
        let empty = s.create("e", 0).unwrap();
        for (file, block) in [(id, 0), (id, 1), (id, 2), (empty, 0), (empty, 1)] {
            assert_eq!(
                s.has_block(file, block),
                s.read_block(file, block, BLOCK_SIZE).is_ok(),
                "file {file:?} block {block}"
            );
        }
        assert!(!s.has_block(FileId(999), 0), "unknown file has no blocks");
    }

    #[test]
    fn read_range_clamps_to_eof() {
        let mut s = BlockStore::new();
        let id = s.create_with("h", &[9u8; 100]).unwrap();
        assert_eq!(s.read_range(id, 50, 100).unwrap().len(), 50);
        assert_eq!(s.read_range(id, 101, 1).unwrap_err(), StoreError::BadBlock);
    }
}
