//! The server's block store and flat directory.

use std::collections::{BTreeMap, HashMap};

use crate::BLOCK_SIZE;

/// A file identifier, as carried in I/O protocol messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FileId(pub u16);

/// Errors from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// No such file id / name.
    NotFound,
    /// A file with that name already exists.
    Exists,
    /// Block index beyond the end of the file.
    BadBlock,
    /// The store's id range is exhausted: creating one more file would
    /// hand out an id from another shard's range. A named error rather
    /// than silent wraparound — the caller decides whether to refuse
    /// the create or re-shard.
    Full,
}

#[derive(Debug, Clone)]
struct File {
    name: String,
    data: Vec<u8>,
}

/// An in-memory block store with a flat name directory — the file
/// server's filesystem state (the paper's servers expose UNIX files; the
/// protocol only ever addresses (file id, block index) pairs).
///
/// Ids come in two populations:
///
/// * **Native** ids, allocated sequentially from the store's own
///   `[id_base, id_base + capacity)` range. Removing a native file
///   leaves a tombstone — the slot is never reallocated, so a stale
///   client id can only miss, never alias a different file.
/// * **Adopted** ids, grafted in by live migration with
///   [`BlockStore::adopt`]: a file that kept the id its original shard
///   allocated, now served here. Adopted ids live outside the native
///   range (or in a tombstoned native slot, when a file migrates back
///   home).
#[derive(Debug, Clone)]
pub struct BlockStore {
    files: Vec<Option<File>>,
    /// Files adopted from other stores, keyed by their foreign raw id.
    adopted: BTreeMap<u16, File>,
    by_name: HashMap<String, FileId>,
    /// All ids this store hands out are offset by this base, so stores
    /// on different servers (file-service shards) never allocate the
    /// same id — a file id identifies its owner cluster-wide.
    id_base: u16,
    /// Width of the native id range.
    capacity: usize,
}

impl Default for BlockStore {
    fn default() -> BlockStore {
        BlockStore {
            files: Vec::new(),
            adopted: BTreeMap::new(),
            by_name: HashMap::new(),
            id_base: 0,
            capacity: Self::MAX_FILES,
        }
    }
}

impl BlockStore {
    /// Default width of a store's native id range. Sharded deployments
    /// give each store a disjoint range ([`BlockStore::with_id_range`]
    /// picks other widths); [`BlockStore::create`] reports
    /// [`StoreError::Full`] at the boundary instead of aliasing a
    /// neighbour's ids.
    pub const MAX_FILES: usize = 4096;

    /// Creates an empty store.
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    /// Creates an empty store whose file ids start at `base` (sharded
    /// deployments give each shard a disjoint range; see
    /// [`BlockStore::MAX_FILES`]). `base` must be range-aligned.
    pub fn with_id_base(base: u16) -> BlockStore {
        assert!(
            base as usize % Self::MAX_FILES == 0,
            "id base {base:#06x} must be a multiple of {} so shard id ranges stay disjoint",
            Self::MAX_FILES
        );
        BlockStore {
            id_base: base,
            ..BlockStore::default()
        }
    }

    /// Creates an empty store over the explicit native id range
    /// `[base, base + capacity)` — how wide deployments (more than 16
    /// shards) squeeze disjoint ranges into the 16-bit id space.
    ///
    /// # Panics
    ///
    /// Panics when the range overflows the 16-bit id space or is empty.
    pub fn with_id_range(base: u16, capacity: usize) -> BlockStore {
        assert!(capacity > 0, "a store needs a non-empty id range");
        assert!(
            base as usize + capacity <= (u16::MAX as usize) + 1,
            "id range [{base:#06x}, {base:#06x}+{capacity}) overflows the 16-bit id space"
        );
        BlockStore {
            id_base: base,
            capacity,
            ..BlockStore::default()
        }
    }

    /// Creates a file with `size` zeroed bytes.
    ///
    /// Reports [`StoreError::Full`] when the native id range is
    /// exhausted — overrunning it would alias another shard's ids.
    pub fn create(&mut self, name: &str, size: usize) -> Result<FileId, StoreError> {
        if self.by_name.contains_key(name) {
            return Err(StoreError::Exists);
        }
        if self.files.len() >= self.capacity {
            return Err(StoreError::Full);
        }
        let id = FileId(self.id_base + self.files.len() as u16);
        self.files.push(Some(File {
            name: name.to_string(),
            data: vec![0; size],
        }));
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Creates a file with the given contents.
    pub fn create_with(&mut self, name: &str, data: &[u8]) -> Result<FileId, StoreError> {
        let id = self.create(name, data.len())?;
        self.file_mut(id)
            .expect("just created")
            .data
            .copy_from_slice(data);
        Ok(id)
    }

    /// Grafts in a file under an id allocated by *another* store — the
    /// receiving half of live migration. The file keeps its original id
    /// (clients' open handles stay valid across the move) and starts as
    /// `size` zeroed bytes for the copy stream to fill with ordinary
    /// [`BlockStore::write_block`]s.
    pub fn adopt(&mut self, id: FileId, name: &str, size: usize) -> Result<(), StoreError> {
        if self.by_name.contains_key(name) || self.file(id).is_ok() {
            return Err(StoreError::Exists);
        }
        self.adopted.insert(
            id.0,
            File {
                name: name.to_string(),
                data: vec![0; size],
            },
        );
        self.by_name.insert(name.to_string(), id);
        Ok(())
    }

    /// Drops a file — the releasing half of live migration (and the
    /// reason native slots are tombstoned: the id must keep *missing*,
    /// not get recycled under a stale client handle).
    pub fn remove(&mut self, id: FileId) -> Result<(), StoreError> {
        let name = self.file(id)?.name.clone();
        self.by_name.remove(&name);
        if self.adopted.remove(&id.0).is_some() {
            return Ok(());
        }
        let i = self.native_index(id).expect("file() found a native slot");
        self.files[i] = None;
        Ok(())
    }

    /// Looks a file up by name.
    pub fn open(&self, name: &str) -> Result<FileId, StoreError> {
        self.by_name.get(name).copied().ok_or(StoreError::NotFound)
    }

    /// File length in bytes.
    pub fn len(&self, id: FileId) -> Result<usize, StoreError> {
        self.file(id).map(|f| f.data.len())
    }

    /// True if the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.file_count() == 0
    }

    /// Number of files (native slots still occupied plus adoptees).
    pub fn file_count(&self) -> usize {
        self.files.iter().filter(|f| f.is_some()).count() + self.adopted.len()
    }

    /// A file's name.
    pub fn name(&self, id: FileId) -> Result<&str, StoreError> {
        self.file(id).map(|f| f.name.as_str())
    }

    fn native_index(&self, id: FileId) -> Option<usize> {
        id.0.checked_sub(self.id_base)
            .map(usize::from)
            .filter(|&i| i < self.capacity)
    }

    fn file(&self, id: FileId) -> Result<&File, StoreError> {
        if let Some(i) = self.native_index(id) {
            if let Some(Some(f)) = self.files.get(i) {
                return Ok(f);
            }
        }
        self.adopted.get(&id.0).ok_or(StoreError::NotFound)
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut File, StoreError> {
        if let Some(i) = self.native_index(id) {
            if matches!(self.files.get(i), Some(Some(_))) {
                return Ok(self.files[i].as_mut().expect("just matched"));
            }
        }
        self.adopted.get_mut(&id.0).ok_or(StoreError::NotFound)
    }

    /// True if `block` exists in file `id` — the cheap existence probe
    /// read-ahead planning needs (a [`BlockStore::read_block`] would
    /// copy a whole block just to answer the same question).
    pub fn has_block(&self, id: FileId, block: u32) -> bool {
        self.file(id).is_ok_and(|f| {
            let start = block as usize * BLOCK_SIZE;
            start < f.data.len() || (start == 0 && f.data.is_empty())
        })
    }

    /// Reads up to `count` bytes of block `block` (the tail block may be
    /// short).
    pub fn read_block(&self, id: FileId, block: u32, count: usize) -> Result<&[u8], StoreError> {
        let f = self.file(id)?;
        let start = block as usize * BLOCK_SIZE;
        if start >= f.data.len() && !(start == 0 && f.data.is_empty()) {
            return Err(StoreError::BadBlock);
        }
        let end = (start + count.min(BLOCK_SIZE)).min(f.data.len());
        Ok(&f.data[start..end])
    }

    /// Reads an arbitrary byte range (large reads / program images).
    pub fn read_range(&self, id: FileId, offset: usize, count: usize) -> Result<&[u8], StoreError> {
        let f = self.file(id)?;
        if offset > f.data.len() {
            return Err(StoreError::BadBlock);
        }
        let end = (offset + count).min(f.data.len());
        Ok(&f.data[offset..end])
    }

    /// Writes `data` at block `block`, growing the file if needed.
    pub fn write_block(&mut self, id: FileId, block: u32, data: &[u8]) -> Result<(), StoreError> {
        if data.len() > BLOCK_SIZE {
            return Err(StoreError::BadBlock);
        }
        let f = self.file_mut(id)?;
        let start = block as usize * BLOCK_SIZE;
        let end = start + data.len();
        if end > f.data.len() {
            f.data.resize(end, 0);
        }
        f.data[start..end].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_open_read_write() {
        let mut s = BlockStore::new();
        let id = s.create("prog", 1024).unwrap();
        assert_eq!(s.open("prog").unwrap(), id);
        assert_eq!(s.len(id).unwrap(), 1024);
        assert_eq!(s.name(id).unwrap(), "prog");
        s.write_block(id, 1, &[7u8; 512]).unwrap();
        assert_eq!(s.read_block(id, 1, 512).unwrap(), &[7u8; 512][..]);
        assert_eq!(s.read_block(id, 0, 512).unwrap(), &[0u8; 512][..]);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut s = BlockStore::new();
        s.create("x", 1).unwrap();
        assert_eq!(s.create("x", 1).unwrap_err(), StoreError::Exists);
    }

    #[test]
    fn missing_file_fails() {
        let s = BlockStore::new();
        assert_eq!(s.open("nope").unwrap_err(), StoreError::NotFound);
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_range_block_fails() {
        let mut s = BlockStore::new();
        let id = s.create("f", 600).unwrap();
        assert!(s.read_block(id, 0, 512).is_ok());
        // Block 1 exists (short tail), block 2 does not.
        assert_eq!(s.read_block(id, 1, 512).unwrap().len(), 88);
        assert_eq!(s.read_block(id, 2, 512).unwrap_err(), StoreError::BadBlock);
    }

    #[test]
    fn write_grows_file() {
        let mut s = BlockStore::new();
        let id = s.create("g", 0).unwrap();
        s.write_block(id, 2, &[1u8; 512]).unwrap();
        assert_eq!(s.len(id).unwrap(), 3 * BLOCK_SIZE);
    }

    #[test]
    fn id_base_offsets_every_id_and_rejects_foreign_ids() {
        let mut s = BlockStore::with_id_base(0x1000);
        let id = s.create("f", 512).unwrap();
        assert_eq!(id, FileId(0x1000));
        assert_eq!(s.open("f").unwrap(), id);
        assert!(s.read_block(id, 0, 512).is_ok());
        // Ids below the base belong to another shard's store.
        assert_eq!(s.len(FileId(0)).unwrap_err(), StoreError::NotFound);
        assert_eq!(s.len(FileId(0x0FFF)).unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn has_block_agrees_with_read_block() {
        let mut s = BlockStore::new();
        let id = s.create("f", 600).unwrap();
        let empty = s.create("e", 0).unwrap();
        for (file, block) in [(id, 0), (id, 1), (id, 2), (empty, 0), (empty, 1)] {
            assert_eq!(
                s.has_block(file, block),
                s.read_block(file, block, BLOCK_SIZE).is_ok(),
                "file {file:?} block {block}"
            );
        }
        assert!(!s.has_block(FileId(999), 0), "unknown file has no blocks");
    }

    #[test]
    fn read_range_clamps_to_eof() {
        let mut s = BlockStore::new();
        let id = s.create_with("h", &[9u8; 100]).unwrap();
        assert_eq!(s.read_range(id, 50, 100).unwrap().len(), 50);
        assert_eq!(s.read_range(id, 101, 1).unwrap_err(), StoreError::BadBlock);
    }

    #[test]
    fn exhausted_id_range_is_a_named_error() {
        let mut s = BlockStore::with_id_range(0x2000, 2);
        s.create("a", 1).unwrap();
        s.create("b", 1).unwrap();
        assert_eq!(s.create("c", 1).unwrap_err(), StoreError::Full);
        // Removing a file does NOT free its slot: stale ids must keep
        // missing, never alias a fresh file.
        s.remove(FileId(0x2000)).unwrap();
        assert_eq!(s.create("c", 1).unwrap_err(), StoreError::Full);
    }

    #[test]
    fn remove_tombstones_without_shifting_ids() {
        let mut s = BlockStore::new();
        let a = s.create("a", 512).unwrap();
        let b = s.create_with("b", &[3u8; 64]).unwrap();
        s.remove(a).unwrap();
        assert_eq!(s.len(a).unwrap_err(), StoreError::NotFound);
        assert_eq!(s.open("a").unwrap_err(), StoreError::NotFound);
        // `b` keeps its id and data.
        assert_eq!(s.open("b").unwrap(), b);
        assert_eq!(s.read_block(b, 0, 64).unwrap(), &[3u8; 64][..]);
        assert_eq!(s.file_count(), 1);
    }

    #[test]
    fn adopt_serves_foreign_ids_and_survives_round_trip() {
        let mut src = BlockStore::with_id_base(0x1000);
        let id = src.create_with("hot", &[5u8; 700]).unwrap();

        // Destination adopts the foreign id, fills it block by block.
        let mut dst = BlockStore::new();
        dst.adopt(id, "hot", 700).unwrap();
        for block in 0..2 {
            let data = src.read_block(id, block, BLOCK_SIZE).unwrap().to_vec();
            dst.write_block(id, block, &data).unwrap();
        }
        assert_eq!(dst.open("hot").unwrap(), id);
        assert_eq!(dst.read_block(id, 1, 512).unwrap(), &[5u8; 188][..]);
        assert_eq!(dst.name(id).unwrap(), "hot");

        // Double adoption and name collisions are refused.
        assert_eq!(dst.adopt(id, "hot2", 1).unwrap_err(), StoreError::Exists);
        dst.create("native", 1).unwrap();
        assert_eq!(
            dst.adopt(FileId(0x3000), "native", 1).unwrap_err(),
            StoreError::Exists
        );

        // Migrating home again: the tombstoned native slot is re-adopted.
        src.remove(id).unwrap();
        assert_eq!(src.len(id).unwrap_err(), StoreError::NotFound);
        src.adopt(id, "hot", 700).unwrap();
        assert_eq!(src.open("hot").unwrap(), id);
        src.write_block(id, 0, &[5u8; 512]).unwrap();
        assert_eq!(src.read_block(id, 0, 512).unwrap(), &[5u8; 512][..]);
    }
}
