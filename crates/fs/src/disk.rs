//! The file server's disk.
//!
//! The paper's analysis only needs a disk's *latency distribution*: Table
//! 6-2 sweeps 10/15/20 ms, §6.1 estimates 20 ms per access, and §7 treats
//! disk scheduling as "identical to conventional multi-user systems".
//! This model charges a fixed access latency plus per-byte transfer time,
//! with optional uniform jitter, and serializes requests (one arm).

use std::collections::VecDeque;

use v_sim::{SimDuration, SimTime, SplitMix64};

/// Counters a [`DiskModel`] accumulates — the queueing-center view of
/// the spindle that capacity analysis needs: how often requests piled up
/// behind the arm, how deep the pile got, and how busy the arm was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Requests issued.
    pub requests: u64,
    /// Requests that had to wait behind an earlier one (arm busy).
    pub queued: u64,
    /// Total arm-busy (service) time.
    pub busy: SimDuration,
    /// Total time requests spent waiting in the queue.
    pub waited: SimDuration,
    /// Deepest queue observed, counting the request in service.
    pub max_queue_depth: u32,
}

impl DiskStats {
    /// Arm utilization over an elapsed interval.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// A single-spindle disk.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Fixed positioning latency per request (seek + rotation).
    pub access: SimDuration,
    /// Uniform extra jitter in `[0, jitter)` per request.
    pub jitter: SimDuration,
    /// Transfer time per byte off the platters.
    pub per_byte: SimDuration,
    rng: SplitMix64,
    busy_until: SimTime,
    /// Completion times of requests not yet known to have drained
    /// (pruned lazily against `now` on each request).
    inflight: VecDeque<SimTime>,
    stats: DiskStats,
}

impl DiskModel {
    /// A disk with fixed access latency and a 1983-plausible 1 MB/s
    /// transfer rate.
    pub fn fixed(access: SimDuration) -> DiskModel {
        DiskModel {
            access,
            jitter: SimDuration::ZERO,
            per_byte: SimDuration::from_nanos(1_000),
            rng: SplitMix64::new(0xD15C),
            busy_until: SimTime::ZERO,
            inflight: VecDeque::new(),
            stats: DiskStats::default(),
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Adds uniform jitter.
    pub fn with_jitter(mut self, jitter: SimDuration, seed: u64) -> DiskModel {
        self.jitter = jitter;
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Issues a request for `bytes` at time `now`; returns when the data
    /// is in memory. Requests queue behind each other (one arm).
    pub fn request(&mut self, now: SimTime, bytes: usize) -> SimTime {
        while self.inflight.front().is_some_and(|&done| done <= now) {
            self.inflight.pop_front();
        }
        let depth = self.inflight.len() as u32;
        let start = now.max(self.busy_until);
        let mut service =
            self.access + SimDuration::from_nanos(self.per_byte.as_nanos() * bytes as u64);
        if !self.jitter.is_zero() {
            service += SimDuration::from_nanos(self.rng.below(self.jitter.as_nanos().max(1)));
        }
        self.busy_until = start + service;
        self.inflight.push_back(self.busy_until);
        self.stats.requests += 1;
        if depth > 0 {
            self.stats.queued += 1;
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth + 1);
        self.stats.busy += service;
        self.stats.waited += start.since(now);
        self.busy_until
    }

    /// The service time the *next* request would take (no queueing),
    /// useful for read-ahead planning.
    pub fn service_estimate(&self, bytes: usize) -> SimDuration {
        self.access + SimDuration::from_nanos(self.per_byte.as_nanos() * bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_plus_transfer() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(15));
        let done = d.request(SimTime::ZERO, 512);
        // 15 ms + 512 us.
        assert_eq!(done, SimTime::from_micros(15_512));
    }

    #[test]
    fn requests_queue() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10));
        let a = d.request(SimTime::ZERO, 0);
        let b = d.request(SimTime::from_millis(1), 0);
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(20));
        // After it drains, a late request starts fresh.
        let c = d.request(SimTime::from_millis(100), 0);
        assert_eq!(c, SimTime::from_millis(110));
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10))
            .with_jitter(SimDuration::from_millis(5), 7);
        for i in 0..50 {
            let now = SimTime::from_millis(i * 100);
            let done = d.request(now, 0);
            let service = done.since(now);
            assert!(service >= SimDuration::from_millis(10));
            assert!(service < SimDuration::from_millis(15));
        }
    }

    #[test]
    fn service_estimate_matches_fixed_part() {
        let d = DiskModel::fixed(SimDuration::from_millis(20));
        assert_eq!(d.service_estimate(512), SimDuration::from_micros(20_512));
    }

    #[test]
    fn stats_track_queueing_and_busy_time() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10));
        // Three back-to-back requests at t=0: depths 1, 2, 3.
        d.request(SimTime::ZERO, 0);
        d.request(SimTime::ZERO, 0);
        d.request(SimTime::ZERO, 0);
        let s = d.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.queued, 2, "two requests waited behind the arm");
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.busy, SimDuration::from_millis(30));
        // Waits: 0 + 10 + 20 ms.
        assert_eq!(s.waited, SimDuration::from_millis(30));
        // After the queue drains, a fresh request sees an idle arm.
        d.request(SimTime::from_millis(100), 0);
        let s = d.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.queued, 2);
        assert_eq!(s.max_queue_depth, 3);
        // Utilization: 40 ms busy over a 110 ms horizon.
        let u = s.utilization(SimDuration::from_millis(110));
        assert!((u - 40.0 / 110.0).abs() < 1e-9);
    }
}
