//! The file server's disk.
//!
//! The paper's analysis only needs a disk's *latency distribution*: Table
//! 6-2 sweeps 10/15/20 ms, §6.1 estimates 20 ms per access, and §7 treats
//! disk scheduling as "identical to conventional multi-user systems".
//! This model charges a fixed access latency plus per-byte transfer time,
//! with optional uniform jitter, and serializes requests (one arm).

use v_sim::{SimDuration, SimTime, SplitMix64};

/// A single-spindle disk.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Fixed positioning latency per request (seek + rotation).
    pub access: SimDuration,
    /// Uniform extra jitter in `[0, jitter)` per request.
    pub jitter: SimDuration,
    /// Transfer time per byte off the platters.
    pub per_byte: SimDuration,
    rng: SplitMix64,
    busy_until: SimTime,
}

impl DiskModel {
    /// A disk with fixed access latency and a 1983-plausible 1 MB/s
    /// transfer rate.
    pub fn fixed(access: SimDuration) -> DiskModel {
        DiskModel {
            access,
            jitter: SimDuration::ZERO,
            per_byte: SimDuration::from_nanos(1_000),
            rng: SplitMix64::new(0xD15C),
            busy_until: SimTime::ZERO,
        }
    }

    /// Adds uniform jitter.
    pub fn with_jitter(mut self, jitter: SimDuration, seed: u64) -> DiskModel {
        self.jitter = jitter;
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Issues a request for `bytes` at time `now`; returns when the data
    /// is in memory. Requests queue behind each other (one arm).
    pub fn request(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = now.max(self.busy_until);
        let mut service =
            self.access + SimDuration::from_nanos(self.per_byte.as_nanos() * bytes as u64);
        if !self.jitter.is_zero() {
            service += SimDuration::from_nanos(self.rng.below(self.jitter.as_nanos().max(1)));
        }
        self.busy_until = start + service;
        self.busy_until
    }

    /// The service time the *next* request would take (no queueing),
    /// useful for read-ahead planning.
    pub fn service_estimate(&self, bytes: usize) -> SimDuration {
        self.access + SimDuration::from_nanos(self.per_byte.as_nanos() * bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_plus_transfer() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(15));
        let done = d.request(SimTime::ZERO, 512);
        // 15 ms + 512 us.
        assert_eq!(done, SimTime::from_micros(15_512));
    }

    #[test]
    fn requests_queue() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10));
        let a = d.request(SimTime::ZERO, 0);
        let b = d.request(SimTime::from_millis(1), 0);
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(20));
        // After it drains, a late request starts fresh.
        let c = d.request(SimTime::from_millis(100), 0);
        assert_eq!(c, SimTime::from_millis(110));
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10))
            .with_jitter(SimDuration::from_millis(5), 7);
        for i in 0..50 {
            let now = SimTime::from_millis(i * 100);
            let done = d.request(now, 0);
            let service = done.since(now);
            assert!(service >= SimDuration::from_millis(10));
            assert!(service < SimDuration::from_millis(15));
        }
    }

    #[test]
    fn service_estimate_matches_fixed_part() {
        let d = DiskModel::fixed(SimDuration::from_millis(20));
        assert_eq!(d.service_estimate(512), SimDuration::from_micros(20_512));
    }
}
