//! The file server's disk — now a configurable multi-arm (striped) unit.
//!
//! The paper's analysis only needs a disk's *latency distribution*: Table
//! 6-2 sweeps 10/15/20 ms, §6.1 estimates 20 ms per access, and §7 treats
//! disk scheduling as "identical to conventional multi-user systems".
//! Each **arm** charges a positioning latency (seek + rotation) plus
//! per-byte transfer time, with optional uniform jitter, and serializes
//! its own requests. A [`DiskParams`]-built unit may carry several
//! independent arms with blocks **striped** across them RAID-0 style
//! (configurable stripe width), so concurrent requests for different
//! stripes overlap their seeks — the classic multi-arm capacity lift.
//!
//! The single-arm default is bit-identical to the historical one-arm
//! model: same request arithmetic, same jitter stream, same counters.

use std::collections::VecDeque;

use v_sim::{SimDuration, SimTime, SplitMix64};

use crate::BLOCK_SIZE;

/// Default per-byte transfer time: a 1983-plausible 1 MB/s rate.
const DEFAULT_PER_BYTE: SimDuration = SimDuration::from_nanos(1_000);
/// Default jitter seed (no jitter drawn unless jitter is nonzero).
const DEFAULT_SEED: u64 = 0xD15C;

/// Counters a disk arm accumulates — the queueing-center view of the
/// spindle that capacity analysis needs: how often requests piled up
/// behind the arm, how deep the pile got, and how busy the arm was.
/// [`DiskModel::stats`] returns the [`DiskStats::absorb`]-aggregated
/// view across every arm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Requests issued.
    pub requests: u64,
    /// Requests that had to wait behind an earlier one (arm busy).
    pub queued: u64,
    /// Total arm-busy (service) time.
    pub busy: SimDuration,
    /// Total time requests spent waiting in the queue.
    pub waited: SimDuration,
    /// Deepest queue observed, counting the request in service.
    pub max_queue_depth: u32,
}

impl DiskStats {
    /// Arm utilization over an elapsed interval. For an aggregate over
    /// `n` arms this can exceed 1.0; divide by the arm count (or use
    /// [`DiskModel::utilization`]) for the normalized figure.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Folds another arm's counters into this one: counts and times sum,
    /// the queue-depth high-water mark takes the max.
    pub fn absorb(&mut self, other: &DiskStats) {
        self.requests += other.requests;
        self.queued += other.queued;
        self.busy += other.busy;
        self.waited += other.waited;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// Mechanical parameters of a disk unit. The positioning latency is
/// split into its seek and rotational components (their *sum* is what a
/// request pays, so `DiskParams::fixed(d)` — all-seek, zero rotation —
/// reproduces the historical combined-latency model exactly).
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Arm positioning (seek) latency per request.
    pub seek: SimDuration,
    /// Rotational latency per request.
    pub rotation: SimDuration,
    /// Transfer time per byte off the platters.
    pub per_byte: SimDuration,
    /// Uniform extra jitter in `[0, jitter)` per request.
    pub jitter: SimDuration,
    /// Seed for the jitter stream (arm `i` draws from `seed + i`).
    pub seed: u64,
    /// Independent arms blocks are striped across.
    pub arms: usize,
    /// Stripe width: consecutive blocks per arm before the next arm
    /// takes over.
    pub stripe_blocks: u32,
}

impl DiskParams {
    /// A single-arm disk with a fixed combined positioning latency —
    /// the historical model.
    pub fn fixed(access: SimDuration) -> DiskParams {
        DiskParams {
            seek: access,
            rotation: SimDuration::ZERO,
            per_byte: DEFAULT_PER_BYTE,
            jitter: SimDuration::ZERO,
            seed: DEFAULT_SEED,
            arms: 1,
            stripe_blocks: 1,
        }
    }

    /// A single-arm disk with explicit seek and rotational components
    /// (a request pays their sum).
    pub fn split(seek: SimDuration, rotation: SimDuration) -> DiskParams {
        DiskParams {
            seek,
            rotation,
            ..DiskParams::fixed(SimDuration::ZERO)
        }
    }

    /// Stripes the unit over `n` independent arms.
    pub fn arms(mut self, n: usize) -> DiskParams {
        assert!(n >= 1, "a disk needs at least one arm");
        self.arms = n;
        self
    }

    /// Sets the stripe width in blocks.
    pub fn stripe(mut self, blocks: u32) -> DiskParams {
        assert!(blocks >= 1, "stripe width must be at least one block");
        self.stripe_blocks = blocks;
        self
    }

    /// Adds uniform jitter drawn from `seed`.
    pub fn with_jitter(mut self, jitter: SimDuration, seed: u64) -> DiskParams {
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// The combined positioning latency a request pays before transfer.
    pub fn positioning(&self) -> SimDuration {
        self.seek + self.rotation
    }

    /// Builds the (idle) disk unit.
    pub fn build(self) -> DiskModel {
        let arms = (0..self.arms)
            .map(|i| Arm {
                rng: SplitMix64::new(self.seed.wrapping_add(i as u64)),
                busy_until: SimTime::ZERO,
                inflight: VecDeque::new(),
                stats: DiskStats::default(),
            })
            .collect();
        DiskModel { params: self, arms }
    }
}

/// One independent arm: its own queue, jitter stream and counters.
#[derive(Debug, Clone)]
struct Arm {
    rng: SplitMix64,
    busy_until: SimTime,
    /// Completion times of requests not yet known to have drained
    /// (pruned lazily against `now` on each request).
    inflight: VecDeque<SimTime>,
    stats: DiskStats,
}

/// A disk unit of one or more arms (see the module docs).
#[derive(Debug, Clone)]
pub struct DiskModel {
    params: DiskParams,
    arms: Vec<Arm>,
}

impl DiskModel {
    /// A single-arm disk with fixed access latency and a 1983-plausible
    /// 1 MB/s transfer rate.
    pub fn fixed(access: SimDuration) -> DiskModel {
        DiskParams::fixed(access).build()
    }

    /// The mechanical parameters this unit was built from.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Number of independent arms.
    pub fn arms(&self) -> usize {
        self.arms.len()
    }

    /// Rebuilds this unit with `n` arms (same mechanics, idle state).
    /// Used by the file-server spawn path to apply
    /// `FileServerConfig::disk_arms`; with `n == 1` the result is
    /// indistinguishable from a freshly built single-arm unit.
    pub fn with_arms(self, n: usize) -> DiskModel {
        self.params.arms(n).build()
    }

    /// Adds uniform jitter (single-arm builder compatibility).
    pub fn with_jitter(self, jitter: SimDuration, seed: u64) -> DiskModel {
        self.params.with_jitter(jitter, seed).build()
    }

    /// The counters accumulated so far, aggregated across arms.
    pub fn stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for arm in &self.arms {
            total.absorb(&arm.stats);
        }
        total
    }

    /// Per-arm counters, in arm order.
    pub fn per_arm_stats(&self) -> Vec<DiskStats> {
        self.arms.iter().map(|a| a.stats).collect()
    }

    /// Normalized utilization over an elapsed interval: total busy time
    /// divided by `arms × elapsed`, so a fully driven striped unit reads
    /// 1.0 like a fully driven single arm.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        self.stats().utilization(elapsed) / self.arms.len() as f64
    }

    /// The arm serving block `block` of file `file_key`: consecutive
    /// stripes of a file walk the arms round-robin, and different files
    /// start on different arms so concurrent single-block loads spread.
    pub fn arm_for(&self, file_key: u32, block: u32) -> usize {
        let stripe = block / self.params.stripe_blocks;
        ((file_key as u64 + stripe as u64) % self.arms.len() as u64) as usize
    }

    /// Issues a request for `bytes` at time `now` on one arm; returns
    /// when the data is in memory. Requests on the same arm queue behind
    /// each other.
    fn request_on(&mut self, arm_idx: usize, now: SimTime, bytes: usize) -> SimTime {
        let positioning = self.params.positioning();
        let per_byte = self.params.per_byte;
        let jitter = self.params.jitter;
        let arm = &mut self.arms[arm_idx];
        while arm.inflight.front().is_some_and(|&done| done <= now) {
            arm.inflight.pop_front();
        }
        let depth = arm.inflight.len() as u32;
        let start = now.max(arm.busy_until);
        let mut service = positioning + SimDuration::from_nanos(per_byte.as_nanos() * bytes as u64);
        if !jitter.is_zero() {
            service += SimDuration::from_nanos(arm.rng.below(jitter.as_nanos().max(1)));
        }
        arm.busy_until = start + service;
        arm.inflight.push_back(arm.busy_until);
        arm.stats.requests += 1;
        if depth > 0 {
            arm.stats.queued += 1;
        }
        arm.stats.max_queue_depth = arm.stats.max_queue_depth.max(depth + 1);
        arm.stats.busy += service;
        arm.stats.waited += start.since(now);
        arm.busy_until
    }

    /// Issues a request for `bytes` at time `now` on the first arm;
    /// returns when the data is in memory. The historical single-arm
    /// entry point — callers that know the block use
    /// [`DiskModel::request_striped`].
    pub fn request(&mut self, now: SimTime, bytes: usize) -> SimTime {
        self.request_on(0, now, bytes)
    }

    /// Issues a single-block-class request routed to the arm striping
    /// assigns `(file_key, block)`.
    pub fn request_striped(
        &mut self,
        now: SimTime,
        file_key: u32,
        block: u32,
        bytes: usize,
    ) -> SimTime {
        let arm = self.arm_for(file_key, block);
        self.request_on(arm, now, bytes)
    }

    /// Issues a multi-block span read starting at `start_block`. On a
    /// single-arm unit this is exactly one [`DiskModel::request`]; on a
    /// striped unit the span's bytes are bucketed by owning arm and each
    /// touched arm services its share as one request (one positioning
    /// charge per arm, transfers in parallel) — the data is in memory
    /// at the latest arm's completion, which is returned.
    pub fn request_span(
        &mut self,
        now: SimTime,
        file_key: u32,
        start_block: u32,
        bytes: usize,
    ) -> SimTime {
        if self.arms.len() == 1 {
            return self.request_on(0, now, bytes);
        }
        let mut per_arm = vec![0usize; self.arms.len()];
        let mut block = start_block;
        let mut rem = bytes;
        while rem > 0 {
            let take = rem.min(BLOCK_SIZE);
            per_arm[self.arm_for(file_key, block)] += take;
            rem -= take;
            block += 1;
        }
        let mut done = now;
        for (arm_idx, share) in per_arm.into_iter().enumerate() {
            if share > 0 {
                done = done.max(self.request_on(arm_idx, now, share));
            }
        }
        done
    }

    /// The service time the *next* request would take (no queueing),
    /// useful for read-ahead planning.
    pub fn service_estimate(&self, bytes: usize) -> SimDuration {
        self.params.positioning()
            + SimDuration::from_nanos(self.params.per_byte.as_nanos() * bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_plus_transfer() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(15));
        let done = d.request(SimTime::ZERO, 512);
        // 15 ms + 512 us.
        assert_eq!(done, SimTime::from_micros(15_512));
    }

    #[test]
    fn requests_queue() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10));
        let a = d.request(SimTime::ZERO, 0);
        let b = d.request(SimTime::from_millis(1), 0);
        assert_eq!(a, SimTime::from_millis(10));
        assert_eq!(b, SimTime::from_millis(20));
        // After it drains, a late request starts fresh.
        let c = d.request(SimTime::from_millis(100), 0);
        assert_eq!(c, SimTime::from_millis(110));
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10))
            .with_jitter(SimDuration::from_millis(5), 7);
        for i in 0..50 {
            let now = SimTime::from_millis(i * 100);
            let done = d.request(now, 0);
            let service = done.since(now);
            assert!(service >= SimDuration::from_millis(10));
            assert!(service < SimDuration::from_millis(15));
        }
    }

    #[test]
    fn service_estimate_matches_fixed_part() {
        let d = DiskModel::fixed(SimDuration::from_millis(20));
        assert_eq!(d.service_estimate(512), SimDuration::from_micros(20_512));
    }

    #[test]
    fn stats_track_queueing_and_busy_time() {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10));
        // Three back-to-back requests at t=0: depths 1, 2, 3.
        d.request(SimTime::ZERO, 0);
        d.request(SimTime::ZERO, 0);
        d.request(SimTime::ZERO, 0);
        let s = d.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.queued, 2, "two requests waited behind the arm");
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.busy, SimDuration::from_millis(30));
        // Waits: 0 + 10 + 20 ms.
        assert_eq!(s.waited, SimDuration::from_millis(30));
        // After the queue drains, a fresh request sees an idle arm.
        d.request(SimTime::from_millis(100), 0);
        let s = d.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.queued, 2);
        assert_eq!(s.max_queue_depth, 3);
        // Utilization: 40 ms busy over a 110 ms horizon.
        let u = s.utilization(SimDuration::from_millis(110));
        assert!((u - 40.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn seek_and_rotation_components_sum() {
        // split(10, 5) must behave exactly like the historical fixed(15).
        let mut split =
            DiskParams::split(SimDuration::from_millis(10), SimDuration::from_millis(5)).build();
        let mut fixed = DiskModel::fixed(SimDuration::from_millis(15));
        for (t, bytes) in [(0u64, 512usize), (3, 0), (40, 4096)] {
            let now = SimTime::from_millis(t);
            assert_eq!(split.request(now, bytes), fixed.request(now, bytes));
        }
        assert_eq!(split.stats(), fixed.stats());
        assert_eq!(split.service_estimate(512), fixed.service_estimate(512));
    }

    #[test]
    fn striped_arms_overlap_independent_blocks() {
        // Four simultaneous one-block reads of four consecutive blocks
        // on a 4-arm unit: every request lands on its own arm and they
        // all complete in one access time, where a single arm would have
        // serialized them.
        let mut d = DiskParams::fixed(SimDuration::from_millis(10))
            .arms(4)
            .build();
        for block in 0..4 {
            let done = d.request_striped(SimTime::ZERO, 0, block, 0);
            assert_eq!(done, SimTime::from_millis(10), "block {block}");
        }
        let s = d.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.queued, 0, "no request waited behind another");
        assert_eq!(s.max_queue_depth, 1);
        for arm in d.per_arm_stats() {
            assert_eq!(arm.requests, 1);
        }
        // Normalized utilization over the 10 ms horizon: all arms busy.
        assert!((d.utilization(SimDuration::from_millis(10)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stripe_width_groups_consecutive_blocks() {
        let d = DiskParams::fixed(SimDuration::from_millis(10))
            .arms(2)
            .stripe(4)
            .build();
        // Blocks 0..3 on one arm, 4..7 on the other, 8..11 wrap back.
        assert_eq!(d.arm_for(0, 0), d.arm_for(0, 3));
        assert_ne!(d.arm_for(0, 3), d.arm_for(0, 4));
        assert_eq!(d.arm_for(0, 0), d.arm_for(0, 8));
        // Different files start on different arms.
        assert_ne!(d.arm_for(0, 0), d.arm_for(1, 0));
    }

    #[test]
    fn span_splits_across_arms() {
        // An 8-block span on 2 arms: each arm seeks once and transfers
        // half the bytes in parallel.
        let mut two = DiskParams::fixed(SimDuration::from_millis(10))
            .arms(2)
            .build();
        let done = two.request_span(SimTime::ZERO, 0, 0, 8 * BLOCK_SIZE);
        assert_eq!(done, SimTime::from_micros(10_000 + 4 * 512));
        let s = two.stats();
        assert_eq!(s.requests, 2, "one request per touched arm");
        // The same span on one arm is a single full-size request —
        // bit-identical to the historical model.
        let mut one = DiskModel::fixed(SimDuration::from_millis(10));
        let done1 = one.request_span(SimTime::ZERO, 0, 0, 8 * BLOCK_SIZE);
        assert_eq!(done1, one_arm_reference());
        assert_eq!(one.stats().requests, 1);
    }

    fn one_arm_reference() -> SimTime {
        let mut d = DiskModel::fixed(SimDuration::from_millis(10));
        d.request(SimTime::ZERO, 8 * BLOCK_SIZE)
    }

    #[test]
    fn absorb_aggregates_counters() {
        let mut a = DiskStats {
            requests: 3,
            queued: 1,
            busy: SimDuration::from_millis(30),
            waited: SimDuration::from_millis(5),
            max_queue_depth: 2,
        };
        let b = DiskStats {
            requests: 2,
            queued: 2,
            busy: SimDuration::from_millis(20),
            waited: SimDuration::from_millis(15),
            max_queue_depth: 5,
        };
        a.absorb(&b);
        assert_eq!(a.requests, 5);
        assert_eq!(a.queued, 3);
        assert_eq!(a.busy, SimDuration::from_millis(50));
        assert_eq!(a.waited, SimDuration::from_millis(20));
        assert_eq!(a.max_queue_depth, 5);
    }

    #[test]
    fn with_arms_reshapes_and_one_is_identity() {
        let base = DiskModel::fixed(SimDuration::from_millis(15));
        let mut reshaped = base.clone().with_arms(1);
        let mut orig = base;
        assert_eq!(
            reshaped.request(SimTime::ZERO, 512),
            orig.request(SimTime::ZERO, 512)
        );
        let four = DiskModel::fixed(SimDuration::from_millis(15)).with_arms(4);
        assert_eq!(four.arms(), 4);
    }
}
