//! File-server **teams**: a receptionist plus N workers, pipelined with
//! the kernel's `Forward` primitive.
//!
//! The paper's §7 sizes one file server's capacity under concurrent
//! client load; a single sequential server process serializes every
//! request — a 15 ms disk wait blocks the receive and file-system
//! processing of the next request behind it. The V answer is a server
//! *team*:
//!
//! ```text
//!                    ┌────────────┐   Forward    ┌──────────┐
//!   clients ──Send──▶│receptionist│─────────────▶│ worker 1 │──Reply──▶ client
//!                    │ (receives, │              ├──────────┤
//!                    │  never     │─────────────▶│ worker 2 │──Reply──▶ client
//!                    │  serves)   │      ▲       ├──────────┤
//!                    └────────────┘      │       │    ⋮     │
//!                          ▲        idle notify  └──────────┘
//!                          └─────────────┴── shared store + disk + stats
//! ```
//!
//! * the **receptionist** only `ReceiveWithSegment`s: it registers the
//!   service's logical id, forwards each client request to an idle
//!   worker (the kernel rebinds the client, so the worker's
//!   `Reply`/`MoveTo`/`MoveFrom` reach the client directly), and parks
//!   requests when every worker is busy;
//! * each **worker** is an ordinary [`FileServer`] state machine in
//!   worker mode: serve, reply to the client, then `Send` a one-message
//!   idle notification to the receptionist (the classic V idiom for
//!   "give me more work");
//! * the [`BlockStore`], the [`DiskModel`] and the [`FileServerStats`]
//!   are shared across the team, so one request's disk wait overlaps
//!   the next request's receive and file-system CPU. With a single arm
//!   concurrent disk requests still queue behind each other; a striped
//!   multi-arm unit ([`FileServerConfig::disk_arms`]` >= 2`) lets the
//!   workers overlap the seeks themselves.
//!
//! [`FileServerConfig::workers`]` == 1` bypasses the team entirely and
//! spawns the sequential server, bit-identical to the pre-team code.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use v_kernel::{Api, Cluster, HostId, Message, Outcome, Pid, Program, Scope};

use crate::disk::DiskModel;
use crate::server::{FileServer, FileServerConfig, FileServerStats, SharedServerState, SRV_IN};
use crate::store::BlockStore;
use crate::BLOCK_SIZE;

/// Handles to a spawned file service (team or sequential).
pub struct FileServerTeam {
    /// The process clients address: the receptionist, or the sequential
    /// server itself when `workers == 1`.
    pub server: Pid,
    /// Worker pids (just the server for the sequential case).
    pub workers: Vec<Pid>,
    /// The team's shared counters.
    pub stats: Rc<RefCell<FileServerStats>>,
    /// The team's shared disk unit (per-arm queue-depth / busy-time
    /// stats live here; the aggregate is mirrored into
    /// [`FileServerStats::disk`]).
    pub disk: Rc<RefCell<DiskModel>>,
}

/// The receptionist: receives every request, forwards each to an idle
/// worker, and parks the backlog while all workers are busy.
struct Receptionist {
    register: Option<u32>,
    /// Worker pids, filled in by the spawner after the workers exist.
    workers: Rc<RefCell<Vec<Pid>>>,
    /// Workers waiting for a request.
    idle: VecDeque<Pid>,
    /// Requests received while every worker was busy.
    parked: VecDeque<(Pid, Message)>,
    stats: Rc<RefCell<FileServerStats>>,
}

impl Receptionist {
    /// Hands `(from, msg)` to `worker`, skipping dead clients.
    fn assign(&mut self, api: &mut Api<'_>, worker: Pid, from: Pid, msg: Message) -> bool {
        match api.forward(msg, from, worker) {
            Ok(()) => {
                self.stats.borrow_mut().forwarded += 1;
                true
            }
            Err(_) => {
                // The client vanished (or was never ours to forward);
                // the worker stays available.
                self.stats.borrow_mut().errors += 1;
                false
            }
        }
    }

    /// A worker reported idle: give it parked work or queue it.
    fn worker_idle(&mut self, api: &mut Api<'_>, worker: Pid) {
        while let Some((from, msg)) = self.parked.pop_front() {
            if self.assign(api, worker, from, msg) {
                return;
            }
        }
        self.idle.push_back(worker);
    }

    /// A client request arrived: forward to an idle worker or park it.
    fn client_request(&mut self, api: &mut Api<'_>, from: Pid, msg: Message) {
        if let Some(worker) = self.idle.pop_front() {
            if !self.assign(api, worker, from, msg) {
                // Forward refused: the *client* is gone; the worker is
                // still idle. Put it back and drop the request.
                self.idle.push_front(worker);
            }
            return;
        }
        self.parked.push_back((from, msg));
        let depth = self.parked.len() as u64;
        let mut st = self.stats.borrow_mut();
        st.parked_peak = st.parked_peak.max(depth);
    }
}

impl Program for Receptionist {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                if let Some(id) = self.register {
                    api.set_pid(id, api.self_pid(), Scope::Both);
                }
                api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32);
            }
            Outcome::ReceiveSeg { from, msg, .. } => {
                if self.workers.borrow().contains(&from) {
                    // Idle notification from one of our workers.
                    let _ = api.reply(Message::empty(), from);
                    self.worker_idle(api, from);
                } else {
                    self.client_request(api, from, msg);
                }
                api.receive_with_segment(SRV_IN, BLOCK_SIZE as u32);
            }
            _ => api.exit(),
        }
    }
}

/// Spawns a file service on `host`: the sequential server for
/// `cfg.workers <= 1` (bit-identical to the pre-team implementation),
/// or a receptionist plus `cfg.workers` worker processes sharing
/// `store`, one disk unit and one stats block. The disk unit honours
/// [`FileServerConfig::disk_arms`]: with `>= 2` arms the team's
/// concurrent requests stripe across arms instead of queueing behind
/// one.
pub fn spawn_file_server(
    cl: &mut Cluster,
    host: HostId,
    cfg: FileServerConfig,
    store: BlockStore,
) -> FileServerTeam {
    let shared = SharedServerState::new(cfg.build_disk(), store);
    spawn_file_server_shared(cl, host, cfg, shared)
}

/// [`spawn_file_server`] over caller-built shared state — how
/// [`crate::migrate::spawn_shard_service`] co-locates a migration agent
/// with the team it feeds (the agent adopts files into the same store
/// the workers serve from).
pub(crate) fn spawn_file_server_shared(
    cl: &mut Cluster,
    host: HostId,
    cfg: FileServerConfig,
    shared: SharedServerState,
) -> FileServerTeam {
    let stats = shared.stats.clone();
    let disk = shared.disk.clone();
    if cfg.workers <= 1 {
        let server = FileServer::with_shared(cfg, shared, None);
        let pid = cl.spawn(host, "fileserver", Box::new(server));
        return FileServerTeam {
            server: pid,
            workers: vec![pid],
            stats,
            disk,
        };
    }
    let worker_cell: Rc<RefCell<Vec<Pid>>> = Default::default();
    let receptionist = cl.spawn(
        host,
        "fs-receptionist",
        Box::new(Receptionist {
            register: cfg.register,
            workers: worker_cell.clone(),
            idle: VecDeque::new(),
            parked: VecDeque::new(),
            stats: stats.clone(),
        }),
    );
    let mut workers = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers {
        let wcfg = FileServerConfig {
            register: None,
            ..cfg.clone()
        };
        let worker = FileServer::with_shared(wcfg, shared.clone(), Some(receptionist));
        workers.push(cl.spawn(host, &format!("fs-worker{i}"), Box::new(worker)));
    }
    // Events have not run yet: the receptionist sees the full roster
    // before its first resume.
    *worker_cell.borrow_mut() = workers.clone();
    FileServerTeam {
        server: receptionist,
        workers,
        stats,
        disk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{FsCall, FsClient, FsClientReport};
    use crate::disk::DiskModel;
    use crate::BLOCK_SIZE;
    use v_kernel::{ClusterConfig, CpuSpeed};
    use v_sim::SimDuration;

    fn team_cluster(clients: usize) -> Cluster {
        Cluster::new(ClusterConfig::three_mb().with_hosts(clients + 1, CpuSpeed::Mc68000At10MHz))
    }

    fn store_with(files: &[(&str, usize)]) -> BlockStore {
        let mut store = BlockStore::new();
        for (name, blocks) in files {
            store
                .create_with(name, &vec![0x7E; blocks * BLOCK_SIZE])
                .unwrap();
        }
        store
    }

    fn read_script(name: &str, reads: u32) -> Vec<FsCall> {
        let mut script = vec![FsCall::Open(name.into())];
        for j in 0..reads {
            script.push(FsCall::ReadExpect {
                block: j % 4,
                count: BLOCK_SIZE as u32,
                expect: 0x7E,
            });
        }
        script
    }

    /// Runs `clients` remote clients against a team of `workers`;
    /// returns (per-client reports, team handle total stats).
    fn run_team(
        workers: usize,
        clients: usize,
        reads: u32,
    ) -> (Vec<FsClientReport>, FileServerTeam) {
        let mut cl = team_cluster(clients);
        let files: Vec<String> = (0..clients).map(|i| format!("vol{i}")).collect();
        let store = store_with(&files.iter().map(|n| (n.as_str(), 4)).collect::<Vec<_>>());
        let cfg = FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(5)),
            read_ahead: false,
            register: None,
            workers,
            ..FileServerConfig::default()
        };
        let team = spawn_file_server(&mut cl, HostId(0), cfg, store);
        cl.run(); // team settled: workers idle, receptionist receiving
        let reports: Vec<_> = (0..clients)
            .map(|i| {
                let rep = Rc::new(RefCell::new(FsClientReport::default()));
                cl.spawn(
                    HostId(1 + i),
                    "client",
                    Box::new(FsClient::new(
                        team.server,
                        read_script(&files[i], reads),
                        rep.clone(),
                    )),
                );
                rep
            })
            .collect();
        cl.run();
        let reports = reports.iter().map(|r| r.borrow().clone()).collect();
        (reports, team)
    }

    #[test]
    fn a_team_serves_concurrent_clients_correctly() {
        let (reports, team) = run_team(3, 3, 8);
        for (i, r) in reports.iter().enumerate() {
            assert!(r.done, "client {i}: {r:?}");
            assert_eq!(r.errors, 0, "client {i}: {r:?}");
            assert_eq!(r.integrity_errors, 0, "client {i}: {r:?}");
            assert_eq!(r.completed, 9, "client {i}: {r:?}");
        }
        let st = team.stats.borrow().clone();
        assert_eq!(st.reads, 24);
        assert_eq!(st.meta, 3);
        assert_eq!(st.forwarded, 27, "every request went through Forward");
        assert_eq!(st.disk.requests, 24);
        assert!(
            st.disk.queued > 0,
            "concurrent load queued the disk: {st:?}"
        );
    }

    #[test]
    fn a_team_with_fewer_workers_than_clients_parks_the_backlog() {
        let (reports, team) = run_team(2, 4, 6);
        for r in &reports {
            assert!(r.done && r.errors == 0 && r.integrity_errors == 0, "{r:?}");
        }
        let st = team.stats.borrow().clone();
        assert_eq!(st.forwarded, 4 * 7);
        assert!(
            st.parked_peak > 0,
            "4 clients over 2 workers must park: {st:?}"
        );
    }

    #[test]
    fn workers_1_takes_the_sequential_path() {
        let (reports, team) = run_team(1, 2, 5);
        for r in &reports {
            assert!(r.done && r.errors == 0 && r.integrity_errors == 0, "{r:?}");
        }
        let st = team.stats.borrow().clone();
        assert_eq!(st.forwarded, 0, "no receptionist in the sequential path");
        assert_eq!(st.parked_peak, 0);
        assert_eq!(team.workers, vec![team.server]);
        assert_eq!(st.reads, 10);
    }

    /// Writes land via the appended segment re-delivered to the worker,
    /// and large reads exercise the worker-side `MoveTo` stream into
    /// the client's space — both through Forward, cross-host.
    #[test]
    fn writes_and_large_reads_work_through_the_team() {
        let mut cl = team_cluster(2);
        let store = store_with(&[("a", 8), ("b", 8)]);
        let cfg = FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(2)),
            read_ahead: false,
            register: None,
            workers: 2,
            ..FileServerConfig::default()
        };
        let team = spawn_file_server(&mut cl, HostId(0), cfg, store);
        cl.run();
        let scripts: Vec<Vec<FsCall>> = vec![
            vec![
                FsCall::Open("a".into()),
                FsCall::WriteFill {
                    block: 1,
                    count: BLOCK_SIZE as u32,
                    fill: 0x55,
                },
                FsCall::ReadExpect {
                    block: 1,
                    count: BLOCK_SIZE as u32,
                    expect: 0x55,
                },
            ],
            vec![
                FsCall::Open("b".into()),
                FsCall::ReadLargeExpect {
                    block: 0,
                    count: 4 * BLOCK_SIZE as u32,
                    expect: 0x7E,
                },
            ],
        ];
        let reports: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(i, script)| {
                let rep = Rc::new(RefCell::new(FsClientReport::default()));
                cl.spawn(
                    HostId(1 + i),
                    "client",
                    Box::new(FsClient::new(team.server, script, rep.clone())),
                );
                rep
            })
            .collect();
        cl.run();
        for rep in &reports {
            let r = rep.borrow().clone();
            assert!(r.done && r.errors == 0 && r.integrity_errors == 0, "{r:?}");
        }
        let st = team.stats.borrow().clone();
        assert_eq!(st.writes, 1);
        assert_eq!(st.large_reads, 1);
        assert_eq!(st.reads, 1);
    }
}
