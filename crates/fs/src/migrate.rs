//! Live file migration between file-service shards — the *mechanism*
//! half of dynamic rebalancing (the policy lives in
//! [`crate::rebalance`]).
//!
//! A move is four ordinary V exchanges, driven by the rebalancer:
//!
//! ```text
//!  rebalancer ──MigrateBegin──▶ old owner     freeze writes (drain);
//!                 ◀─reply──     name + length come back
//!  rebalancer ──MigratePull──▶ dest agent     adopt the id, then pull
//!                                  │          every block from the old
//!                                  └─Read*──▶ old owner (ordinary reads)
//!                 ◀─reply──                   copy complete
//!  rebalancer ──MigrateCommit─▶ old owner     drop the file; Forward
//!                 ◀─reply──                   all later requests
//! ```
//!
//! The protocol needs nothing the paper's I/O protocol doesn't already
//! have: the copy stream is plain block reads, the name rides a
//! segment, and the ownership flip is one message. Reads keep flowing
//! at the old owner throughout the copy (the drain freezes *writes*
//! only, refusing them with a retry-after so the team never blocks);
//! after the commit, stale requests are `Forward`ed to the new owner
//! and clients self-correct off the reply's `owner` stamp. A failure
//! at any point before the commit aborts cleanly: the destination
//! drops its partial copy and the old owner lifts the drain.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{Access, Api, Cluster, HostId, Message, Outcome, Pid, Program};

use crate::disk::DiskModel;
use crate::proto::{IoOp, IoReply, IoRequest, IoStatus};
use crate::server::{FileServerConfig, FileServerStats, SharedServerState};
use crate::shard::ShardMap;
use crate::store::{BlockStore, FileId, StoreError};
use crate::BLOCK_SIZE;

/// Where the agent's incoming request segments (file names) land.
pub const AGENT_IN: u32 = 0x0400;
/// Staging buffer the agent pulls blocks into (the space is 256 KiB,
/// so this sits in the top quarter, clear of [`AGENT_IN`]).
pub const AGENT_BUF: u32 = 0x30000;

/// Request builders for the migration exchanges (the rebalancer's stub
/// routines, mirroring [`crate::client::stub`]).
pub mod stub {
    use super::*;

    /// `MigrateBegin` to the old owner: freeze writes to `file` and
    /// deposit its name into the caller's buffer at
    /// `name_buf`/`name_cap` (write access granted for the reply
    /// segment). The reply carries the file length in `value` and the
    /// name length in `aux`.
    pub fn begin(file: FileId, name_buf: u32, name_cap: u32, tag: u16) -> Message {
        let mut m = IoRequest {
            op: IoOp::MigrateBegin,
            file,
            block: 0,
            count: 0,
            buffer: name_buf,
            aux: 0,
            tag,
        }
        .encode();
        m.set_segment(name_buf, name_cap, Access::Write);
        m
    }

    /// `MigratePull` to the destination's migration agent: adopt
    /// `file` (`len` bytes, named by the granted segment) and copy its
    /// blocks from the service at raw pid `src`.
    pub fn pull(
        file: FileId,
        len: u32,
        src: u32,
        name_addr: u32,
        name_len: u32,
        tag: u16,
    ) -> Message {
        let mut m = IoRequest {
            op: IoOp::MigratePull,
            file,
            block: 0,
            count: len,
            buffer: 0,
            aux: src,
            tag,
        }
        .encode();
        m.set_segment(name_addr, name_len, Access::Read);
        m
    }

    /// `MigrateCommit` to the old owner: the destination holds a full
    /// copy — drop the file and forward later requests to the service
    /// at raw pid `new_owner`.
    pub fn commit(file: FileId, new_owner: u32, tag: u16) -> Message {
        IoRequest {
            op: IoOp::MigrateCommit,
            file,
            block: 0,
            count: 0,
            buffer: 0,
            aux: new_owner,
            tag,
        }
        .encode()
    }

    /// `MigrateAbort` to the old owner: the copy failed — lift the
    /// drain and keep serving the file.
    pub fn abort(file: FileId, tag: u16) -> Message {
        IoRequest {
            op: IoOp::MigrateAbort,
            file,
            block: 0,
            count: 0,
            buffer: 0,
            aux: 0,
            tag,
        }
        .encode()
    }
}

/// What a spawned shard service hands back: the addressable server, the
/// co-located migration agent, and the shared observability handles.
pub struct ShardService {
    /// The process clients (and `MigrateBegin`/`Commit`/`Abort`)
    /// address: the receptionist, or the sequential server itself.
    pub server: Pid,
    /// The destination-side migration agent (`MigratePull` goes here).
    pub agent: Pid,
    /// Worker pids (just the server for the sequential case).
    pub workers: Vec<Pid>,
    /// The team's shared counters.
    pub stats: Rc<RefCell<FileServerStats>>,
    /// The team's shared disk unit.
    pub disk: Rc<RefCell<DiskModel>>,
}

/// Spawns shard `i`'s file service on `host` — a
/// [`crate::shard::spawn_shard_server`] plus a co-located
/// [`MigrationAgent`] sharing the team's store, disk and stats, so the
/// shard can *receive* live migrations. The agent is spawned after the
/// team and never speaks unless pulled, so a service that no rebalancer
/// ever touches behaves exactly like the agent-less spawn.
pub fn spawn_shard_service(
    cl: &mut Cluster,
    host: HostId,
    map: &ShardMap,
    shard: usize,
    cfg: FileServerConfig,
    store: BlockStore,
) -> ShardService {
    let cfg = FileServerConfig {
        register: Some(map.logical_id(shard)),
        ..cfg
    };
    let shared = SharedServerState::new(cfg.build_disk(), store);
    let team = crate::team::spawn_file_server_shared(cl, host, cfg, shared.clone());
    let agent = cl.spawn(
        host,
        &format!("fs-migrate{shard}"),
        Box::new(MigrationAgent::new(shared)),
    );
    ShardService {
        server: team.server,
        agent,
        workers: team.workers,
        stats: team.stats,
        disk: team.disk,
    }
}

enum AgentPhase {
    Idle,
    /// Block `next` of `total` is on the wire to the source service.
    Pulling {
        next: u32,
        total: u32,
    },
    /// Block `next` is landing on the local disk.
    DiskWrite {
        next: u32,
        total: u32,
    },
}

/// The destination side of a live migration: adopts the file id into
/// the co-located service's store, pulls every block from the old
/// owner with ordinary reads, charges the local disk for each landed
/// block, and answers the rebalancer's `MigratePull` once the copy is
/// complete. One migration at a time; a failure mid-copy (the source
/// host dies, a read errors) drops the partial adoptee and reports the
/// failure, leaving the file intact at the old owner.
pub struct MigrationAgent {
    shared: SharedServerState,
    phase: AgentPhase,
    /// The in-progress pull: requester, request, and source service.
    current: Option<(Pid, IoRequest, Pid)>,
}

impl MigrationAgent {
    pub(crate) fn new(shared: SharedServerState) -> MigrationAgent {
        MigrationAgent {
            shared,
            phase: AgentPhase::Idle,
            current: None,
        }
    }

    fn rearm(&mut self, api: &mut Api<'_>) {
        self.phase = AgentPhase::Idle;
        self.current = None;
        api.receive_with_segment(AGENT_IN, 256);
    }

    fn reply_status(&mut self, api: &mut Api<'_>, status: IoStatus, value: u32) {
        let (from, req, _) = self.current.as_ref().expect("pull in progress");
        let reply = IoReply {
            status,
            file: req.file,
            value,
            aux: 0,
            owner: 0,
            tag: req.tag,
        }
        .encode();
        let _ = api.reply(reply, *from);
        self.rearm(api);
    }

    /// Drops the partial adoptee and reports the failed copy — the
    /// file stays where it was.
    fn abort_pull(&mut self, api: &mut Api<'_>) {
        let file = self.current.as_ref().expect("pull in progress").1.file;
        let _ = self.shared.store.borrow_mut().remove(file);
        self.reply_status(api, IoStatus::Error, 0);
    }

    fn pull_next(&mut self, api: &mut Api<'_>, next: u32, total: u32) {
        let (_, req, src) = self.current.as_ref().expect("pull in progress");
        let (file, tag, src) = (req.file, req.tag, *src);
        self.phase = AgentPhase::Pulling { next, total };
        api.send(
            crate::client::stub::read(file, next, BLOCK_SIZE as u32, AGENT_BUF, tag),
            src,
        );
    }

    fn finish_pull(&mut self, api: &mut Api<'_>, blocks: u32) {
        {
            let mut st = self.shared.stats.borrow_mut();
            st.migrated_in += 1;
        }
        self.reply_status(api, IoStatus::Ok, blocks);
    }
}

impl Program for MigrationAgent {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => self.rearm(api),
            Outcome::ReceiveSeg { from, msg, seg_len } => {
                let Some(req) = IoRequest::decode(&msg) else {
                    let req = IoRequest {
                        op: IoOp::MigratePull,
                        file: FileId(0),
                        block: 0,
                        count: 0,
                        buffer: 0,
                        aux: 0,
                        tag: msg.get_u16(20),
                    };
                    self.current = Some((from, req, from));
                    self.reply_status(api, IoStatus::Error, 0);
                    return;
                };
                let src = Pid::from_raw(req.aux);
                if req.op != IoOp::MigratePull || src.is_none() || seg_len == 0 {
                    self.current = Some((from, req, from));
                    self.reply_status(api, IoStatus::Error, 0);
                    return;
                }
                let name_bytes = api.mem_read(AGENT_IN, seg_len as usize).expect("in buffer");
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                self.current = Some((from, req, src.expect("checked")));
                let adopted =
                    self.shared
                        .store
                        .borrow_mut()
                        .adopt(req.file, &name, req.count as usize);
                match adopted {
                    Err(StoreError::Exists) => self.reply_status(api, IoStatus::Exists, 0),
                    Err(_) => self.reply_status(api, IoStatus::Error, 0),
                    Ok(()) => {
                        let total = req.count.div_ceil(BLOCK_SIZE as u32);
                        if total == 0 {
                            self.finish_pull(api, 0);
                        } else {
                            self.pull_next(api, 0, total);
                        }
                    }
                }
            }
            Outcome::Send(Ok(reply)) => {
                let AgentPhase::Pulling { next, total } = self.phase else {
                    api.exit();
                    return;
                };
                let reply = IoReply::decode(&reply);
                if reply.status != IoStatus::Ok {
                    self.abort_pull(api);
                    return;
                }
                let file = self.current.as_ref().expect("pull in progress").1.file;
                let data = api
                    .mem_read(AGENT_BUF, reply.value as usize)
                    .expect("staging fits");
                let n = data.len();
                self.shared
                    .store
                    .borrow_mut()
                    .write_block(file, next, &data)
                    .expect("adopted file accepts its own blocks");
                // The landed block costs a local disk write, contending
                // with the destination's live traffic like any other.
                let done = self.shared.disk.borrow_mut().request_striped(
                    api.now(),
                    file.0 as u32,
                    next,
                    n,
                );
                self.shared.stats.borrow_mut().disk = self.shared.disk.borrow().stats();
                self.phase = AgentPhase::DiskWrite { next, total };
                api.delay(done.since(api.now()));
            }
            // The source service's host died mid-copy: clean abort —
            // the partial copy is dropped, the file stays at the old
            // owner (whose drain the rebalancer will lift).
            Outcome::Send(Err(_)) if matches!(self.phase, AgentPhase::Pulling { .. }) => {
                self.abort_pull(api);
            }
            Outcome::Delay => {
                let AgentPhase::DiskWrite { next, total } = self.phase else {
                    api.exit();
                    return;
                };
                let next = next + 1;
                if next < total {
                    self.pull_next(api, next, total);
                } else {
                    self.finish_pull(api, total);
                }
            }
            _ => api.exit(),
        }
    }
}
