//! Client-side block caching with server-driven consistency.
//!
//! The paper (§6) argues raw page-at-a-time reads beat client caching
//! at 1983 RAM sizes; this module inverts the question. A workstation
//! gets a configurable [`BlockCache`] (capacity in blocks, LRU
//! eviction, keyed by `(file id, block)` so shard/replica id ranges
//! partition naturally), layered into the read path of
//! [`FsClient`],
//! [`ShardedFsClient`](crate::shard::ShardedFsClient) and
//! [`ReplicatedFsClient`](crate::replica::ReplicatedFsClient).
//!
//! Consistency is the server's job, selected by [`CacheMode`]:
//!
//! * **`Off`** — no cache, no agent; the client is construction- and
//!   wire-identical to the pre-cache client (the calibration suite
//!   pins the perturbation to exactly 0.0).
//! * **`WriteInvalidate`** — cached reads go out as
//!   [`IoOp::ReadCached`] carrying the client's cache-agent pid; the
//!   server records the agent as a *holder* of the file and, before
//!   acknowledging any write, sends each holder an
//!   [`IoOp::Invalidate`] callback (an ordinary V message — no kernel
//!   or transport changes). A dead holder costs the writer one
//!   failure-detection budget and is dropped, never wedging the write.
//! * **`Leases`** — instead of callbacks the server grants each cached
//!   read a time-bounded lease (reply `aux`, microseconds). A write
//!   waits out the longest unexpired lease; crashed clients simply
//!   expire.
//!
//! Two races are closed explicitly. A read in flight across a write
//! must not install stale data: the client snapshots the cache's
//! per-file version when it issues and skips the insert if an
//! invalidation bumped it meanwhile. A read *dispatched during* a
//! pending write never becomes a holder at all: the server answers it
//! with a [`CACHE_DENY`] grant (see `write_pending` in the server).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use v_kernel::{Api, Cluster, HostId, Outcome, Pid, Program};
use v_sim::{SimDuration, SimTime};

use crate::client::{FsCall, FsClient, FsClientReport, DATA_BUF};
use crate::proto::{IoOp, IoReply, IoRequest, IoStatus, CACHE_DENY, CACHE_UNTIL_INVALIDATED};
use crate::store::FileId;
use crate::BLOCK_SIZE;

/// Consistency scheme for client block caches, selected on the
/// *server* ([`FileServerConfig::cache_mode`]) and honored by caching
/// clients through the reply grant.
///
/// [`FileServerConfig::cache_mode`]: crate::server::FileServerConfig::cache_mode
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No caching: clients and servers behave exactly as before the
    /// cache layer existed.
    #[default]
    Off,
    /// Server tracks holders and calls them back before every write.
    WriteInvalidate,
    /// Server grants expiring read leases and writes wait them out.
    Leases,
}

/// Client-side cache knobs.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Scheme; `Off` spawns a plain uncached client.
    pub mode: CacheMode,
    /// Cache capacity in blocks (LRU beyond this).
    pub capacity_blocks: usize,
    /// CPU charged per cache hit (lookup + local copy) — hits are fast
    /// but not free.
    pub hit_cpu: SimDuration,
}

impl CacheConfig {
    /// Default CPU charge per hit: a lookup plus a 512 B memory copy.
    pub fn default_hit_cpu() -> SimDuration {
        SimDuration::from_micros(200)
    }

    /// No cache at all.
    pub fn off() -> CacheConfig {
        CacheConfig {
            mode: CacheMode::Off,
            capacity_blocks: 0,
            hit_cpu: Self::default_hit_cpu(),
        }
    }

    /// Write-invalidate cache of `capacity_blocks`.
    pub fn write_invalidate(capacity_blocks: usize) -> CacheConfig {
        CacheConfig {
            mode: CacheMode::WriteInvalidate,
            capacity_blocks,
            hit_cpu: Self::default_hit_cpu(),
        }
    }

    /// Lease-based cache of `capacity_blocks`.
    pub fn leases(capacity_blocks: usize) -> CacheConfig {
        CacheConfig {
            mode: CacheMode::Leases,
            capacity_blocks,
            hit_cpu: Self::default_hit_cpu(),
        }
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::off()
    }
}

/// Counters kept by a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (including lease expiries).
    pub misses: u64,
    /// Blocks installed.
    pub insertions: u64,
    /// Blocks evicted by LRU pressure.
    pub evictions: u64,
    /// Server `Invalidate` callbacks answered by the agent.
    pub callbacks: u64,
    /// Blocks dropped by invalidations (callbacks and local write
    /// purges).
    pub invalidated_blocks: u64,
    /// Hits rejected because the entry's lease had expired.
    pub lease_expirations: u64,
    /// Read replies not installed because the file was invalidated
    /// while the read was in flight.
    pub stale_skips: u64,
}

impl CacheStats {
    /// Hit rate over all lookups, in percent (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64 * 100.0
        }
    }
}

#[derive(Debug)]
struct Entry {
    data: Vec<u8>,
    /// LRU stamp: strictly increasing, so `min_by_key` is
    /// deterministic regardless of map iteration order.
    stamp: u64,
    /// Lease expiry; `None` = valid until invalidated.
    expires: Option<SimTime>,
}

/// A per-client block cache: LRU over `(file, block)` keys with
/// per-file version counters for in-flight-read coherence.
#[derive(Debug)]
pub struct BlockCache {
    capacity: usize,
    tick: u64,
    blocks: HashMap<(u16, u32), Entry>,
    versions: HashMap<u16, u64>,
    /// Counters.
    pub stats: CacheStats,
}

impl BlockCache {
    /// An empty cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> BlockCache {
        BlockCache {
            capacity,
            tick: 0,
            blocks: HashMap::new(),
            versions: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Cached blocks currently held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Looks up the first `count` bytes of a block, honoring lease
    /// expiry against `now` and refreshing LRU recency on a hit.
    pub fn lookup(
        &mut self,
        file: FileId,
        block: u32,
        count: usize,
        now: SimTime,
    ) -> Option<Vec<u8>> {
        let key = (file.0, block);
        let expired = matches!(
            self.blocks.get(&key),
            Some(e) if e.expires.is_some_and(|t| t <= now)
        );
        if expired {
            self.blocks.remove(&key);
            self.stats.lease_expirations += 1;
        }
        match self.blocks.get_mut(&key) {
            Some(e) if e.data.len() >= count => {
                self.tick += 1;
                e.stamp = self.tick;
                self.stats.hits += 1;
                Some(e.data[..count].to_vec())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs a block, evicting the least-recently-used entry when
    /// full. `expires` carries the lease (if any).
    pub fn insert(&mut self, file: FileId, block: u32, data: Vec<u8>, expires: Option<SimTime>) {
        if self.capacity == 0 {
            return;
        }
        let key = (file.0, block);
        if !self.blocks.contains_key(&key) && self.blocks.len() >= self.capacity {
            let victim = self
                .blocks
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty at capacity");
            self.blocks.remove(&victim);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.blocks.insert(
            key,
            Entry {
                data,
                stamp: self.tick,
                expires,
            },
        );
        self.stats.insertions += 1;
    }

    /// The file's invalidation version (bumped by every invalidation).
    pub fn version(&self, file: FileId) -> u64 {
        self.versions.get(&file.0).copied().unwrap_or(0)
    }

    /// Drops every cached block of `file` and bumps its version so
    /// in-flight reads refuse to install; returns the drop count.
    pub fn invalidate_file(&mut self, file: FileId) -> usize {
        *self.versions.entry(file.0).or_insert(0) += 1;
        let before = self.blocks.len();
        self.blocks.retain(|k, _| k.0 != file.0);
        let dropped = before - self.blocks.len();
        self.stats.invalidated_blocks += dropped as u64;
        dropped
    }

    /// Test/report hook: the cached bytes of a block, if held and
    /// unexpired bookkeeping aside (no stats, no LRU effect).
    pub fn peek(&self, file: FileId, block: u32) -> Option<&[u8]> {
        self.blocks.get(&(file.0, block)).map(|e| e.data.as_slice())
    }
}

/// The per-client invalidation-callback process: sits in `Receive` and
/// answers server [`IoOp::Invalidate`] messages by purging the file
/// from the shared [`BlockCache`]. Crashing its host makes the
/// server's callback fail with `HostDown` — the fault-model path the
/// consistency tests exercise.
pub struct CacheAgent {
    cache: Rc<RefCell<BlockCache>>,
}

impl CacheAgent {
    /// An agent serving `cache`.
    pub fn new(cache: Rc<RefCell<BlockCache>>) -> CacheAgent {
        CacheAgent { cache }
    }
}

impl Program for CacheAgent {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                let reply = match IoRequest::decode(&msg) {
                    Some(req) if req.op == IoOp::Invalidate => {
                        let mut c = self.cache.borrow_mut();
                        let dropped = c.invalidate_file(req.file);
                        c.stats.callbacks += 1;
                        IoReply {
                            status: IoStatus::Ok,
                            file: req.file,
                            value: dropped as u32,
                            aux: 0,
                            owner: 0,
                            tag: req.tag,
                        }
                    }
                    _ => IoReply {
                        status: IoStatus::Error,
                        file: FileId(0),
                        value: 0,
                        aux: 0,
                        owner: 0,
                        tag: 0,
                    },
                };
                let _ = api.reply(reply.encode(), from);
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// The cache hooks a caching client carries: the shared cache, the
/// agent's pid (advertised to servers in `ReadCached` requests), and
/// the per-hit CPU charge.
pub struct CacheLayer {
    cache: Rc<RefCell<BlockCache>>,
    agent: Pid,
    hit_cpu: SimDuration,
    /// Version snapshot taken when the in-flight read was issued.
    issued_version: u64,
}

/// Reads a cacheable single-block call's `(block, count)`.
fn cacheable_read(call: &FsCall) -> Option<(u32, u32)> {
    match call {
        FsCall::ReadExpect { block, count, .. } | FsCall::ReadAny { block, count }
            if *count as usize <= BLOCK_SIZE =>
        {
            Some((*block, *count))
        }
        _ => None,
    }
}

impl CacheLayer {
    /// A layer over `cache`, served by `agent`.
    pub fn new(cache: Rc<RefCell<BlockCache>>, agent: Pid, hit_cpu: SimDuration) -> CacheLayer {
        CacheLayer {
            cache,
            agent,
            hit_cpu,
            issued_version: 0,
        }
    }

    /// The shared cache.
    pub fn cache(&self) -> &Rc<RefCell<BlockCache>> {
        &self.cache
    }

    /// CPU charged per hit.
    pub fn hit_cpu(&self) -> SimDuration {
        self.hit_cpu
    }

    /// The agent pid as the request `aux` word.
    pub fn agent_aux(&self) -> u32 {
        self.agent.raw()
    }

    /// Tries to serve a read from the cache; `Some(data)` is a hit.
    pub(crate) fn try_hit(&mut self, call: &FsCall, file: FileId, now: SimTime) -> Option<Vec<u8>> {
        let (block, count) = cacheable_read(call)?;
        self.cache
            .borrow_mut()
            .lookup(file, block, count as usize, now)
    }

    /// Bookkeeping at issue time: writes purge the file locally (the
    /// server invalidates everyone else); reads snapshot the file
    /// version for the in-flight coherence check.
    pub(crate) fn on_issue(&mut self, call: &FsCall, file: FileId) {
        match call {
            FsCall::WriteFill { .. } => {
                self.cache.borrow_mut().invalidate_file(file);
            }
            _ => self.issued_version = self.cache.borrow().version(file),
        }
    }

    /// Installs a successful read reply's data, honoring the server's
    /// cacheability grant and the in-flight version check.
    pub(crate) fn install_reply(
        &mut self,
        api: &Api<'_>,
        call: &FsCall,
        file: FileId,
        reply: &IoReply,
        now: SimTime,
    ) {
        if reply.status != IoStatus::Ok {
            return;
        }
        let Some((block, count)) = cacheable_read(call) else {
            return;
        };
        let expires = match reply.aux {
            CACHE_DENY => return,
            CACHE_UNTIL_INVALIDATED => None,
            lease_us => Some(now + SimDuration::from_micros(lease_us as u64)),
        };
        let n = reply.value.min(count) as usize;
        if n == 0 {
            return;
        }
        let mut c = self.cache.borrow_mut();
        if c.version(file) != self.issued_version {
            c.stats.stale_skips += 1;
            return;
        }
        let data = api.mem_read(DATA_BUF, n).expect("fits");
        c.insert(file, block, data, expires);
    }
}

/// Handles to a spawned caching client: the client pid plus, when a
/// cache was attached, the agent pid and the shared cache for stats.
pub struct CachingClient {
    /// The scripted client process.
    pub client: Pid,
    /// The invalidation agent (None in `Off` mode).
    pub agent: Option<Pid>,
    /// The shared cache (None in `Off` mode).
    pub cache: Option<Rc<RefCell<BlockCache>>>,
}

impl CachingClient {
    /// Snapshot of the cache counters (zeroes in `Off` mode).
    pub fn stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.borrow().stats)
            .unwrap_or_default()
    }
}

/// Spawns a scripted client on `host` talking to `server`. In `Off`
/// mode this constructs exactly the pre-cache [`FsClient`] and spawns
/// nothing else; otherwise it spawns a [`CacheAgent`] sharing a fresh
/// [`BlockCache`] with the client.
pub fn spawn_caching_client(
    cl: &mut Cluster,
    host: HostId,
    server: Pid,
    script: Vec<FsCall>,
    report: Rc<RefCell<FsClientReport>>,
    cfg: &CacheConfig,
) -> CachingClient {
    if cfg.mode == CacheMode::Off || cfg.capacity_blocks == 0 {
        let client = cl.spawn(
            host,
            "fsclient",
            Box::new(FsClient::new(server, script, report)),
        );
        return CachingClient {
            client,
            agent: None,
            cache: None,
        };
    }
    let cache = Rc::new(RefCell::new(BlockCache::new(cfg.capacity_blocks)));
    let agent = cl.spawn(
        host,
        "cache-agent",
        Box::new(CacheAgent::new(cache.clone())),
    );
    let layer = CacheLayer::new(cache.clone(), agent, cfg.hit_cpu);
    let client = cl.spawn(
        host,
        "fsclient",
        Box::new(FsClient::new(server, script, report).with_cache(layer)),
    );
    CachingClient {
        client,
        agent: Some(agent),
        cache: Some(cache),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn lru_evicts_the_coldest_block() {
        let mut c = BlockCache::new(2);
        c.insert(FileId(1), 0, vec![0xAA; 512], None);
        c.insert(FileId(1), 1, vec![0xBB; 512], None);
        // Touch block 0 so block 1 is the LRU victim.
        assert!(c.lookup(FileId(1), 0, 512, t(0)).is_some());
        c.insert(FileId(1), 2, vec![0xCC; 512], None);
        assert_eq!(c.len(), 2);
        assert!(c.peek(FileId(1), 0).is_some());
        assert!(c.peek(FileId(1), 1).is_none(), "LRU block must go");
        assert!(c.peek(FileId(1), 2).is_some());
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn leases_expire_at_lookup_time() {
        let mut c = BlockCache::new(4);
        c.insert(FileId(1), 0, vec![0xAA; 512], Some(t(10)));
        assert!(c.lookup(FileId(1), 0, 512, t(5)).is_some());
        assert!(c.lookup(FileId(1), 0, 512, t(10)).is_none());
        assert_eq!(c.stats.lease_expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidation_bumps_the_version_and_drops_blocks() {
        let mut c = BlockCache::new(4);
        c.insert(FileId(1), 0, vec![0xAA; 512], None);
        c.insert(FileId(2), 0, vec![0xBB; 512], None);
        let v = c.version(FileId(1));
        assert_eq!(c.invalidate_file(FileId(1)), 1);
        assert_eq!(c.version(FileId(1)), v + 1);
        assert!(c.peek(FileId(1), 0).is_none());
        assert!(c.peek(FileId(2), 0).is_some(), "other files untouched");
    }

    #[test]
    fn short_reads_hit_only_when_enough_bytes_are_cached() {
        let mut c = BlockCache::new(4);
        c.insert(FileId(1), 0, vec![0xAA; 256], None);
        assert!(c.lookup(FileId(1), 0, 128, t(0)).is_some());
        assert!(c.lookup(FileId(1), 0, 512, t(0)).is_none());
    }
}
