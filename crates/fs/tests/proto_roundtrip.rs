//! Property tests: every representable I/O request and reply must
//! survive the 32-byte message packing unchanged — including with the
//! kernel's segment flag bits set, which share the message with the
//! protocol fields.

use proptest::prelude::*;
use v_fs::proto::{IoOp, IoReply, IoRequest, IoStatus};
use v_fs::store::FileId;
use v_kernel::Access;

proptest! {
    /// Request encode/decode is the identity for every opcode and any
    /// field values.
    #[test]
    fn io_request_round_trips(
        op in 1u8..=12,
        file in any::<u16>(),
        block in any::<u32>(),
        count in any::<u32>(),
        buffer in any::<u32>(),
        aux in any::<u32>(),
        tag in any::<u16>(),
    ) {
        let req = IoRequest {
            op: IoOp::from_u8(op).expect("valid opcode range"),
            file: FileId(file),
            block,
            count,
            buffer,
            aux,
            tag,
        };
        prop_assert_eq!(IoRequest::decode(&req.encode()), Some(req));
    }

    /// Round trip with a segment grant stamped on the message: the
    /// grant lives in byte 0 and bytes 24–31, which the protocol fields
    /// must never clobber (and vice versa).
    #[test]
    fn io_request_round_trips_with_segment_bits(
        op in 1u8..=12,
        file in any::<u16>(),
        block in any::<u32>(),
        count in any::<u32>(),
        tag in any::<u16>(),
        seg_start in any::<u32>(),
        seg_len in any::<u32>(),
        write_access in any::<bool>(),
    ) {
        let req = IoRequest {
            op: IoOp::from_u8(op).expect("valid opcode range"),
            file: FileId(file),
            block,
            count,
            buffer: 0x2000,
            aux: 0,
            tag,
        };
        let mut m = req.encode();
        let access = if write_access { Access::Write } else { Access::Read };
        m.set_segment(seg_start, seg_len, access);
        prop_assert_eq!(IoRequest::decode(&m), Some(req));
        let g = m.segment().expect("grant survives");
        prop_assert_eq!(g.start, seg_start);
        prop_assert_eq!(g.len, seg_len);
    }

    /// Reply encode/decode is the identity for every status code.
    #[test]
    fn io_reply_round_trips(
        status in 0u8..=6,
        file in any::<u16>(),
        value in any::<u32>(),
        aux in any::<u32>(),
        owner in any::<u32>(),
        tag in any::<u16>(),
    ) {
        let reply = IoReply {
            status: IoStatus::from_u8(status),
            file: FileId(file),
            value,
            aux,
            owner,
            tag,
        };
        prop_assert_eq!(IoReply::decode(&reply.encode()), reply);
    }
}

/// Undefined status bytes all collapse to `Error` — a forward-compatible
/// decode, pinned so a new status code cannot silently alias.
#[test]
fn unknown_status_bytes_decode_as_error() {
    for b in 7u8..=255 {
        assert_eq!(IoStatus::from_u8(b), IoStatus::Error);
    }
}
