//! The client cache's consistency contract under races and crashes.
//!
//! These tests pin the fault-model half of the caching design:
//!
//! * a write racing a caching reader never lets the reader observe
//!   stale bytes — holders are registered at dispatch and fenced by
//!   `write_pending`, so the race resolves to an invalidation or a
//!   denied grant, never a silent stale hit;
//! * a crashed caching client cannot wedge a writer: write-invalidate
//!   pays one kernel `HostDown` detection for the dead holder's
//!   callback and moves on; leases never contact holders at all, so a
//!   crash costs the writer nothing beyond the bounded lease wait;
//! * a warm cache keeps serving across a replica crash — hits never
//!   touch the wire, so they cannot even notice the dead server, and
//!   the first *miss* afterwards pays the ordinary failover.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::cache::{CacheAgent, CacheLayer};
use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::replica::{spawn_replica_group, ReplicaReport, ReplicatedFsClient};
use v_fs::{
    spawn_caching_client, spawn_file_server, BlockCache, BlockStore, CacheConfig, CacheMode,
    DiskModel, FileServerConfig, BLOCK_SIZE,
};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::{SimDuration, SimTime};

const FILL: u8 = 0x6C;

fn volume() -> BlockStore {
    let mut store = BlockStore::new();
    store
        .create_with("vol", &vec![FILL; 16 * BLOCK_SIZE])
        .unwrap();
    store
}

fn server_cfg(mode: CacheMode) -> FileServerConfig {
    FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(2)),
        cache_mode: mode,
        ..FileServerConfig::default()
    }
}

fn read_script(blocks: u32, passes: u32) -> Vec<FsCall> {
    let mut script = vec![FsCall::Open("vol".into())];
    for _ in 0..passes {
        for b in 0..blocks {
            script.push(FsCall::ReadExpect {
                block: b,
                count: BLOCK_SIZE as u32,
                expect: FILL,
            });
        }
    }
    script
}

fn write_script(blocks: u32) -> Vec<FsCall> {
    let mut script = vec![FsCall::Open("vol".into())];
    for b in 0..blocks {
        script.push(FsCall::WriteFill {
            block: b,
            count: BLOCK_SIZE as u32,
            fill: FILL,
        });
    }
    script
}

/// A writer racing a caching reader on a worker-team server: every
/// read the reader verifies is current (the writer re-fills the same
/// byte, so any stale short-circuit would still have to come from the
/// cache layer misbehaving, and the invalidation machinery must
/// actually fire mid-script). Workers share one holder table, so a
/// write dispatched through one worker invalidates a grant issued
/// through another.
#[test]
fn write_racing_cached_reads_invalidates_instead_of_serving_stale() {
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz));
    let cfg = FileServerConfig {
        workers: 2,
        ..server_cfg(CacheMode::WriteInvalidate)
    };
    let team = spawn_file_server(&mut cl, HostId(2), cfg, volume());
    cl.run();

    let rrep = Rc::new(RefCell::new(FsClientReport::default()));
    let reader = spawn_caching_client(
        &mut cl,
        HostId(0),
        team.server,
        read_script(4, 40),
        rrep.clone(),
        &CacheConfig::write_invalidate(16),
    );
    let wrep = Rc::new(RefCell::new(FsClientReport::default()));
    cl.spawn(
        HostId(1),
        "writer",
        Box::new(FsClient::new(team.server, write_script(4), wrep.clone())),
    );
    cl.run();

    let r = rrep.borrow().clone();
    let w = wrep.borrow().clone();
    assert!(r.done && r.errors == 0, "reader: {r:?}");
    assert_eq!(
        r.integrity_errors, 0,
        "stale bytes reached the reader: {r:?}"
    );
    assert!(w.done && w.errors == 0, "writer: {w:?}");
    let stats = team.stats.borrow().clone();
    assert!(
        stats.invalidations >= 1,
        "the race never exercised a callback: {stats:?}"
    );
    let cache = reader.stats();
    assert!(cache.hits > 0, "the reader never hit: {cache:?}");
    assert!(
        cache.invalidated_blocks >= 1,
        "no cached block was ever dropped by a callback: {cache:?}"
    );
}

/// A write-invalidate holder whose host crashed must not wedge a
/// writer: the invalidation callback to the dead agent fails through
/// the kernel's `HostDown` detection (one bounded wait), the holder is
/// dropped, and the write commits. A second write to the same file
/// pays nothing — the dead holder is gone.
#[test]
fn crashed_holder_costs_one_detection_and_never_wedges_the_writer() {
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz));
    let team = spawn_file_server(
        &mut cl,
        HostId(2),
        server_cfg(CacheMode::WriteInvalidate),
        volume(),
    );
    cl.run();

    // Warm a caching reader, then kill its host: the server still
    // remembers the (now unreachable) holder.
    let rrep = Rc::new(RefCell::new(FsClientReport::default()));
    spawn_caching_client(
        &mut cl,
        HostId(0),
        team.server,
        read_script(4, 1),
        rrep.clone(),
        &CacheConfig::write_invalidate(16),
    );
    cl.run();
    assert!(rrep.borrow().done, "warm phase: {:?}", rrep.borrow());
    cl.crash_host(HostId(0));

    let wrep = Rc::new(RefCell::new(FsClientReport::default()));
    cl.spawn(
        HostId(1),
        "writer",
        Box::new(FsClient::new(team.server, write_script(2), wrep.clone())),
    );
    cl.run();

    let w = wrep.borrow().clone();
    assert!(w.done && w.errors == 0, "writer must complete: {w:?}");
    let stats = team.stats.borrow().clone();
    assert_eq!(
        stats.invalidation_failures, 1,
        "exactly the first write's callback hits the dead host: {stats:?}"
    );
    assert_eq!(stats.invalidations, 0, "{stats:?}");
    // The wait is the kernel's bounded failure detection, not a hang:
    // seconds, not minutes — and only the first write pays it.
    assert!(
        w.elapsed_ms > 500.0,
        "the dead holder must cost a real detection wait: {w:?}"
    );
    assert!(w.elapsed_ms < 10_000.0, "detection must be bounded: {w:?}");
}

/// Under leases a crashed holder costs a writer nothing beyond the
/// lease clock: the server never contacts holders, so the write simply
/// waits out the unexpired grant and commits well inside a second.
#[test]
fn leases_let_writes_expire_past_a_crashed_holder() {
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz));
    let cfg = FileServerConfig {
        lease: SimDuration::from_millis(200),
        ..server_cfg(CacheMode::Leases)
    };
    let team = spawn_file_server(&mut cl, HostId(2), cfg, volume());
    cl.run();

    let rrep = Rc::new(RefCell::new(FsClientReport::default()));
    spawn_caching_client(
        &mut cl,
        HostId(0),
        team.server,
        read_script(4, 1),
        rrep.clone(),
        &CacheConfig::leases(16),
    );
    // Stop while the grants are still live, then kill the holder.
    cl.run_until(SimTime::from_millis(100));
    assert!(rrep.borrow().done, "warm phase: {:?}", rrep.borrow());
    cl.crash_host(HostId(0));

    let wrep = Rc::new(RefCell::new(FsClientReport::default()));
    cl.spawn(
        HostId(1),
        "writer",
        Box::new(FsClient::new(team.server, write_script(1), wrep.clone())),
    );
    cl.run();

    let w = wrep.borrow().clone();
    assert!(w.done && w.errors == 0, "writer must complete: {w:?}");
    let stats = team.stats.borrow().clone();
    assert_eq!(stats.lease_waits, 1, "{stats:?}");
    assert_eq!(stats.invalidations, 0, "leases never call back: {stats:?}");
    assert_eq!(stats.invalidation_failures, 0, "{stats:?}");
    assert!(
        w.elapsed_ms < 1000.0,
        "the wait is bounded by the 200 ms lease, not a detection: {w:?}"
    );
}

/// A warm cache rides through a replica crash: hits never touch the
/// wire, so reads of cached blocks keep completing against a dead
/// primary, and only the first miss afterwards pays the failover.
#[test]
fn warm_cache_serves_hits_across_a_replica_crash() {
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz));
    let hosts = [HostId(0), HostId(1)];
    let mut store = BlockStore::new();
    store
        .create_with("vol", &vec![FILL; 16 * BLOCK_SIZE])
        .unwrap();
    let cfg = server_cfg(CacheMode::WriteInvalidate);
    let pids = spawn_replica_group(&mut cl, &hosts, &cfg, &store);
    cl.run();

    // Warm blocks 0..4, then grind 2000 hit-reads over them (pure
    // local CPU — the crash lands in this window), then touch the
    // never-cached blocks 4..8.
    let mut script = read_script(4, 1);
    for i in 0..2000u32 {
        script.push(FsCall::ReadExpect {
            block: i % 4,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    for b in 4..8u32 {
        script.push(FsCall::ReadExpect {
            block: b,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    let ops = script.len() as u64;

    let cache = Rc::new(RefCell::new(BlockCache::new(16)));
    let agent = cl.spawn(
        HostId(2),
        "cache-agent",
        Box::new(CacheAgent::new(cache.clone())),
    );
    let layer = CacheLayer::new(
        cache.clone(),
        agent,
        CacheConfig::write_invalidate(16).hit_cpu,
    );
    let rep = Rc::new(RefCell::new(ReplicaReport::default()));
    cl.spawn(
        HostId(2),
        "replclient",
        Box::new(ReplicatedFsClient::new(pids.to_vec(), script, rep.clone()).with_cache(layer)),
    );
    // Warm completes well before 100 ms; the hit grind runs for
    // hundreds of ms after it. Kill the primary mid-grind.
    cl.run_until(SimTime::from_millis(100));
    cl.crash_host(HostId(0));
    cl.run();

    let r = rep.borrow().clone();
    assert!(r.fs.done && !r.gave_up, "{r:?}");
    assert_eq!(r.fs.integrity_errors, 0, "{r:?}");
    assert_eq!(r.fs.completed, ops, "{r:?}");
    assert_eq!(
        r.failovers, 1,
        "only the first post-crash miss touches the wire: {r:?}"
    );
    let stats = cache.borrow().stats;
    assert!(
        stats.hits >= 2000,
        "the grind must be served locally: {stats:?}"
    );
}
