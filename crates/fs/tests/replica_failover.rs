//! The replicated read-only root under host crashes.
//!
//! These tests pin the fault-model contract at the file-service layer:
//! a client of a replica group never hangs when a replica's host
//! crashes — the kernel's retransmission budget surfaces `HostDown`,
//! the client fails over to the next replica, and the *same* file ids
//! keep working because every replica serves a clone of one store.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::FsCall;
use v_fs::replica::{spawn_replica, spawn_replica_group, ReplicaReport, ReplicatedFsClient};
use v_fs::{BlockStore, DiskModel, FileServerConfig, BLOCK_SIZE};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId, Pid};
use v_sim::{SimDuration, SimTime};

const FILL: u8 = 0x5A;

fn root_store() -> BlockStore {
    let mut store = BlockStore::new();
    store
        .create_with("vmunix", &vec![FILL; 8 * BLOCK_SIZE])
        .unwrap();
    store
}

fn replica_cfg() -> FileServerConfig {
    FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(1)),
        ..FileServerConfig::default()
    }
}

/// A cluster of `replicas` server hosts plus `clients` client hosts,
/// with the replica group already spawned and quiescent.
fn replicated_cluster(replicas: usize, clients: usize) -> (Cluster, Vec<Pid>) {
    let cfg = ClusterConfig::three_mb().with_hosts(replicas + clients, CpuSpeed::Mc68000At10MHz);
    let mut cl = Cluster::new(cfg);
    let hosts: Vec<HostId> = (0..replicas).map(HostId).collect();
    let pids = spawn_replica_group(&mut cl, &hosts, &replica_cfg(), &root_store());
    cl.run(); // every replica reaches its Receive
    (cl, pids)
}

fn read_script(blocks: u32) -> Vec<FsCall> {
    let mut script = vec![FsCall::Open("vmunix".into())];
    for i in 0..blocks {
        script.push(FsCall::ReadExpect {
            block: i % 8,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    script
}

fn spawn_client(
    cl: &mut Cluster,
    host: HostId,
    pids: &[Pid],
    script: Vec<FsCall>,
) -> Rc<RefCell<ReplicaReport>> {
    let rep = Rc::new(RefCell::new(ReplicaReport::default()));
    cl.spawn(
        host,
        "replclient",
        Box::new(ReplicatedFsClient::new(pids.to_vec(), script, rep.clone())),
    );
    rep
}

/// Replicas are read-only: a write is refused with `ReadOnly` before
/// any side effect, and the data stays intact.
#[test]
fn replica_refuses_writes_and_keeps_data_intact() {
    let (mut cl, pids) = replicated_cluster(1, 1);
    let script = vec![
        FsCall::Open("vmunix".into()),
        FsCall::WriteFill {
            block: 0,
            count: BLOCK_SIZE as u32,
            fill: 0x00,
        },
        // The refused write must not have scribbled on the store.
        FsCall::ReadExpect {
            block: 0,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        },
    ];
    let rep = spawn_client(&mut cl, HostId(1), &pids, script);
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.fs.done, "{r:?}");
    assert_eq!(r.fs.errors, 1, "exactly the write is refused: {r:?}");
    assert_eq!(r.fs.integrity_errors, 0, "{r:?}");
    assert_eq!(r.fs.completed, 2, "open + read succeed: {r:?}");
    assert_eq!(r.failovers, 0);
}

/// Crash the current replica mid-script: the client must not hang — it
/// absorbs one `HostDown`, fails over, and finishes the script against
/// the next replica **with the file id it opened on the dead one**
/// (replica stores are clones, so ids agree).
#[test]
fn client_fails_over_across_a_replica_crash() {
    let (mut cl, pids) = replicated_cluster(3, 1);
    let rep = spawn_client(&mut cl, HostId(3), &pids, read_script(40));
    // Let the open and a few reads complete against replica 0, then
    // kill its host under the client.
    cl.run_until(SimTime::from_millis(60));
    cl.crash_host(HostId(0));
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.fs.done, "script must finish despite the crash: {r:?}");
    assert!(!r.gave_up, "{r:?}");
    assert!(r.failovers >= 1, "the crash must be noticed: {r:?}");
    assert_eq!(
        r.fs.integrity_errors, 0,
        "clone stores serve identical data: {r:?}"
    );
    assert_eq!(r.fs.completed, 41, "open + 40 reads: {r:?}");
    assert!(
        cl.kernel_stats(HostId(3)).host_down_failures >= 1,
        "failover must ride on the kernel's HostDown detection"
    );
}

/// The failover spike is bounded: exactly one read absorbs the
/// retransmission-budget wait; reads after the switch return to normal
/// latency against the surviving replica.
#[test]
fn failover_latency_spike_is_confined_to_one_operation() {
    let (mut cl, pids) = replicated_cluster(2, 1);
    let rep = spawn_client(&mut cl, HostId(2), &pids, read_script(40));
    cl.run_until(SimTime::from_millis(60));
    cl.crash_host(HostId(0));
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.fs.done && !r.gave_up, "{r:?}");
    let spikes: Vec<&(f64, f64)> = r.op_ms.iter().filter(|(_, lat)| *lat > 100.0).collect();
    assert_eq!(
        spikes.len(),
        1,
        "exactly one read absorbs the failure-detection wait: {:?}",
        r.op_ms
    );
    // After the spike, latency settles back to the no-fault regime.
    let after_spike = r.op_ms.iter().rev().take(5);
    for (_, lat) in after_spike {
        assert!(
            *lat < 100.0,
            "post-failover reads are normal: {:?}",
            r.op_ms
        );
    }
}

/// When every replica is dead the client gives up with `gave_up` —
/// bounded retries, no infinite replica carousel, no hang.
#[test]
fn client_gives_up_when_all_replicas_are_down() {
    let (mut cl, pids) = replicated_cluster(2, 1);
    let rep = spawn_client(&mut cl, HostId(2), &pids, read_script(40));
    cl.run_until(SimTime::from_millis(60));
    cl.crash_host(HostId(0));
    cl.crash_host(HostId(1));
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.gave_up, "{r:?}");
    assert!(!r.fs.done, "the script cannot have finished: {r:?}");
    assert!(
        r.failovers >= 2 * pids.len() as u64,
        "every replica tried before giving up: {r:?}"
    );
}

/// Failover under load: several clients hammer the group when the
/// primary dies. Every client finishes, every byte checks out, and the
/// surviving replicas pick up the whole working set.
#[test]
fn replica_group_survives_a_crash_under_concurrent_load() {
    const CLIENTS: usize = 4;
    let (mut cl, pids) = replicated_cluster(3, CLIENTS);
    let reps: Vec<_> = (0..CLIENTS)
        .map(|i| spawn_client(&mut cl, HostId(3 + i), &pids, read_script(30)))
        .collect();
    cl.run_until(SimTime::from_millis(80));
    cl.crash_host(HostId(0));
    cl.run();
    for (i, rep) in reps.iter().enumerate() {
        let r = rep.borrow().clone();
        assert!(r.fs.done, "client {i} must finish: {r:?}");
        assert!(!r.gave_up, "client {i}: {r:?}");
        assert_eq!(r.fs.integrity_errors, 0, "client {i}: {r:?}");
        assert_eq!(r.fs.completed, 31, "client {i}: {r:?}");
        assert!(
            r.failovers >= 1,
            "client {i} was mid-script on the primary: {r:?}"
        );
    }
}

/// A restarted host can rejoin the group: after the crash the service
/// respawns a replica there ([`spawn_replica`]), and a fresh client
/// whose list starts at the reborn replica is served by it — the
/// kernel's suspect probe gets an answer and lifts the suspicion.
#[test]
fn restarted_host_serves_a_respawned_replica() {
    let (mut cl, pids) = replicated_cluster(2, 2);
    let rep = spawn_client(&mut cl, HostId(2), &pids, read_script(20));
    cl.run_until(SimTime::from_millis(60));
    cl.crash_host(HostId(0));
    cl.run();
    assert!(rep.borrow().fs.done, "first client fails over and finishes");

    // Restart the dead host and respawn its replica — the kernel
    // remembers nothing, so registration happens afresh.
    cl.restart_host(HostId(0));
    let reborn = spawn_replica(&mut cl, HostId(0), &replica_cfg(), &root_store());
    cl.run();

    let mut order = vec![reborn];
    order.push(pids[1]);
    let rep2 = spawn_client(&mut cl, HostId(3), &order, read_script(10));
    cl.run();
    let r = rep2.borrow().clone();
    assert!(r.fs.done, "{r:?}");
    assert_eq!(r.fs.integrity_errors, 0, "{r:?}");
    assert_eq!(r.failovers, 0, "the reborn replica serves directly: {r:?}");
}
