//! `Forward` primitive tests: a forwarded request must be replied to by
//! the forwardee with the original client unblocked — locally, across
//! hosts, to a third host, and with the forwardee exercising the
//! client's segment grant via `MoveTo`/`MoveFrom`.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{
    Access, Api, Cluster, ClusterConfig, CpuSpeed, HostId, Message, Outcome, Pid, Program,
};

type Log = Rc<RefCell<Vec<String>>>;

fn cluster(hosts: usize) -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(hosts, CpuSpeed::Mc68000At10MHz))
}

/// Field the client stamps on its request.
const REQ_TAG: u32 = 0xC11E;
/// Field the worker stamps on its reply.
const WORKER_TAG: u32 = 0x3057;

/// Sends `rounds` requests to `to`, logging each reply's worker tag.
struct Client {
    to: Pid,
    rounds: u32,
    grant: Option<(u32, u32, Access)>,
    /// Check `(addr, len)` is filled with the byte after each reply
    /// (verifies a worker `MoveTo` deposited into this space).
    verify: Option<(u32, u32, u8)>,
    log: Log,
}
impl Client {
    fn issue(&mut self, api: &mut Api<'_>) {
        let mut m = Message::empty();
        m.set_u32(4, REQ_TAG);
        if let Some((start, len, access)) = self.grant {
            if access == Access::Read {
                api.mem_fill(start, len as usize, 0xDA).unwrap();
            }
            m.set_segment(start, len, access);
        }
        api.send(m, self.to);
    }
}
impl Program for Client {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => self.issue(api),
            Outcome::Send(Ok(reply)) => {
                self.log
                    .borrow_mut()
                    .push(format!("reply:{:#x}", reply.get_u32(8)));
                if let Some((addr, len, fill)) = self.verify {
                    let got = api.mem_read(addr, len as usize).unwrap();
                    let ok = got.iter().all(|&b| b == fill);
                    self.log.borrow_mut().push(format!("data:{ok}"));
                }
                self.rounds -= 1;
                if self.rounds == 0 {
                    api.exit();
                } else {
                    self.issue(api);
                }
            }
            Outcome::Send(Err(e)) => {
                self.log.borrow_mut().push(format!("send-err:{e:?}"));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Receives every request and forwards it to `worker`, unchanged.
struct Receptionist {
    worker: Pid,
    log: Log,
}
impl Program for Receptionist {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                let r = api.forward(msg, from, self.worker);
                self.log.borrow_mut().push(format!("forward:{}", r.is_ok()));
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// What the worker does with each forwarded request before replying.
#[derive(Clone, Copy)]
enum WorkerOp {
    /// Reply straight away.
    Reply,
    /// Pull `count` bytes of the client's read-granted segment at
    /// `src` into local memory first, verifying the fill byte.
    PullThenReply { src: u32, count: u32 },
    /// Push `count` fill bytes into the client's write-granted segment
    /// at `dest` first.
    PushThenReply { dest: u32, count: u32 },
}

/// Receives forwarded requests and serves them, replying to the client.
struct Worker {
    op: WorkerOp,
    log: Log,
    current: Option<Pid>,
}
impl Worker {
    fn reply_now(&mut self, api: &mut Api<'_>, to: Pid, req: &Message) {
        let mut m = Message::empty();
        m.set_u32(4, req.get_u32(4));
        m.set_u32(8, WORKER_TAG);
        let r = api.reply(m, to);
        self.log.borrow_mut().push(format!("reply:{}", r.is_ok()));
        api.receive();
    }
}
impl Program for Worker {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                assert_eq!(msg.get_u32(4), REQ_TAG, "forwarded message intact");
                match self.op {
                    WorkerOp::Reply => self.reply_now(api, from, &msg),
                    WorkerOp::PullThenReply { src, count } => {
                        self.current = Some(from);
                        api.move_from(from, 0x4000, src, count);
                    }
                    WorkerOp::PushThenReply { dest, count } => {
                        self.current = Some(from);
                        api.mem_fill(0x4000, count as usize, 0xEE).unwrap();
                        api.move_to(from, dest, 0x4000, count);
                    }
                }
            }
            Outcome::Move(Ok(n)) => {
                let from = self.current.take().expect("transfer in progress");
                if let WorkerOp::PullThenReply { count, .. } = self.op {
                    let got = api.mem_read(0x4000, count as usize).unwrap();
                    assert!(got.iter().all(|&b| b == 0xDA), "pulled client bytes");
                }
                self.log.borrow_mut().push(format!("move:{n}"));
                let mut m = Message::empty();
                m.set_u32(8, WORKER_TAG);
                let _ = api.reply(m, from);
                api.receive();
            }
            Outcome::Move(Err(e)) => panic!("worker transfer failed: {e:?}"),
            _ => api.exit(),
        }
    }
}

/// Spawns the team and client, runs to quiescence, returns the log and
/// the cluster for stats inspection.
#[allow(clippy::too_many_arguments)]
fn run_forward_verify(
    client_host: usize,
    team_host: usize,
    worker_host: usize,
    rounds: u32,
    grant: Option<(u32, u32, Access)>,
    verify: Option<(u32, u32, u8)>,
    op: WorkerOp,
) -> (Vec<String>, Cluster) {
    let hosts = 1 + client_host.max(team_host).max(worker_host);
    let mut cl = cluster(hosts);
    let log: Log = Default::default();
    let worker = cl.spawn(
        HostId(worker_host),
        "worker",
        Box::new(Worker {
            op,
            log: log.clone(),
            current: None,
        }),
    );
    let recep = cl.spawn(
        HostId(team_host),
        "receptionist",
        Box::new(Receptionist {
            worker,
            log: log.clone(),
        }),
    );
    cl.run(); // both blocked in Receive
    cl.spawn(
        HostId(client_host),
        "client",
        Box::new(Client {
            to: recep,
            rounds,
            grant,
            verify,
            log: log.clone(),
        }),
    );
    cl.run();
    let v = log.borrow().clone();
    (v, cl)
}

fn run_forward(
    client_host: usize,
    team_host: usize,
    worker_host: usize,
    rounds: u32,
    grant: Option<(u32, u32, Access)>,
    op: WorkerOp,
) -> (Vec<String>, Cluster) {
    run_forward_verify(client_host, team_host, worker_host, rounds, grant, None, op)
}

fn count(log: &[String], entry: &str) -> usize {
    log.iter().filter(|l| *l == entry).count()
}

#[test]
fn local_forward_worker_replies_and_client_unblocks() {
    let (log, cl) = run_forward(0, 0, 0, 3, None, WorkerOp::Reply);
    assert_eq!(count(&log, "forward:true"), 3, "{log:?}");
    assert_eq!(count(&log, &format!("reply:{WORKER_TAG:#x}")), 3, "{log:?}");
    assert_eq!(cl.kernel_stats(HostId(0)).forwards, 3);
}

#[test]
fn cross_host_forward_rebinds_the_client_to_the_worker() {
    // Client on host 0; receptionist and worker share host 1 — the
    // server-team deployment. The worker's Reply must complete the
    // client's exchange even though the client sent to the receptionist.
    let (log, cl) = run_forward(0, 1, 1, 4, None, WorkerOp::Reply);
    assert_eq!(count(&log, "forward:true"), 4, "{log:?}");
    assert_eq!(count(&log, &format!("reply:{WORKER_TAG:#x}")), 4, "{log:?}");
    assert_eq!(cl.kernel_stats(HostId(1)).forwards, 4);
    assert_eq!(
        cl.kernel_stats(HostId(0)).forward_rebinds,
        4,
        "every exchange rebound on the client's kernel"
    );
    assert_eq!(cl.kernel_stats(HostId(0)).send_timeouts, 0);
}

#[test]
fn forward_to_a_third_host_hands_the_exchange_off() {
    // Client, receptionist and worker on three different kernels.
    let (log, cl) = run_forward(0, 1, 2, 3, None, WorkerOp::Reply);
    assert_eq!(count(&log, "forward:true"), 3, "{log:?}");
    assert_eq!(count(&log, &format!("reply:{WORKER_TAG:#x}")), 3, "{log:?}");
    assert_eq!(cl.kernel_stats(HostId(1)).forwards, 3);
    assert_eq!(cl.kernel_stats(HostId(0)).forward_rebinds, 3);
}

#[test]
fn forward_back_to_the_clients_host_converts_to_a_local_exchange() {
    // The forwardee lives on the client's own kernel: the rebind note
    // doubles as the hand-off and the exchange finishes locally.
    let (log, cl) = run_forward(0, 1, 0, 2, None, WorkerOp::Reply);
    assert_eq!(count(&log, "forward:true"), 2, "{log:?}");
    assert_eq!(count(&log, &format!("reply:{WORKER_TAG:#x}")), 2, "{log:?}");
    assert_eq!(cl.kernel_stats(HostId(1)).forwards, 2);
}

#[test]
fn forwardee_pulls_the_clients_segment_with_move_from() {
    // Page-write shape: the client grants read access on its buffer,
    // the *worker* (not the receptionist) pulls it, then replies.
    let (log, _cl) = run_forward(
        0,
        1,
        1,
        2,
        Some((0x2000, 256, Access::Read)),
        WorkerOp::PullThenReply {
            src: 0x2000,
            count: 256,
        },
    );
    assert_eq!(count(&log, "move:256"), 2, "{log:?}");
    assert_eq!(count(&log, &format!("reply:{WORKER_TAG:#x}")), 2, "{log:?}");
}

#[test]
fn forwardee_pushes_into_the_clients_segment_with_move_to() {
    // Page-read shape: the client grants write access on its buffer and
    // the worker deposits the data before replying; the client checks
    // its own buffer after each reply.
    let (log, _cl) = run_forward_verify(
        0,
        1,
        1,
        2,
        Some((0x2000, 256, Access::Write)),
        Some((0x2000, 256, 0xEE)),
        WorkerOp::PushThenReply {
            dest: 0x2000,
            count: 256,
        },
    );
    assert_eq!(count(&log, "move:256"), 2, "{log:?}");
    assert_eq!(count(&log, &format!("reply:{WORKER_TAG:#x}")), 2, "{log:?}");
    assert_eq!(
        count(&log, "data:true"),
        2,
        "worker bytes deposited: {log:?}"
    );
}

#[test]
fn forwarding_an_unreceived_exchange_is_refused() {
    struct BadForwarder {
        log: Log,
    }
    impl Program for BadForwarder {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => {
                    // Nobody ever sent to us: both a made-up local pid
                    // and a made-up remote pid must be refused.
                    let me = api.self_pid();
                    let local = Pid::new(api.local_host(), 99);
                    let remote = Pid::new(v_kernel::LogicalHost(2), 7);
                    for from in [local, remote] {
                        let r = api.forward(Message::empty(), from, me);
                        self.log.borrow_mut().push(format!("forward:{r:?}"));
                    }
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    let mut cl = cluster(2);
    let log: Log = Default::default();
    cl.spawn(
        HostId(0),
        "bad",
        Box::new(BadForwarder { log: log.clone() }),
    );
    cl.run();
    let v = log.borrow().clone();
    assert_eq!(v.len(), 2);
    for entry in &v {
        assert!(entry.contains("NotAwaitingReply"), "{v:?}");
    }
    assert_eq!(cl.kernel_stats(HostId(0)).forwards, 0);
}

#[test]
fn forwarded_exchanges_survive_a_lossy_network() {
    // 12% loss on every delivery: the rebind notification, the hand-off
    // and the worker's reply all get dropped sometimes. The duplicate-
    // Send path re-sends the cached note, so every exchange still
    // completes exactly once.
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.faults = v_net::FaultPlan::with_loss(0.12);
    let mut cl = Cluster::new(cfg);
    let log: Log = Default::default();
    let worker = cl.spawn(
        HostId(1),
        "worker",
        Box::new(Worker {
            op: WorkerOp::Reply,
            log: log.clone(),
            current: None,
        }),
    );
    let recep = cl.spawn(
        HostId(1),
        "receptionist",
        Box::new(Receptionist {
            worker,
            log: log.clone(),
        }),
    );
    cl.run();
    cl.spawn(
        HostId(0),
        "client",
        Box::new(Client {
            to: recep,
            rounds: 25,
            grant: None,
            verify: None,
            log: log.clone(),
        }),
    );
    cl.run();
    let v = log.borrow().clone();
    assert_eq!(
        count(&v, &format!("reply:{WORKER_TAG:#x}")),
        25,
        "every exchange completed: {v:?}"
    );
    let client_stats = cl.kernel_stats(HostId(0));
    assert_eq!(client_stats.send_timeouts, 0);
    assert_eq!(cl.kernel_stats(HostId(1)).forwards, 25);
}

#[test]
fn replying_after_forwarding_is_refused() {
    // Once forwarded, the exchange no longer belongs to the forwarder.
    struct ForwardThenReply {
        worker: Pid,
        log: Log,
    }
    impl Program for ForwardThenReply {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.receive(),
                Outcome::Receive { from, msg } => {
                    api.forward(msg, from, self.worker).unwrap();
                    let r = api.reply(Message::empty(), from);
                    self.log.borrow_mut().push(format!("late-reply:{r:?}"));
                    api.receive();
                }
                _ => api.exit(),
            }
        }
    }
    let mut cl = cluster(2);
    let log: Log = Default::default();
    let worker = cl.spawn(
        HostId(1),
        "worker",
        Box::new(Worker {
            op: WorkerOp::Reply,
            log: log.clone(),
            current: None,
        }),
    );
    let recep = cl.spawn(
        HostId(1),
        "recep",
        Box::new(ForwardThenReply {
            worker,
            log: log.clone(),
        }),
    );
    cl.run();
    cl.spawn(
        HostId(0),
        "client",
        Box::new(Client {
            to: recep,
            rounds: 1,
            grant: None,
            verify: None,
            log: log.clone(),
        }),
    );
    cl.run();
    let v = log.borrow().clone();
    assert!(
        v.iter()
            .any(|l| l.contains("late-reply:Err(NotAwaitingReply)")),
        "{v:?}"
    );
    // The worker's genuine reply still completed the exchange.
    assert_eq!(count(&v, &format!("reply:{WORKER_TAG:#x}")), 1, "{v:?}");
}
