//! Kernel scenario tests: grant enforcement, naming edge cases, and
//! protocol corner paths that the workload-level suites do not isolate.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{
    logical, Access, Api, Cluster, ClusterConfig, CpuSpeed, HostId, KernelError, Message, Outcome,
    Pid, Program, Scope,
};
use v_sim::SimDuration;

type Log = Rc<RefCell<Vec<String>>>;

fn cluster(hosts: usize) -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(hosts, CpuSpeed::Mc68000At10MHz))
}

/// Grants `grant` (if any) to `to` and logs the send outcome.
struct GrantingSender {
    to: Pid,
    grant: Option<(u32, u32, Access)>,
    log: Log,
}
impl Program for GrantingSender {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                let mut m = Message::empty();
                if let Some((start, len, access)) = self.grant {
                    api.mem_fill(start, len as usize, 0xDD).unwrap();
                    m.set_segment(start, len, access);
                }
                api.send(m, self.to);
            }
            Outcome::Send(r) => {
                self.log.borrow_mut().push(format!("send:{}", r.is_ok()));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Receives one message and attempts a transfer, logging the outcome.
struct MoveAttempt {
    op: fn(&mut Api<'_>, Pid),
    log: Log,
    from: Option<Pid>,
}
impl Program for MoveAttempt {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, .. } => {
                self.from = Some(from);
                (self.op)(api, from);
            }
            Outcome::Move(r) => {
                self.log.borrow_mut().push(match r {
                    Ok(n) => format!("move:ok:{n}"),
                    Err(e) => format!("move:err:{e:?}"),
                });
                let _ = api.reply(Message::empty(), self.from.expect("received"));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

fn run_move_case(
    grant: Option<(u32, u32, Access)>,
    op: fn(&mut Api<'_>, Pid),
    remote: bool,
) -> Vec<String> {
    let mut cl = cluster(2);
    let log: Log = Default::default();
    let server = cl.spawn(
        HostId(0),
        "mover",
        Box::new(MoveAttempt {
            op,
            log: log.clone(),
            from: None,
        }),
    );
    cl.spawn(
        HostId(if remote { 1 } else { 0 }),
        "granter",
        Box::new(GrantingSender {
            to: server,
            grant,
            log: log.clone(),
        }),
    );
    cl.run();
    let v = log.borrow().clone();
    v
}

#[test]
fn move_to_without_any_grant_fails() {
    for remote in [false, true] {
        let log = run_move_case(
            None,
            |api, from| api.move_to(from, 0x1000, 0x1000, 64),
            remote,
        );
        assert!(
            log.contains(&"move:err:NoSegmentAccess".to_string()),
            "remote={remote}: {log:?}"
        );
    }
}

#[test]
fn move_to_outside_grant_range_fails() {
    for remote in [false, true] {
        let log = run_move_case(
            Some((0x1000, 128, Access::ReadWrite)),
            |api, from| api.move_to(from, 0x1000, 0x1000, 256), // 256 > 128
            remote,
        );
        assert!(
            log.contains(&"move:err:NoSegmentAccess".to_string()),
            "remote={remote}: {log:?}"
        );
    }
}

#[test]
fn move_to_against_read_only_grant_fails() {
    for remote in [false, true] {
        let log = run_move_case(
            Some((0x1000, 512, Access::Read)),
            |api, from| api.move_to(from, 0x1000, 0x1000, 512),
            remote,
        );
        assert!(
            log.contains(&"move:err:NoSegmentAccess".to_string()),
            "remote={remote}: {log:?}"
        );
    }
}

#[test]
fn move_from_against_write_only_grant_fails() {
    for remote in [false, true] {
        let log = run_move_case(
            Some((0x1000, 512, Access::Write)),
            |api, from| api.move_from(from, 0x2000, 0x1000, 512),
            remote,
        );
        assert!(
            log.contains(&"move:err:NoSegmentAccess".to_string()),
            "remote={remote}: {log:?}"
        );
    }
}

#[test]
fn move_within_grant_succeeds_both_ways() {
    for remote in [false, true] {
        let log = run_move_case(
            Some((0x1000, 512, Access::ReadWrite)),
            |api, from| api.move_from(from, 0x2000, 0x1000, 512),
            remote,
        );
        assert!(log.contains(&"move:ok:512".to_string()), "{log:?}");
        assert!(log.contains(&"send:true".to_string()), "{log:?}");
    }
}

#[test]
fn move_to_nonblocked_process_fails() {
    // The target never sent to us, so it is not awaiting our reply.
    struct Idle;
    impl Program for Idle {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            if let Outcome::Started = outcome {
                api.receive();
            } else {
                api.exit();
            }
        }
    }
    struct Violator {
        victim: Pid,
        log: Log,
    }
    impl Program for Violator {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.move_to(self.victim, 0, 0, 16),
                Outcome::Move(r) => {
                    self.log.borrow_mut().push(format!("{r:?}"));
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    let mut cl = cluster(2);
    let log: Log = Default::default();
    let victim = cl.spawn(HostId(1), "idle", Box::new(Idle));
    cl.spawn(
        HostId(0),
        "violator",
        Box::new(Violator {
            victim,
            log: log.clone(),
        }),
    );
    cl.run();
    assert_eq!(log.borrow().as_slice(), ["Err(NotBlocked)"]);
}

#[test]
fn reply_with_segment_respects_write_grant() {
    struct SegReplier {
        seg_len: u32,
        log: Log,
    }
    impl Program for SegReplier {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.receive(),
                Outcome::Receive { from, msg } => {
                    let g = msg.segment().expect("client granted");
                    api.mem_fill(0x5000, self.seg_len as usize, 0x77).unwrap();
                    let r = api.reply_with_segment(
                        Message::empty(),
                        from,
                        g.start,
                        0x5000,
                        self.seg_len,
                    );
                    self.log.borrow_mut().push(format!("reply:{r:?}"));
                    if r.is_err() {
                        // Unblock the client so the run terminates.
                        let _ = api.reply(Message::empty(), from);
                    }
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    for (grant_len, seg_len, expect_ok) in [(512u32, 512u32, true), (128, 512, false)] {
        let mut cl = cluster(2);
        let log: Log = Default::default();
        let server = cl.spawn(
            HostId(1),
            "segreplier",
            Box::new(SegReplier {
                seg_len,
                log: log.clone(),
            }),
        );
        cl.spawn(
            HostId(0),
            "client",
            Box::new(GrantingSender {
                to: server,
                grant: Some((0x3000, grant_len, Access::Write)),
                log: log.clone(),
            }),
        );
        cl.run();
        let log = log.borrow();
        if expect_ok {
            assert!(log.iter().any(|s| s == "reply:Ok(())"), "{log:?}");
        } else {
            assert!(log.iter().any(|s| s.contains("NoSegmentAccess")), "{log:?}");
        }
    }
}

#[test]
fn getpid_remote_scope_skips_local_table() {
    struct Query {
        scope: Scope,
        log: Log,
    }
    impl Program for Query {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => {
                    // Register *locally visible only* on this kernel.
                    api.set_pid(logical::NAME_SERVER, api.self_pid(), Scope::Local);
                    api.get_pid(logical::NAME_SERVER, self.scope);
                }
                Outcome::GetPid(r) => {
                    self.log.borrow_mut().push(format!("{}", r.is_some()));
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    // Local scope finds it; Remote scope broadcasts and nobody answers.
    for (scope, expect) in [(Scope::Local, "true"), (Scope::Remote, "false")] {
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        cfg.protocol.getpid_timeout = SimDuration::from_millis(5);
        let mut cl = Cluster::new(cfg);
        let log: Log = Default::default();
        cl.spawn(
            HostId(0),
            "query",
            Box::new(Query {
                scope,
                log: log.clone(),
            }),
        );
        cl.run();
        assert_eq!(log.borrow().as_slice(), [expect], "scope {scope:?}");
    }
}

#[test]
fn getpid_retries_broadcast_before_giving_up() {
    struct Query {
        log: Log,
    }
    impl Program for Query {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.get_pid(logical::EXEC_SERVER, Scope::Both),
                Outcome::GetPid(r) => {
                    self.log.borrow_mut().push(format!("{r:?}"));
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.getpid_timeout = SimDuration::from_millis(5);
    cfg.protocol.getpid_retries = 3;
    let mut cl = Cluster::new(cfg);
    let log: Log = Default::default();
    cl.spawn(HostId(0), "query", Box::new(Query { log: log.clone() }));
    cl.run();
    assert_eq!(log.borrow().as_slice(), ["None"]);
    // Initial broadcast + 3 retries.
    assert_eq!(cl.kernel_stats(HostId(0)).getpid_broadcasts, 4);
}

#[test]
fn message_exchange_works_between_processes_on_all_host_pairs() {
    // Smoke test over a larger cluster: every host can talk to every
    // other host (and itself).
    let n = 6;
    let mut cl = cluster(n);
    let log: Log = Default::default();
    struct Echo1;
    impl Program for Echo1 {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.receive(),
                Outcome::Receive { from, msg } => {
                    let _ = api.reply(msg, from);
                    api.receive();
                }
                _ => api.exit(),
            }
        }
    }
    let servers: Vec<Pid> = (0..n)
        .map(|i| cl.spawn(HostId(i), "echo", Box::new(Echo1)))
        .collect();
    for i in 0..n {
        for (j, &server) in servers.iter().enumerate() {
            cl.spawn(
                HostId(i),
                "oneshot",
                Box::new(GrantingSender {
                    to: server,
                    grant: None,
                    log: {
                        let l = log.clone();
                        l.borrow_mut().push(format!("spawn:{i}->{j}"));
                        l
                    },
                }),
            );
        }
    }
    cl.run();
    let ok = log.borrow().iter().filter(|s| *s == "send:true").count();
    assert_eq!(ok, n * n, "{:?}", log.borrow());
}

#[test]
fn zero_byte_move_completes() {
    let log = run_move_case(
        Some((0x1000, 512, Access::ReadWrite)),
        |api, from| api.move_to(from, 0x1000, 0x1000, 0),
        true,
    );
    assert!(log.contains(&"move:ok:0".to_string()), "{log:?}");
}

#[test]
fn send_failure_after_exhausted_retries_reports_host_down() {
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.retransmit_timeout = SimDuration::from_millis(5);
    cfg.protocol.max_retries = 2;
    // Lose everything: no exchange can ever complete.
    cfg.faults = v_net::FaultPlan::with_loss(1.0);
    let mut cl = Cluster::new(cfg);
    let log: Log = Default::default();
    struct Blackhole;
    impl Program for Blackhole {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            if let Outcome::Started = outcome {
                api.receive();
            } else {
                api.exit();
            }
        }
    }
    let server = cl.spawn(HostId(1), "blackhole", Box::new(Blackhole));
    cl.spawn(
        HostId(0),
        "sender",
        Box::new(GrantingSender {
            to: server,
            grant: None,
            log: log.clone(),
        }),
    );
    cl.run();
    assert_eq!(log.borrow().as_slice(), ["send:false"]);
    let st = cl.kernel_stats(HostId(0));
    assert_eq!(st.send_timeouts, 1);
    assert_eq!(st.retransmissions, 2);
    let _ = KernelError::HostDown; // documented failure mode
}

#[test]
fn lost_reply_is_recovered_from_cache_even_after_replier_exits() {
    // Regression (found by proptest): the replier answers and exits; the
    // reply packet is lost. The sender's retransmission must be answered
    // from the alien's cached reply — not nacked because the process is
    // gone, and not stonewalled with reply-pending.
    struct ReplyAndExit;
    impl Program for ReplyAndExit {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.receive(),
                Outcome::Receive { from, .. } => {
                    let mut m = Message::empty();
                    m.set_u32(4, 0xCAFE);
                    let _ = api.reply(m, from);
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    struct CheckedSender {
        to: Pid,
        log: Log,
    }
    impl Program for CheckedSender {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.send(Message::empty(), self.to),
                Outcome::Send(Ok(r)) => {
                    self.log.borrow_mut().push(format!("ok:{:x}", r.get_u32(4)));
                    api.exit();
                }
                Outcome::Send(Err(e)) => {
                    self.log.borrow_mut().push(format!("err:{e:?}"));
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    // Find a seed where exactly the reply packet is lost: sweep seeds
    // with ~30% loss until the first exchange needs a retransmission and
    // still succeeds. With the bug, such runs produced
    // Err(NonexistentProcess).
    let mut exercised = false;
    for seed in 0..40u64 {
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        cfg.faults = v_net::FaultPlan::with_loss(0.3);
        cfg.seed = seed;
        cfg.protocol.retransmit_timeout = SimDuration::from_millis(5);
        let mut cl = Cluster::new(cfg);
        let log: Log = Default::default();
        let server = cl.spawn(HostId(1), "reply-exit", Box::new(ReplyAndExit));
        cl.spawn(
            HostId(0),
            "sender",
            Box::new(CheckedSender {
                to: server,
                log: log.clone(),
            }),
        );
        cl.run();
        let log = log.borrow();
        // A HostDown is legitimate at 30% loss (the retry budget can
        // genuinely run out); the bug's signature was a spurious
        // NonexistentProcess from nacking the cached-reply alien.
        assert!(
            log[0] == "ok:cafe" || log[0] == "err:HostDown",
            "seed {seed}: {log:?}"
        );
        if log[0] == "ok:cafe" && cl.kernel_stats(HostId(1)).replies_retransmitted > 0 {
            exercised = true;
        }
    }
    assert!(exercised, "no seed exercised the cached-reply path");
}
