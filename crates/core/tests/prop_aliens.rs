//! Property tests for the alien table: duplicate filtering must be
//! correct under arbitrary interleavings of fresh sends, retransmissions
//! and stale packets.

use proptest::prelude::*;

use v_kernel::aliens::{AlienState, AlienTable, SendVerdict};
use v_kernel::pid::{LogicalHost, Pid};
use v_wire::SendBody;

fn pid(l: u16) -> Pid {
    Pid::new(LogicalHost(2), l)
}

fn body() -> SendBody {
    SendBody {
        msg: [0u8; 32],
        appended: vec![],
        appended_from: 0,
    }
}

proptest! {
    /// For any packet schedule: a given (src, seq) is delivered at most
    /// once, and every Deliver carries a seq strictly newer than the
    /// previous delivered seq of that source.
    #[test]
    fn at_most_once_delivery_per_exchange(
        // (source index 0..3, seq 1..20) arrival schedule with repeats.
        schedule in prop::collection::vec((0u16..3, 1u32..20), 1..120),
        replied in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let mut table = AlienTable::new(8);
        let dst = pid(0x99);
        let mut last_delivered: [Option<u32>; 3] = [None; 3];
        for (i, &(s, seq)) in schedule.iter().enumerate() {
            let src = pid(s + 1);
            let verdict = table.admit(src, seq, dst, body());
            match verdict {
                SendVerdict::Deliver => {
                    if let Some(prev) = last_delivered[s as usize] {
                        prop_assert!(
                            seq.wrapping_sub(prev) as i32 > 0,
                            "redelivered old seq {seq} after {prev}"
                        );
                    }
                    last_delivered[s as usize] = Some(seq);
                    // Simulate the receiver eventually replying (or not).
                    if replied[i % replied.len()] {
                        table.get_mut(src).unwrap().state = AlienState::Replied {
                            packet: vec![seq as u8],
                            at: v_sim::SimTime::ZERO,
                        };
                    } else {
                        table.get_mut(src).unwrap().state = AlienState::Delivered;
                    }
                }
                SendVerdict::RetransmitReply(p) => {
                    // Only ever for the exchange that was last delivered
                    // and replied.
                    prop_assert_eq!(last_delivered[s as usize], Some(seq));
                    prop_assert_eq!(p, vec![seq as u8]);
                }
                SendVerdict::ReplyPending | SendVerdict::Drop => {}
            }
        }
    }

    /// The pool never exceeds its capacity, whatever the schedule.
    #[test]
    fn pool_respects_capacity(
        cap in 1usize..6,
        schedule in prop::collection::vec((0u16..12, 1u32..6), 1..200),
    ) {
        let mut table = AlienTable::new(cap);
        let dst = pid(0x99);
        for &(s, seq) in &schedule {
            let _ = table.admit(pid(s + 1), seq, dst, body());
            prop_assert!(table.len() <= cap, "{} > {cap}", table.len());
        }
    }

    /// Sweeping only ever removes replied aliens, and repeated sweeps are
    /// idempotent at a fixed time.
    #[test]
    fn sweep_removes_only_replied(
        n in 1u16..10,
        reply_mask in any::<u16>(),
    ) {
        let mut table = AlienTable::new(16);
        let dst = pid(0x99);
        for i in 0..n {
            table.admit(pid(i + 1), 1, dst, body());
            if reply_mask & (1 << i) != 0 {
                table.get_mut(pid(i + 1)).unwrap().state = AlienState::Replied {
                    packet: vec![],
                    at: v_sim::SimTime::ZERO,
                };
            }
        }
        let replied = (0..n).filter(|i| reply_mask & (1 << i) != 0).count();
        let now = v_sim::SimTime::from_millis(10_000);
        let keep = v_sim::SimDuration::from_millis(100);
        let freed = table.sweep(now, keep);
        prop_assert_eq!(freed, replied);
        prop_assert_eq!(table.len(), n as usize - replied);
        prop_assert_eq!(table.sweep(now, keep), 0);
    }
}
