//! The receive/dispatch boundary under hostile input: frames that no
//! in-simulation kernel would send — unknown packet kinds, corrupted
//! checksums, truncated headers — must be counted in the kernel stats
//! and dropped without disturbing the protocol engine.

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_net::{EtherType, Frame, MacAddr};

/// FNV-1a 32-bit, restated from the wire-format spec so the test can
/// forge checksum-valid frames with contents `v_wire::encode` refuses to
/// produce.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Hand-builds an interkernel packet with an arbitrary kind byte, zero
/// payload and a correct checksum.
fn forged_packet(kind: u8) -> Vec<u8> {
    let mut header = vec![0u8; 32];
    header[0] = kind;
    let sum = fnv1a(&header);
    header[28..32].copy_from_slice(&sum.to_le_bytes());
    header
}

fn two_hosts() -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz))
}

#[test]
fn unknown_packet_kind_is_counted_and_dropped() {
    let mut cl = two_hosts();
    let target = HostId(0);
    for kind in [0u8, 42, 0xFF] {
        let frame = Frame::new(
            MacAddr(1),
            MacAddr(2),
            EtherType::INTERKERNEL,
            forged_packet(kind),
        );
        cl.inject_frame(target, frame);
    }
    cl.run();
    let stats = cl.kernel_stats(target);
    assert_eq!(stats.unknown_kind_drops, 3, "every forged kind counted");
    assert_eq!(stats.checksum_drops, 0, "intact frames are not miscounted");
    // Nothing was delivered, retried or nacked as a consequence.
    assert_eq!(stats.aliens_allocated, 0);
    assert_eq!(stats.nacks_sent, 0);
}

#[test]
fn corrupted_and_truncated_frames_count_as_checksum_drops() {
    let mut cl = two_hosts();
    let target = HostId(0);
    // Valid kind byte (Nack) but a ruined checksum.
    let mut bad_sum = forged_packet(4);
    bad_sum[28] ^= 0xA5;
    // Shorter than a header.
    let runt = vec![1u8, 2, 3];
    for payload in [bad_sum, runt] {
        let frame = Frame::new(MacAddr(1), MacAddr(2), EtherType::INTERKERNEL, payload);
        cl.inject_frame(target, frame);
    }
    cl.run();
    let stats = cl.kernel_stats(target);
    assert_eq!(stats.checksum_drops, 2);
    assert_eq!(stats.unknown_kind_drops, 0);
}

#[test]
fn foreign_ethertype_without_handler_is_ignored() {
    let mut cl = two_hosts();
    let target = HostId(0);
    let frame = Frame::new(MacAddr(1), MacAddr(2), EtherType(0x9999), vec![0u8; 40]);
    cl.inject_frame(target, frame);
    cl.run();
    let stats = cl.kernel_stats(target);
    assert_eq!(stats.checksum_drops, 0);
    assert_eq!(stats.unknown_kind_drops, 0);
}
