//! Zero-copy local fast path: boundary and equivalence tests.
//!
//! With [`v_kernel::ProtocolConfig::local_fastpath`] on, same-host data
//! hand-offs (received segments, reply segments, local
//! `MoveTo`/`MoveFrom`) charge one fixed page-remap hop instead of the
//! fixed bookkeeping plus a per-byte memory copy. These tests pin the
//! three properties the ablation design depends on: co-located
//! exchanges get strictly faster (and the saved copies are counted),
//! remote exchanges are bit-identical under the toggle (the fast path
//! never reaches the wire), and a restarted host still refuses stale
//! pids exactly like the wire path — liveness checks run before any
//! data movement, fast or slow.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{
    Access, Api, Cluster, ClusterConfig, CpuSpeed, HostId, KernelError, Message, Outcome, Pid,
    Program,
};
use v_sim::SimTime;

type Log = Rc<RefCell<Vec<String>>>;

const PAGE: u32 = 4096;
/// Short segments ride inside packets remotely, so the shared workload
/// keeps them under `max_data_per_packet` to stay wire-expressible.
const SEG: u32 = 512;

/// Serves one request: accepts the client's short inbound segment on
/// `Receive`, pulls 2 pages with `MoveFrom`, then answers with a short
/// `ReplyWithSegment` — the three local data paths in one exchange.
#[derive(Default)]
struct PageServer {
    from: Option<Pid>,
}
impl Program for PageServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive_with_segment(0x4000, SEG),
            Outcome::ReceiveSeg { from, seg_len, .. } => {
                assert_eq!(seg_len, SEG, "inbound segment must be delivered");
                self.from = Some(from);
                api.move_from(from, 0x8000, 0x2000, 2 * PAGE);
            }
            Outcome::Move(Ok(_)) => {
                api.mem_fill(0x1_0000, SEG as usize, 0x5A).unwrap();
                api.reply_with_segment(Message::empty(), self.from.unwrap(), 0x2000, 0x1_0000, SEG)
                    .unwrap();
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Sends a request carrying a read/write grant over its 8 KB buffer
/// (1 KB of which the server accepts inbound) and logs the round trip.
struct PageClient {
    to: Pid,
    log: Log,
}
impl Program for PageClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(0x2000, 2 * PAGE as usize, 0xAB).unwrap();
                let mut m = Message::empty();
                m.set_segment(0x2000, 2 * PAGE, Access::ReadWrite);
                api.send(m, self.to);
            }
            Outcome::Send(Ok(_)) => {
                let page = api.mem_read(0x2000, SEG as usize).unwrap();
                let intact = page.iter().all(|&b| b == 0x5A);
                self.log.borrow_mut().push(format!("done:{intact}"));
                api.exit();
            }
            Outcome::Send(Err(e)) => {
                self.log.borrow_mut().push(format!("err:{e:?}"));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Runs the client/server exchange co-located on one host (or split
/// across two when `remote`), returning the quiescence instant, the log
/// and the fastpath counters summed over the cluster.
fn run_exchange(fastpath: bool, remote: bool) -> (SimTime, Vec<String>, u64, u64) {
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.local_fastpath = fastpath;
    let mut cl = Cluster::new(cfg);
    let server_host = if remote { HostId(1) } else { HostId(0) };
    let server = cl.spawn(server_host, "server", Box::new(PageServer::default()));
    let log: Log = Default::default();
    cl.spawn(
        HostId(0),
        "client",
        Box::new(PageClient {
            to: server,
            log: log.clone(),
        }),
    );
    cl.run();
    let (mut sends, mut saved) = (0, 0);
    for h in [HostId(0), HostId(1)] {
        let s = cl.kernel_stats(h);
        sends += s.local_fastpath_sends;
        saved += s.local_fastpath_bytes_saved;
    }
    let entries = log.borrow().clone();
    (cl.now(), entries, sends, saved)
}

/// Co-located: the fast path strictly beats the copy path, the data
/// still lands intact, and every skipped copy is counted — the inbound
/// 1 KB segment, the 8 KB MoveFrom and the 4 KB reply segment.
#[test]
fn colocated_exchange_is_strictly_faster_and_counts_saved_copies() {
    let (t_copy, log_copy, sends_copy, saved_copy) = run_exchange(false, false);
    let (t_fast, log_fast, sends_fast, saved_fast) = run_exchange(true, false);
    assert_eq!(log_copy, vec!["done:true"]);
    assert_eq!(log_fast, vec!["done:true"], "remap must deliver the data");
    assert!(
        t_fast < t_copy,
        "fast path must strictly win: {t_fast:?} vs {t_copy:?}"
    );
    assert_eq!(
        (sends_copy, saved_copy),
        (0, 0),
        "toggle off counts nothing"
    );
    assert_eq!(sends_fast, 3, "segment in + MoveFrom + reply segment");
    assert_eq!(saved_fast, SEG as u64 + 2 * PAGE as u64 + SEG as u64);
}

/// Remote: the toggle must be invisible — same quiescence instant to
/// the nanosecond, zero fastpath activity. The fast path lives strictly
/// inside the same-host branch.
#[test]
fn remote_exchange_is_bit_identical_under_the_toggle() {
    let (t_copy, log_copy, ..) = run_exchange(false, true);
    let (t_fast, log_fast, sends_fast, saved_fast) = run_exchange(true, true);
    assert_eq!(log_copy, vec!["done:true"]);
    assert_eq!(log_fast, log_copy);
    assert_eq!(t_fast, t_copy, "wire path must be untouched by the toggle");
    assert_eq!((sends_fast, saved_fast), (0, 0));
}

/// Sends one data-bearing request to `to` and logs how it resolved.
struct StaleCaller {
    to: Pid,
    log: Log,
}
impl Program for StaleCaller {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(0x2000, PAGE as usize, 0xEE).unwrap();
                let mut m = Message::empty();
                m.set_segment(0x2000, PAGE, Access::ReadWrite);
                api.send(m, self.to);
            }
            Outcome::Send(r) => {
                self.log.borrow_mut().push(match r {
                    Ok(_) => "ok".into(),
                    Err(e) => format!("err:{e:?}"),
                });
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Crash/restart boundary: with the fast path on, a process on the
/// reborn host sending to a stale co-located pid gets the same clean
/// `NonexistentProcess` the wire path Nacks with — and the fast path
/// never fires, because existence is checked before any data moves.
#[test]
fn restarted_host_refuses_stale_local_pid_without_fastpathing() {
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.local_fastpath = true;
    let mut cl = Cluster::new(cfg);
    let server = cl.spawn(HostId(0), "server", Box::new(PageServer::default()));
    cl.run();
    cl.crash_host(HostId(0));
    cl.restart_host(HostId(0));

    let log: Log = Default::default();
    cl.spawn(
        HostId(0),
        "stale",
        Box::new(StaleCaller {
            to: server,
            log: log.clone(),
        }),
    );
    cl.run();
    assert_eq!(log.borrow().clone(), vec!["err:NonexistentProcess"]);
    let s = cl.kernel_stats(HostId(0));
    assert_eq!(
        (s.local_fastpath_sends, s.local_fastpath_bytes_saved),
        (0, 0),
        "no data may move toward a dead pid, remapped or copied"
    );
    let _ = KernelError::NonexistentProcess; // the variant this test pins
}
