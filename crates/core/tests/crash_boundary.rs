//! Crash-boundary tests: the host fault model at the IPC layer.
//!
//! The paper's protocol already contains its failure detector — "the
//! kernel retransmits a limited number of times before declaring the
//! operation to have failed". These tests pin the semantics around a
//! crashed host: every blocking primitive aimed at it *resolves* (a
//! reply, a [`KernelError::HostDown`], or a bulk-transfer
//! [`KernelError::Timeout`]) — nothing hangs; a second failure is cheap
//! (the suspect probe budget); and a restarted host rejoins cleanly
//! (re-registration plus suspicion reprieve on first contact).

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{
    Access, Api, Cluster, ClusterConfig, CpuSpeed, HostId, KernelError, Message, Outcome, Pid,
    Program, Scope,
};
use v_net::InternetworkConfig;
use v_sim::SimTime;

type Log = Rc<RefCell<Vec<String>>>;

/// Echoes every message back, forever.
struct Echo;
impl Program for Echo {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                let _ = api.reply(msg, from);
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Echo that also registers logical id 77 (scope `Both`) at startup.
struct RegisteredEcho;
impl Program for RegisteredEcho {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.set_pid(77, api.self_pid(), Scope::Both);
                api.receive();
            }
            Outcome::Receive { from, msg } => {
                let _ = api.reply(msg, from);
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Sends one message to `to` and logs how it resolved.
struct OneShot {
    to: Pid,
    log: Log,
}
impl Program for OneShot {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.send(Message::empty(), self.to),
            Outcome::Send(Ok(_)) => {
                self.log.borrow_mut().push("ok".into());
                api.exit();
            }
            Outcome::Send(Err(e)) => {
                self.log.borrow_mut().push(format!("err:{e:?}"));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Resolves logical id 77 by broadcast, then does one exchange with it.
struct ResolveAndCall {
    log: Log,
}
impl Program for ResolveAndCall {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.get_pid(77, Scope::Both),
            Outcome::GetPid(Some(pid)) => api.send(Message::empty(), pid),
            Outcome::GetPid(None) => {
                self.log.borrow_mut().push("unresolved".into());
                api.exit();
            }
            Outcome::Send(r) => {
                self.log.borrow_mut().push(format!("send_ok:{}", r.is_ok()));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

fn pair() -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz))
}

/// A `Send` to a crashed host must resolve to `HostDown` after the
/// retransmission budget — never hang — and the frames it threw at the
/// dead interface are dropped and counted, not delivered.
#[test]
fn send_to_crashed_host_resolves_host_down_instead_of_hanging() {
    let mut cl = pair();
    let echo = cl.spawn(HostId(1), "echo", Box::new(Echo));
    cl.run();
    cl.crash_host(HostId(1));

    let log: Log = Default::default();
    let t0 = cl.now();
    cl.spawn(
        HostId(0),
        "oneshot",
        Box::new(OneShot {
            to: echo,
            log: log.clone(),
        }),
    );
    cl.run(); // terminating at all is the no-hang assertion
    assert_eq!(log.borrow().clone(), vec!["err:HostDown"]);

    let s0 = cl.kernel_stats(HostId(0));
    assert_eq!(s0.host_down_failures, 1);
    assert_eq!(
        s0.peer_suspicions, 1,
        "the failed budget marks the peer suspect"
    );
    // The failure took the whole budget: max_retries x 200 ms.
    let waited = cl.now().since(t0);
    assert!(
        waited >= v_sim::SimDuration::from_millis(2400),
        "HostDown must come from budget exhaustion, not early: {waited:?}"
    );
    // The dead interface counted the frames it refused to hear.
    assert!(cl.kernel_stats(HostId(1)).frames_dropped_down > 0);
    let _ = KernelError::HostDown; // the variant these tests pin
}

/// Once a peer is suspect, the next failure is cheap: the reduced
/// probe budget (`suspect_retries`) resolves in a fraction of the full
/// ladder. Fail-fast, exactly once per exchange attempt.
#[test]
fn second_send_to_a_suspect_peer_fails_fast() {
    let mut cl = pair();
    let echo = cl.spawn(HostId(1), "echo", Box::new(Echo));
    cl.run();
    cl.crash_host(HostId(1));

    let full_log: Log = Default::default();
    let t0 = cl.now();
    cl.spawn(
        HostId(0),
        "first",
        Box::new(OneShot {
            to: echo,
            log: full_log.clone(),
        }),
    );
    cl.run();
    let full_budget = cl.now().since(t0);

    let fast_log: Log = Default::default();
    let t1 = cl.now();
    cl.spawn(
        HostId(0),
        "second",
        Box::new(OneShot {
            to: echo,
            log: fast_log.clone(),
        }),
    );
    cl.run();
    let probe_budget = cl.now().since(t1);

    assert_eq!(full_log.borrow().clone(), vec!["err:HostDown"]);
    assert_eq!(fast_log.borrow().clone(), vec!["err:HostDown"]);
    assert!(
        probe_budget < full_budget / 4,
        "suspect probe {probe_budget:?} must be far cheaper than the full budget {full_budget:?}"
    );
    let s0 = cl.kernel_stats(HostId(0));
    assert!(s0.sends_to_suspect >= 1);
    assert_eq!(
        s0.peer_suspicions, 1,
        "suspicion is recorded once, not per send"
    );
}

/// A restarted host is an empty kernel: stale pids get a clean Nack
/// (`NonexistentProcess`, immediately — the host answers, so no budget
/// wait), re-registration makes the service findable again, and the
/// first frame heard from the reborn host lifts the suspicion.
#[test]
fn restart_reregisters_and_lifts_suspicion() {
    let mut cl = pair();
    let old = cl.spawn(HostId(1), "svc", Box::new(RegisteredEcho));
    cl.run();
    cl.crash_host(HostId(1));

    // Fail against the dead host: builds the suspicion.
    let log: Log = Default::default();
    cl.spawn(
        HostId(0),
        "fail",
        Box::new(OneShot {
            to: old,
            log: log.clone(),
        }),
    );
    cl.run();
    assert_eq!(log.borrow().clone(), vec!["err:HostDown"]);

    cl.restart_host(HostId(1));
    cl.spawn(HostId(1), "svc", Box::new(RegisteredEcho));
    cl.run();

    // A stale pid resolves immediately now that the host answers again.
    let stale: Log = Default::default();
    let t0 = cl.now();
    cl.spawn(
        HostId(0),
        "stale",
        Box::new(OneShot {
            to: old,
            log: stale.clone(),
        }),
    );
    cl.run();
    assert_eq!(stale.borrow().clone(), vec!["err:NonexistentProcess"]);
    assert!(
        cl.now().since(t0) < v_sim::SimDuration::from_millis(2400),
        "a live host Nacks stale pids without burning the budget"
    );

    // Fresh resolution + exchange work; hearing the host again lifted
    // the suspicion (the Nack itself is evidence of life).
    let log2: Log = Default::default();
    cl.spawn(
        HostId(0),
        "resolve",
        Box::new(ResolveAndCall { log: log2.clone() }),
    );
    cl.run();
    assert_eq!(log2.borrow().clone(), vec!["send_ok:true"]);
    let s0 = cl.kernel_stats(HostId(0));
    assert!(
        s0.peer_reprieves >= 1,
        "suspicion must lift on contact: {s0:?}"
    );
}

// ---------------------------------------------------------------------
// Bulk transfers across a dying gateway.
// ---------------------------------------------------------------------

const MOVE_LEN: u32 = 64 * 1024;

/// Grants a 64 KB read segment to `to` and logs how the Send resolves.
struct BigGranter {
    to: Pid,
    log: Log,
}
impl Program for BigGranter {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(0x1000, MOVE_LEN as usize, 0x9C).unwrap();
                let mut m = Message::empty();
                m.set_segment(0x1000, MOVE_LEN, Access::Read);
                api.send(m, self.to);
            }
            Outcome::Send(r) => {
                self.log.borrow_mut().push(format!("send:{}", r.is_ok()));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Fetches the granted segment with one `MoveFrom`, logging the result
/// (and whether the bytes landed intact on success).
struct BigFetcher {
    log: Log,
    from: Option<Pid>,
}
impl Program for BigFetcher {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, .. } => {
                self.from = Some(from);
                api.move_from(from, 0x20000, 0x1000, MOVE_LEN);
            }
            Outcome::Move(r) => {
                match r {
                    Ok(n) => {
                        let data = api.mem_read(0x20000, n as usize).unwrap();
                        let intact = data.iter().all(|&b| b == 0x9C);
                        self.log.borrow_mut().push(format!("move:ok:{intact}"));
                        let _ = api.reply(Message::empty(), self.from.unwrap());
                    }
                    Err(e) => {
                        self.log.borrow_mut().push(format!("move:err:{e:?}"));
                        // Reply anyway: it vanishes into the partition,
                        // which is fine — replies are fire-and-forget.
                        let _ = api.reply(Message::empty(), self.from.unwrap());
                    }
                }
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Granter on segment 0, fetcher on segment 1 of a two-segment
/// internetwork, with the transfer started before the gateway dies.
fn start_cross_gateway_move() -> (Cluster, Log) {
    let mut cl = Cluster::new(
        ClusterConfig::internetwork(InternetworkConfig::two_segments())
            .with_host_on(CpuSpeed::Mc68000At10MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At10MHz, 1),
    );
    let log: Log = Default::default();
    let fetcher = cl.spawn(
        HostId(1),
        "fetcher",
        Box::new(BigFetcher {
            log: log.clone(),
            from: None,
        }),
    );
    cl.spawn(
        HostId(0),
        "granter",
        Box::new(BigGranter {
            to: fetcher,
            log: log.clone(),
        }),
    );
    // 64 KB over a 3 Mb segment takes well over 100 ms: at 20 ms the
    // grant has crossed and the MoveFrom stream is mid-flight.
    cl.run_until(SimTime::from_millis(20));
    (cl, log)
}

/// A gateway outage *during* a MoveFrom heals: the stall timer
/// re-requests from the last in-order byte once the gateway returns,
/// and the transfer completes intact within its retry budget.
#[test]
fn in_flight_move_from_recovers_when_the_gateway_returns() {
    let (mut cl, log) = start_cross_gateway_move();
    assert!(cl.fail_gateway(0), "gateway 0 must exist and be up");
    cl.run_until(SimTime::from_millis(150));
    assert!(cl.restore_gateway(0));
    cl.run();
    let mut l = log.borrow().clone();
    l.sort();
    assert_eq!(l, vec!["move:ok:true", "send:true"]);
    assert!(
        cl.kernel_stats(HostId(1)).transfer_resumes > 0,
        "recovery must have come through the stall timer"
    );
}

/// A permanent partition mid-transfer: the fetcher's `MoveFrom` fails
/// with the bulk-transfer `Timeout` once its stall budget is spent, the
/// granter's `Send` fails with `HostDown` once its budget is spent —
/// and both sides run to quiescence. No blocking primitive hangs.
#[test]
fn in_flight_move_from_fails_cleanly_across_a_permanent_partition() {
    let (mut cl, log) = start_cross_gateway_move();
    assert!(cl.fail_gateway(0));
    cl.run(); // termination is the assertion
    let mut l = log.borrow().clone();
    l.sort();
    assert_eq!(l, vec!["move:err:Timeout", "send:false"]);
    assert_eq!(cl.kernel_stats(HostId(0)).host_down_failures, 1);
}
