//! Gateway-forwarding boundary tests: the kernel's IPC engine runs
//! unmodified over an internetwork topology — message exchanges, bulk
//! transfers, broadcast name resolution and overload recovery all work
//! across a store-and-forward gateway, purely because the transport
//! beneath the dispatch boundary changed.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{
    Access, Api, Cluster, ClusterConfig, CpuSpeed, HostId, Message, Outcome, Pid, Program, Scope,
};
use v_net::InternetworkConfig;
use v_sim::SimTime;

type Log = Rc<RefCell<Vec<String>>>;

/// Client segment 0, server segment 1, behind one gateway.
fn gateway_pair(topo: InternetworkConfig) -> Cluster {
    Cluster::new(
        ClusterConfig::internetwork(topo)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 1),
    )
}

/// Echoes every message back, forever.
struct Echo;
impl Program for Echo {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                let _ = api.reply(msg, from);
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Performs `n` exchanges with `to`, logging each reply's payload word.
struct Exchanger {
    to: Pid,
    n: u32,
    done: u32,
    log: Log,
    finished: Rc<RefCell<Option<SimTime>>>,
}
impl Program for Exchanger {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                let mut m = Message::empty();
                m.set_u32(4, self.done);
                api.send(m, self.to);
            }
            Outcome::Send(Ok(reply)) => {
                self.log
                    .borrow_mut()
                    .push(format!("reply:{}", reply.get_u32(4)));
                self.done += 1;
                if self.done < self.n {
                    let mut m = Message::empty();
                    m.set_u32(4, self.done);
                    api.send(m, self.to);
                } else {
                    *self.finished.borrow_mut() = Some(api.now());
                    api.exit();
                }
            }
            Outcome::Send(Err(e)) => {
                self.log.borrow_mut().push(format!("err:{e:?}"));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Runs `n` exchanges over `cluster` (echo on host 1) and returns the
/// completion instant plus the log.
fn run_exchanges(mut cluster: Cluster, n: u32) -> (Cluster, SimTime, Vec<String>) {
    let echo = cluster.spawn(HostId(1), "echo", Box::new(Echo));
    let log: Log = Default::default();
    let finished = Rc::new(RefCell::new(None));
    cluster.spawn(
        HostId(0),
        "exchanger",
        Box::new(Exchanger {
            to: echo,
            n,
            done: 0,
            log: log.clone(),
            finished: finished.clone(),
        }),
    );
    cluster.run();
    let t = finished.borrow().expect("exchange loop must finish");
    let log = log.borrow().clone();
    (cluster, t, log)
}

#[test]
fn exchanges_cross_the_gateway_with_added_latency() {
    let n = 50;
    let (gw, gw_done, gw_log) = run_exchanges(gateway_pair(InternetworkConfig::two_segments()), n);
    assert_eq!(gw_log.len(), n as usize);
    assert!(gw_log.iter().all(|l| l.starts_with("reply:")), "{gw_log:?}");

    let single = Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz));
    let (_, direct_done, _) = run_exchanges(single, n);

    assert!(
        gw_done > direct_done,
        "store-and-forward must cost time: {gw_done:?} vs {direct_done:?}"
    );
    let g = gw.gateway_stats_total().expect("gateway topology");
    // Two packets per exchange, each crossing the gateway once.
    assert_eq!(g.forwarded, 2 * n as u64);
    assert_eq!(g.queue_drops, 0, "clean run must not overflow the queue");
}

#[test]
fn ipc_handlers_survive_gateway_queue_overflow() {
    // A 1-frame queue with several concurrent exchangers: bursts
    // overflow the gateway, and the retransmission machinery recovers —
    // the IPC layers never know the topology dropped frames.
    let mut topo = InternetworkConfig::two_segments();
    topo.gateway_queue = 1;
    let mut cluster = Cluster::new(
        ClusterConfig::internetwork(topo)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 1),
    );
    let echo = cluster.spawn(HostId(3), "echo", Box::new(Echo));
    let mut logs = Vec::new();
    for h in 0..3 {
        let log: Log = Default::default();
        logs.push(log.clone());
        cluster.spawn(
            HostId(h),
            "exchanger",
            Box::new(Exchanger {
                to: echo,
                n: 30,
                done: 0,
                log,
                finished: Rc::new(RefCell::new(None)),
            }),
        );
    }
    cluster.run();
    for log in &logs {
        let log = log.borrow();
        assert_eq!(log.len(), 30, "{log:?}");
        assert!(log.iter().all(|l| l.starts_with("reply:")), "{log:?}");
    }
    let g = cluster.gateway_stats_total().unwrap();
    assert!(g.queue_drops > 0, "the burst must overflow a 1-frame queue");
    let retrans: u64 = (0..3)
        .map(|h| cluster.kernel_stats(HostId(h)).retransmissions)
        .sum();
    assert!(retrans > 0, "recovery must come from retransmission");
}

/// Grants a read segment to a cross-gateway receiver that fetches it
/// with `MoveFrom` — bulk transfer streams through the gateway.
struct SegGranter {
    to: Pid,
    log: Log,
}
impl Program for SegGranter {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(0x1000, 2048, 0x9C).unwrap();
                let mut m = Message::empty();
                m.set_segment(0x1000, 2048, Access::Read);
                api.send(m, self.to);
            }
            Outcome::Send(r) => {
                self.log.borrow_mut().push(format!("send:{}", r.is_ok()));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

struct SegFetcher {
    log: Log,
    from: Option<Pid>,
}
impl Program for SegFetcher {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, .. } => {
                self.from = Some(from);
                api.move_from(from, 0x4000, 0x1000, 2048);
            }
            Outcome::Move(r) => {
                let ok = matches!(r, Ok(2048));
                let data = api.mem_read(0x4000, 2048).unwrap();
                let intact = data.iter().all(|&b| b == 0x9C);
                self.log.borrow_mut().push(format!("move:{ok}:{intact}"));
                let _ = api.reply(Message::empty(), self.from.unwrap());
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[test]
fn bulk_transfer_streams_through_the_gateway() {
    let mut cluster = gateway_pair(InternetworkConfig::two_segments());
    let log: Log = Default::default();
    let fetcher = cluster.spawn(
        HostId(1),
        "fetcher",
        Box::new(SegFetcher {
            log: log.clone(),
            from: None,
        }),
    );
    cluster.spawn(
        HostId(0),
        "granter",
        Box::new(SegGranter {
            to: fetcher,
            log: log.clone(),
        }),
    );
    cluster.run();
    let mut log = log.borrow().clone();
    log.sort();
    assert_eq!(log, vec!["move:true:true", "send:true"]);
    assert!(cluster.gateway_stats_total().unwrap().forwarded > 0);
}

/// Registers a logical id on one segment; a process on the other
/// resolves it via broadcast `GetPid` flooded through the gateway.
struct Registrar;
impl Program for Registrar {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.set_pid(77, api.self_pid(), Scope::Both);
                api.receive(); // stay alive to answer the broadcast
            }
            _ => api.exit(),
        }
    }
}

struct Resolver {
    log: Log,
}
impl Program for Resolver {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.get_pid(77, Scope::Both),
            Outcome::GetPid(r) => {
                self.log
                    .borrow_mut()
                    .push(format!("getpid:{}", r.is_some()));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[test]
fn broadcast_name_resolution_floods_across_segments() {
    let mut cluster = gateway_pair(InternetworkConfig::two_segments());
    cluster.spawn(HostId(1), "registrar", Box::new(Registrar));
    cluster.run(); // let the registration settle
    let log: Log = Default::default();
    cluster.spawn(
        HostId(0),
        "resolver",
        Box::new(Resolver { log: log.clone() }),
    );
    cluster.run_for(v_sim::SimDuration::from_millis(500));
    assert_eq!(log.borrow().clone(), vec!["getpid:true"]);
}

/// Client on segment 0, echo on the far segment of an `n`-segment line
/// mesh: every hop adds latency, and every gateway on the path forwards.
#[test]
fn exchanges_cross_a_multi_hop_mesh_with_per_hop_latency() {
    let n = 30;
    let line = |segs: usize, far: usize| {
        Cluster::new(
            v_kernel::ClusterConfig::mesh(v_net::MeshConfig::line(segs))
                .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
                .with_host_on(CpuSpeed::Mc68000At8MHz, far),
        )
    };
    let (_, same_done, _) = run_exchanges(line(3, 0), n);
    let (one, one_done, _) = run_exchanges(line(3, 1), n);
    let (two, two_done, log) = run_exchanges(line(3, 2), n);
    assert_eq!(log.len(), n as usize);
    assert!(
        same_done < one_done && one_done < two_done,
        "latency must grow with hop count: {same_done:?} / {one_done:?} / {two_done:?}"
    );

    // Per-gateway accounting: on the 1-hop run only the first gateway
    // works; on the 2-hop run both carry every packet.
    let per = one.gateway_stats();
    assert_eq!(per.len(), 2);
    assert_eq!(per[0].forwarded, 2 * n as u64);
    assert_eq!(per[1].forwarded, 0);
    let per = two.gateway_stats();
    assert_eq!(per[0].forwarded, 2 * n as u64);
    assert_eq!(per[1].forwarded, 2 * n as u64);
    assert_eq!(
        two.gateway_stats_total().unwrap().forwarded,
        4 * n as u64,
        "aggregate sums the per-gateway counters"
    );
}

/// Broadcast `GetPid` resolves across a ring mesh — a topology with a
/// physical loop — because the flood is deduplicated per segment.
#[test]
fn broadcast_name_resolution_survives_a_ring_mesh() {
    let mut cfg = v_kernel::ClusterConfig::mesh(v_net::MeshConfig::ring(4));
    for seg in 0..4 {
        cfg = cfg.with_host_on(CpuSpeed::Mc68000At8MHz, seg);
    }
    let mut cluster = Cluster::new(cfg);
    cluster.spawn(HostId(2), "registrar", Box::new(Registrar));
    cluster.run();
    let log: Log = Default::default();
    cluster.spawn(
        HostId(0),
        "resolver",
        Box::new(Resolver { log: log.clone() }),
    );
    cluster.run_for(v_sim::SimDuration::from_millis(500));
    assert_eq!(log.borrow().clone(), vec!["getpid:true"]);
    // The kernels must not see duplicate queries: each host heard the
    // flooded broadcast exactly once, so nobody filtered duplicates.
    for h in 0..4 {
        assert_eq!(
            cluster.kernel_stats(HostId(h)).duplicates_filtered,
            0,
            "host {h} saw a duplicate flood copy"
        );
    }
}
