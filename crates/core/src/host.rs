//! Per-host kernel state.

use v_net::{EtherType, Nic};
use v_sim::SimTime;

use crate::aliens::AlienTable;
use crate::costs::CostModel;
use crate::cpu::Cpu;
use crate::event::HostId;
use crate::hostmap::HostMap;
use crate::naming::NameTable;
use crate::pcb::Pcb;
use crate::pid::{LogicalHost, Pid};
use crate::raw::RawHandler;
use crate::slab::{LinearMap, SortedSet, UidSlab};
use crate::stats::KernelStats;

/// State of an outbound `MoveTo` (this host is the mover).
#[derive(Debug)]
pub struct OutMove {
    /// Transfer sequence number.
    pub seq: u32,
    /// Destination (granting) process on the remote host.
    pub dest_pid: Pid,
    /// Destination address in the remote process's space.
    pub dest_addr: u32,
    /// Source address in the mover's space.
    pub src_addr: u32,
    /// Total bytes to move.
    pub total: u32,
    /// Offset of the next chunk to transmit.
    pub next_off: u32,
    /// Last offset known received (resume point on timeout).
    pub acked_base: u32,
    /// Stall retries remaining.
    pub retries_left: u32,
    /// True once all chunks are out and the completion ack is awaited.
    pub awaiting_ack: bool,
    /// Stall-marker snapshot for timer staleness detection.
    pub marker: u32,
}

/// State of an inbound `MoveTo` (this host holds the granting process).
#[derive(Debug)]
pub struct InMove {
    /// The local process whose segment is being written.
    pub dest_pid: Pid,
    /// Next in-order offset expected.
    pub expected: u32,
    /// Total bytes in the transfer.
    pub total: u32,
    /// Completed (tombstone kept to re-ack duplicate chunks).
    pub complete: bool,
    /// Last activity (for housekeeping expiry).
    pub last_seen: SimTime,
}

/// State of an outbound `MoveFrom` request (this host is the requester
/// copying data *in*).
#[derive(Debug)]
pub struct InFetch {
    /// Transfer sequence number.
    pub seq: u32,
    /// The remote (granting) process the data comes from.
    pub src_pid: Pid,
    /// Source address in the remote process's space.
    pub src_addr: u32,
    /// Destination address in the requester's space.
    pub dest_addr: u32,
    /// Total bytes requested.
    pub total: u32,
    /// Next in-order offset expected.
    pub expected: u32,
    /// Stall retries remaining.
    pub retries_left: u32,
    /// Stall-marker snapshot for timer staleness detection.
    pub marker: u32,
}

/// State of a `MoveFrom` service stream (this host holds the granting
/// process and streams data out).
#[derive(Debug)]
pub struct OutServe {
    /// The requesting process (on the remote host).
    pub requester: Pid,
    /// Transfer sequence number (the requester's).
    pub seq: u32,
    /// The local granting process.
    pub grantor: Pid,
    /// Source address in the grantor's space.
    pub src_addr: u32,
    /// Offset of the next chunk to transmit.
    pub next_off: u32,
    /// Total bytes to stream.
    pub total: u32,
}

/// A workstation: one processor, one network interface, one kernel.
pub struct Host {
    /// This host's index in the cluster.
    pub id: HostId,
    /// This host's logical host identifier.
    pub logical: LogicalHost,
    /// The processor.
    pub cpu: Cpu,
    /// Calibrated cost constants for this processor.
    pub costs: CostModel,
    /// The network interface.
    pub nic: Nic,
    /// Local processes, keyed by the local-uid subfield.
    pub procs: UidSlab<Pcb>,
    /// Next local uid to try.
    pub next_uid: u16,
    /// Alien descriptors.
    pub aliens: AlienTable,
    /// Logical-id registrations.
    pub names: NameTable,
    /// Logical host → station mapping.
    pub hostmap: HostMap,
    /// Outbound `MoveTo` transfers, keyed by mover local uid.
    pub out_moves: UidSlab<OutMove>,
    /// Inbound `MoveTo` transfers, keyed by (mover raw pid, seq).
    pub in_moves: LinearMap<(u32, u32), InMove>,
    /// Outstanding `MoveFrom` requests, keyed by requester local uid.
    pub in_fetches: UidSlab<InFetch>,
    /// `MoveFrom` service streams, keyed by (requester raw pid, seq).
    pub out_serves: LinearMap<(u32, u32), OutServe>,
    /// Raw protocol handlers by ethertype.
    pub raw: LinearMap<u16, Box<dyn RawHandler>>,
    /// Protocol counters.
    pub stats: KernelStats,
    /// False while this host is crashed: the kernel holds no state and
    /// the interface drops every frame.
    pub up: bool,
    /// Peers condemned as down (a Send exhausted its full retransmission
    /// budget against them). Sends to a suspect use the reduced
    /// `suspect_retries` probe budget; any frame heard from the peer
    /// clears the suspicion.
    pub suspects: SortedSet<LogicalHost>,
}

impl Host {
    /// Fetches a local process by pid (must belong to this host).
    pub fn proc(&self, pid: Pid) -> Option<&Pcb> {
        self.procs.get(&pid.local())
    }

    /// Mutable process lookup.
    pub fn proc_mut(&mut self, pid: Pid) -> Option<&mut Pcb> {
        self.procs.get_mut(&pid.local())
    }

    /// Allocates an unused local uid.
    ///
    /// # Panics
    ///
    /// Panics if all 65535 uids are in use (not a realistic workload).
    pub fn alloc_uid(&mut self) -> u16 {
        for _ in 0..=u16::MAX {
            let uid = self.next_uid;
            self.next_uid = self.next_uid.wrapping_add(1);
            if uid != 0 && !self.procs.contains_key(&uid) {
                return uid;
            }
        }
        panic!("local uid space exhausted");
    }

    /// Registers a raw protocol handler for an ethertype.
    pub fn register_raw(&mut self, ethertype: EtherType, handler: Box<dyn RawHandler>) {
        self.raw.insert(ethertype.0, handler);
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("logical", &self.logical)
            .field("procs", &self.procs.len())
            .field("aliens", &self.aliens.len())
            .finish()
    }
}
