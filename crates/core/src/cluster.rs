//! The cluster: hosts + network + event loop.
//!
//! A [`Cluster`] owns every simulated workstation, the shared Ethernet and
//! the event queue, and drives the whole system to quiescence. It is the
//! top-level object experiments construct; see the crate examples and the
//! `v-bench` experiments for usage.

use v_net::{Delivery, EtherType, Ethernet, Frame, MacAddr, Nic, Transport};
use v_sim::{EventQueue, SimDuration, SimTime};

use crate::aliens::AlienTable;
use crate::config::ClusterConfig;
use crate::costs::CostModel;
use crate::cpu::Cpu;
use crate::ctx::Ctx;
use crate::error::KernelError;
use crate::event::{Event, HostId, TimerKind};
use crate::host::Host;
use crate::hostmap::HostMap;
use crate::message::Message;
use crate::naming::{NameTable, Scope};
use crate::pcb::{Pcb, ProcState};
use crate::pid::{LogicalHost, Pid};
use crate::program::{Outcome, Program};
use crate::raw::RawHandler;
use crate::stats::KernelStats;

/// A blocking kernel call collected from a program resume.
#[derive(Debug)]
pub(crate) enum Pending {
    Send {
        msg: Message,
        to: Pid,
    },
    Receive,
    ReceiveSeg {
        buf: u32,
        size: u32,
    },
    MoveTo {
        dst: Pid,
        dest: u32,
        src: u32,
        count: u32,
    },
    MoveFrom {
        src_pid: Pid,
        dest: u32,
        src: u32,
        count: u32,
    },
    GetPid {
        logical_id: u32,
        scope: Scope,
    },
    Delay(SimDuration),
    Compute(SimDuration),
}

/// The simulated distributed system.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) net: Box<dyn Transport>,
    pub(crate) hosts: Vec<Host>,
    pub(crate) housekeeping_armed: Vec<bool>,
    /// Logical events dispatched: one per resume/frame/timer/chunk. A
    /// batched frame event counts once per frame it carries, so the
    /// number is comparable across delivery-batching changes.
    events_dispatched: u64,
    /// Reusable buffer for transport deliveries: every transmit drains
    /// into it and schedules from it, so the hot path never allocates a
    /// per-transmit vector.
    delivery_scratch: Vec<Delivery>,
}

impl Cluster {
    /// Builds a cluster from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration places a host on a segment the
    /// topology does not have (see [`ClusterConfig::validate`]).
    pub fn new(cfg: ClusterConfig) -> Cluster {
        if let Err(e) = cfg.validate() {
            panic!("invalid cluster configuration: {e}");
        }
        let mut net: Box<dyn Transport> = match &cfg.topology {
            None => Box::new(Ethernet::for_kind(cfg.network, cfg.seed)),
            Some(topology) => topology.build(cfg.seed),
        };
        // Only install an explicit plan: the default empty plan must not
        // clobber error rates a topology carries in its own parameters
        // (a WAN link's configured loss).
        if !cfg.faults.is_none() {
            net.set_faults(cfg.faults);
        }
        net.set_collision_bug(cfg.collision_bug);

        let mut hosts = Vec::with_capacity(cfg.hosts.len());
        for (i, hc) in cfg.hosts.iter().enumerate() {
            let mac = HostId(i).station_mac();
            net.attach(mac, hc.segment);
            let logical = hc
                .logical_host
                .unwrap_or_else(|| LogicalHost::from_station(mac.0));
            hosts.push(Host {
                id: HostId(i),
                logical,
                cpu: Cpu::new(hc.cpu),
                costs: CostModel::for_speed(hc.cpu),
                nic: Nic::new(mac),
                procs: Default::default(),
                next_uid: 1,
                aliens: AlienTable::new(cfg.protocol.alien_pool),
                names: NameTable::new(),
                hostmap: HostMap::new(cfg.addressing),
                out_moves: Default::default(),
                in_moves: Default::default(),
                in_fetches: Default::default(),
                out_serves: Default::default(),
                raw: Default::default(),
                stats: KernelStats::default(),
                up: true,
                suspects: Default::default(),
            });
        }
        let n = hosts.len();
        Cluster {
            cfg,
            queue: EventQueue::new(),
            net,
            hosts,
            housekeeping_armed: vec![false; n],
            events_dispatched: 0,
            delivery_scratch: Vec::new(),
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// A host's logical host identifier.
    pub fn logical_host(&self, host: HostId) -> LogicalHost {
        self.hosts[host.0].logical
    }

    /// A host's accumulated kernel statistics.
    pub fn kernel_stats(&self, host: HostId) -> KernelStats {
        self.hosts[host.0].stats
    }

    /// A host's total charged processor time.
    pub fn cpu_busy(&self, host: HostId) -> SimDuration {
        self.hosts[host.0].cpu.busy_total()
    }

    /// A host's processor utilization over the elapsed simulation time.
    pub fn cpu_utilization(&self, host: HostId) -> f64 {
        self.hosts[host.0].cpu.utilization(self.now())
    }

    /// Medium statistics (summed across segments on multi-segment
    /// topologies).
    pub fn medium_stats(&self) -> v_net::MediumStats {
        self.net.stats()
    }

    /// Per-gateway statistics, one entry per gateway in placement order
    /// ([`v_net::Topology::Mesh`] / [`v_net::Topology::Internetwork`]).
    /// Empty when the topology has no store-and-forward element.
    pub fn gateway_stats(&self) -> Vec<v_net::GatewayStats> {
        self.net.per_gateway_stats()
    }

    /// Gateway statistics summed across all gateways, when the topology
    /// has any.
    pub fn gateway_stats_total(&self) -> Option<v_net::GatewayStats> {
        self.net.gateway_stats()
    }

    /// Looks at a process's address space (testing / verification aid).
    pub fn read_process_memory(
        &self,
        host: HostId,
        pid: Pid,
        addr: u32,
        len: usize,
    ) -> Result<Vec<u8>, KernelError> {
        let pcb = self.hosts[host.0]
            .proc(pid)
            .ok_or(KernelError::NonexistentProcess)?;
        pcb.space.read(addr, len).map(|s| s.to_vec())
    }

    /// Writes a process's address space directly (testing aid; bypasses
    /// cost accounting, as test-fixture setup should).
    pub fn write_process_memory(
        &mut self,
        host: HostId,
        pid: Pid,
        addr: u32,
        data: &[u8],
    ) -> Result<(), KernelError> {
        let pcb = self.hosts[host.0]
            .proc_mut(pid)
            .ok_or(KernelError::NonexistentProcess)?;
        pcb.space.write(addr, data)
    }

    /// True if the process still exists.
    pub fn process_exists(&self, host: HostId, pid: Pid) -> bool {
        self.hosts[host.0].proc(pid).is_some()
    }

    /// Injects a frame as if it had just finished arriving at `host`'s
    /// interface (testing aid: exercises the receive/dispatch path with
    /// hand-built bytes that the in-simulation senders would never emit).
    pub fn inject_frame(&mut self, host: HostId, frame: v_net::Frame) {
        let at = self.now();
        self.queue.schedule(at, Event::Frame { host, frame });
    }

    /// Registers a raw protocol handler on a host (see [`RawHandler`]).
    pub fn register_raw_handler(
        &mut self,
        host: HostId,
        ethertype: EtherType,
        handler: Box<dyn RawHandler>,
    ) {
        self.hosts[host.0].register_raw(ethertype, handler);
    }

    /// A host's station address.
    pub fn mac(&self, host: HostId) -> MacAddr {
        self.hosts[host.0].nic.mac()
    }

    /// Schedules a timer callback into a registered raw handler after
    /// `delay` — the way a measurement harness kicks a raw protocol into
    /// motion (raw handlers otherwise only run on frame arrival).
    pub fn poke_raw_handler(
        &mut self,
        host: HostId,
        ethertype: EtherType,
        token: u64,
        delay: SimDuration,
    ) {
        let at = self.now() + delay;
        self.queue.schedule(
            at,
            Event::Timer {
                host,
                kind: crate::event::TimerKind::Raw {
                    ethertype: ethertype.0,
                    token,
                },
            },
        );
    }

    /// True while `host` is up (not crashed).
    pub fn host_is_up(&self, host: HostId) -> bool {
        self.hosts[host.0].up
    }

    /// Crashes a host: every process, alien descriptor, in-flight
    /// transfer, name registration and learned address on it is lost,
    /// and the interface stops hearing frames. Peer kernels notice only
    /// through the protocol: their retransmission budgets run out and
    /// their `Send`s fail with [`KernelError::HostDown`]. A no-op if the
    /// host is already down.
    pub fn crash_host(&mut self, host: HostId) {
        let addressing = self.cfg.addressing;
        let pool = self.cfg.protocol.alien_pool;
        let h = &mut self.hosts[host.0];
        if !h.up {
            return;
        }
        h.up = false;
        h.stats.crashes += 1;
        h.stats.processes_exited += h.procs.len() as u64;
        h.procs.clear();
        h.aliens = AlienTable::new(pool);
        h.names = NameTable::new();
        h.hostmap = HostMap::new(addressing);
        h.suspects.clear();
        h.out_moves.clear();
        h.in_moves.clear();
        h.in_fetches.clear();
        h.out_serves.clear();
        h.raw.clear();
        // Timers and events still queued against this host become no-ops
        // at dispatch; `stats` survive as the simulation's accounting.
    }

    /// Restarts a crashed host with an empty kernel: no processes, no
    /// registrations — scenarios respawn services explicitly. The local
    /// uid counter is *not* rewound, so stale pids from before the crash
    /// never collide with new processes (senders holding them get a
    /// clean Nack → [`KernelError::NonexistentProcess`]).
    ///
    /// # Panics
    ///
    /// Panics if the host is up.
    pub fn restart_host(&mut self, host: HostId) {
        let h = &mut self.hosts[host.0];
        assert!(!h.up, "restart_host({host:?}): host is not crashed");
        h.up = true;
        h.stats.restarts += 1;
    }

    /// Replaces the transport's fault plan at the current instant —
    /// the runtime counterpart of [`ClusterConfig::faults`], used by
    /// chaos schedules to open and heal lossy periods or partitions.
    pub fn set_faults(&mut self, plan: v_net::FaultPlan) {
        self.net.set_faults(plan);
    }

    /// Takes gateway `idx` of a mesh topology out of service: its queue
    /// is lost and routes are recomputed without it (possibly leaving
    /// segments unreachable — a partition). Returns false if the
    /// topology has no such gateway or it is already down.
    pub fn fail_gateway(&mut self, idx: usize) -> bool {
        self.net.fail_gateway(idx)
    }

    /// Brings gateway `idx` back into service and recomputes routes.
    /// Returns false if the topology has no such gateway or it is up.
    pub fn restore_gateway(&mut self, idx: usize) -> bool {
        self.net.restore_gateway(idx)
    }

    /// Spawns a process on `host` with the default address-space size.
    pub fn spawn(&mut self, host: HostId, name: &str, program: Box<dyn Program>) -> Pid {
        self.spawn_with_space(
            host,
            name,
            program,
            crate::addrspace::AddressSpace::DEFAULT_SIZE,
        )
    }

    /// Spawns a process with an explicit address-space size.
    pub fn spawn_with_space(
        &mut self,
        host: HostId,
        name: &str,
        program: Box<dyn Program>,
        space: usize,
    ) -> Pid {
        let now = self.now();
        let h = &mut self.hosts[host.0];
        assert!(h.up, "cannot spawn {name:?} on crashed host {host:?}");
        let uid = h.alloc_uid();
        let pid = Pid::new(h.logical, uid);
        let pcb = Pcb::new(pid, program, space, name.to_string());
        h.procs.insert(uid, pcb);
        h.stats.processes_spawned += 1;
        let span = h.cpu.charge(now, h.costs.spawn);
        self.queue.schedule(
            span.end,
            Event::Resume {
                host,
                pid,
                outcome: Outcome::Started,
            },
        );
        pid
    }

    /// Runs until the event queue is exhausted (the system is quiescent:
    /// every process blocked with nothing in flight).
    pub fn run(&mut self) {
        while let Some((t, ev)) = self.queue.pop() {
            self.dispatch(t, ev);
        }
    }

    /// Runs until simulated time `deadline` (events at exactly `deadline`
    /// included) or quiescence, whichever is first.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.dispatch(t, ev);
        }
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Engine counters of the underlying event queue (scheduled, popped,
    /// pending) — the observable events-processed surface.
    pub fn sim_stats(&self) -> v_sim::SimStats {
        self.queue.stats()
    }

    /// Logical events dispatched so far (a batched frame event counts
    /// once per frame it carries).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    fn dispatch(&mut self, t: SimTime, ev: Event) {
        match ev {
            Event::Frame { host, frame } => self.dispatch_frame(t, host, frame),
            Event::FrameBatch { items } => {
                for (host, frame) in items {
                    self.dispatch_frame(t, host, frame);
                }
            }
            ev => {
                self.events_dispatched += 1;
                // A crashed host is deaf and inert: stale timers/resumes
                // are no-ops (their state was torn down with the
                // kernel). Housekeeping is the one timer still allowed
                // through — it finds empty tables and disarms itself, so
                // the armed flag cannot wedge across a crash/restart
                // cycle.
                let target = match &ev {
                    Event::Resume { host, .. } | Event::ChunkReady { host, .. } => Some(*host),
                    Event::Timer { host, kind } if !matches!(kind, TimerKind::Housekeeping) => {
                        Some(*host)
                    }
                    _ => None,
                };
                if let Some(h) = target {
                    if !self.hosts[h.0].up {
                        return;
                    }
                }
                match ev {
                    Event::Resume { host, pid, outcome } => {
                        self.handle_resume(t, host, pid, outcome)
                    }
                    Event::Timer { host, kind } => self.handle_timer(t, host, kind),
                    Event::ChunkReady { host, key } => self.ctx(host).handle_chunk_ready(t, key),
                    Event::Frame { .. } | Event::FrameBatch { .. } => unreachable!("handled above"),
                }
            }
        }
    }

    /// Dispatches one frame arrival: counts it as a logical event,
    /// applies the crashed-host check, and hands it to the receiving
    /// kernel.
    fn dispatch_frame(&mut self, t: SimTime, host: HostId, frame: Frame) {
        self.events_dispatched += 1;
        if !self.hosts[host.0].up {
            self.hosts[host.0].stats.frames_dropped_down += 1;
            return;
        }
        self.ctx(host).handle_frame(t, frame);
    }

    /// Builds the split-borrow context for one host.
    pub(crate) fn ctx(&mut self, host: HostId) -> Ctx<'_> {
        Ctx {
            host: &mut self.hosts[host.0],
            net: self.net.as_mut(),
            queue: &mut self.queue,
            proto: &self.cfg.protocol,
            host_id: host,
            housekeeping_armed: &mut self.housekeeping_armed[host.0],
            scratch: &mut self.delivery_scratch,
        }
    }

    fn handle_timer(&mut self, t: SimTime, host: HostId, kind: TimerKind) {
        match kind {
            TimerKind::Retransmit { pid, seq } => self.ctx(host).retransmit_timer(t, pid, seq),
            TimerKind::TransferStall { pid, seq, marker } => {
                self.ctx(host).transfer_stall_timer(t, pid, seq, marker)
            }
            TimerKind::GetPid { pid, logical_id } => {
                self.ctx(host).getpid_timer(t, pid, logical_id)
            }
            TimerKind::Housekeeping => self.ctx(host).housekeeping(t),
            TimerKind::Raw { ethertype, token } => self.raw_timer(t, host, ethertype, token),
        }
    }

    fn raw_timer(&mut self, t: SimTime, host: HostId, ethertype: u16, token: u64) {
        let Some(mut handler) = self.hosts[host.0].raw.remove(&ethertype) else {
            return;
        };
        {
            let mut ctx = self.ctx(host);
            let mut raw = crate::ipc::dispatch::RawCtxImpl::new(&mut ctx, t, EtherType(ethertype));
            handler.on_timer(&mut raw, token);
        }
        self.hosts[host.0].raw.insert(ethertype, handler);
    }

    fn handle_resume(&mut self, t: SimTime, host: HostId, pid: Pid, outcome: Outcome) {
        let Some(pcb) = self.hosts[host.0].proc_mut(pid) else {
            return; // process exited while the resume was in flight
        };
        let Some(mut program) = pcb.program.take() else {
            return; // re-entrant resume; cannot happen with correct state
        };
        pcb.state = ProcState::Ready;

        let mut api = Api {
            cl: self,
            host,
            pid,
            now: t,
            pending: None,
            exited: false,
        };
        program.resume(&mut api, outcome);
        let pending = api.pending.take();
        let exited = api.exited;
        let after = api.now;

        if exited {
            drop(program);
            self.exit_process(after, host, pid);
            return;
        }
        match self.hosts[host.0].proc_mut(pid) {
            Some(pcb) => pcb.program = Some(program),
            None => return, // exited as a side effect (cannot currently happen)
        }
        match pending {
            None => self.exit_process(after, host, pid),
            Some(p) => self.ctx(host).execute_blocking(after, pid, p),
        }
    }

    /// Terminates a process and cleans up everything referring to it.
    pub(crate) fn exit_process(&mut self, t: SimTime, host: HostId, pid: Pid) {
        let h = &mut self.hosts[host.0];
        if h.procs.remove(&pid.local()).is_none() {
            return;
        }
        h.stats.processes_exited += 1;
        h.names.purge_pid(pid);
        h.out_moves.remove(&pid.local());
        h.in_fetches.remove(&pid.local());
        h.in_moves.retain(|_, m| m.dest_pid != pid);
        h.out_serves.retain(|_, s| s.grantor != pid);

        // Fail local senders blocked on the departed process.
        let mut to_fail = Vec::new();
        for pcb in h.procs.values() {
            if let ProcState::AwaitingReplyLocal { to } = &pcb.state {
                if *to == pid {
                    to_fail.push(pcb.pid);
                }
            }
        }
        for sender in to_fail {
            let pcb = self.hosts[host.0].proc_mut(sender).expect("scanned above");
            pcb.state = ProcState::Ready;
            self.queue.schedule(
                t,
                Event::Resume {
                    host,
                    pid: sender,
                    outcome: Outcome::Send(Err(KernelError::NonexistentProcess)),
                },
            );
        }

        // Nack remote senders whose exchanges can no longer complete.
        // Replied aliens stay: their cached replies must keep answering
        // retransmissions of exchanges that *did* complete.
        let aliens = self.hosts[host.0].aliens.addressed_to_unreplied(pid);
        for src in aliens {
            let alien = self.hosts[host.0].aliens.remove(src).expect("listed");
            let mut ctx = self.ctx(host);
            ctx.send_nack(t, alien.src, alien.seq, pid);
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("hosts", &self.hosts.len())
            .field("now", &self.now())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

/// The kernel interface handed to a [`Program`] during a resume.
///
/// Non-blocking operations (`reply`, `set_pid`, memory access, `spawn`,
/// `get_time`) execute immediately, charging processor time. Blocking
/// operations (`send`, `receive`, `move_to`, ...) may be issued **at most
/// once per resume**; the kernel runs them after the resume returns and
/// delivers the result via the next [`Outcome`].
pub struct Api<'a> {
    cl: &'a mut Cluster,
    host: HostId,
    pid: Pid,
    /// Time cursor: end of the charges incurred so far in this resume.
    now: SimTime,
    pending: Option<Pending>,
    exited: bool,
}

impl<'a> Api<'a> {
    fn set_pending(&mut self, p: Pending) {
        assert!(
            self.pending.is_none(),
            "process {} issued a second blocking kernel call in one resume",
            self.pid
        );
        self.pending = Some(p);
    }

    /// The calling process's pid.
    pub fn self_pid(&self) -> Pid {
        self.pid
    }

    /// The logical host this process runs on.
    pub fn local_host(&self) -> LogicalHost {
        self.cl.hosts[self.host.0].logical
    }

    /// Exact simulation time — a measurement-harness convenience with no
    /// 1983 counterpart and no processor charge. Programs that should
    /// measure the way the paper did use [`Api::get_time`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// `GetTime`: the kernel's software-maintained time, accurate to the
    /// paper's ±10 ms clock granularity. Charges the minimal kernel-call
    /// overhead.
    pub fn get_time(&mut self) -> SimTime {
        let h = &mut self.cl.hosts[self.host.0];
        let span = h.cpu.charge(self.now, h.costs.syscall_min);
        self.now = span.end;
        SimTime::from_millis(span.end.as_nanos() / 10_000_000 * 10)
    }

    /// `Send(message, pid)`: blocks until the receiver replies.
    pub fn send(&mut self, msg: Message, to: Pid) {
        self.set_pending(Pending::Send { msg, to });
    }

    /// `Receive(message)`: blocks until a message arrives.
    pub fn receive(&mut self) {
        self.set_pending(Pending::Receive);
    }

    /// `ReceiveWithSegment`: like `receive`, but also accepts up to
    /// `size` bytes of the sender's read-granted segment into the buffer
    /// at `buf` in this process's space.
    pub fn receive_with_segment(&mut self, buf: u32, size: u32) {
        self.set_pending(Pending::ReceiveSeg { buf, size });
    }

    /// `MoveTo`: copies `count` bytes from `src` in this process's space
    /// to `dest` in `dst`'s space. `dst` must be awaiting reply from this
    /// process and must have granted write access covering the range.
    pub fn move_to(&mut self, dst: Pid, dest: u32, src: u32, count: u32) {
        self.set_pending(Pending::MoveTo {
            dst,
            dest,
            src,
            count,
        });
    }

    /// `MoveFrom`: copies `count` bytes from `src` in `src_pid`'s space to
    /// `dest` in this process's space. `src_pid` must be awaiting reply
    /// from this process and must have granted read access.
    pub fn move_from(&mut self, src_pid: Pid, dest: u32, src: u32, count: u32) {
        self.set_pending(Pending::MoveFrom {
            src_pid,
            dest,
            src,
            count,
        });
    }

    /// `GetPid(logicalid, scope)`: resolves a logical id, broadcasting to
    /// other kernels when the scope requires it.
    pub fn get_pid(&mut self, logical_id: u32, scope: Scope) {
        self.set_pending(Pending::GetPid { logical_id, scope });
    }

    /// Sleeps without consuming processor time (I/O waits, disk latency).
    pub fn delay(&mut self, d: SimDuration) {
        self.set_pending(Pending::Delay(d));
    }

    /// Consumes `d` of processor time (application computation).
    pub fn compute(&mut self, d: SimDuration) {
        self.set_pending(Pending::Compute(d));
    }

    /// Terminates this process.
    pub fn exit(&mut self) {
        self.exited = true;
    }

    /// `Reply(message, pid)`: sends the reply to a process awaiting reply
    /// from this one. Non-blocking.
    pub fn reply(&mut self, msg: Message, to: Pid) -> Result<(), KernelError> {
        let me = self.pid;
        let t = self.now;
        let mut ctx = self.cl.ctx(self.host);
        let end = ctx.do_reply(t, me, msg, to, None)?;
        self.now = end;
        Ok(())
    }

    /// `ReplyWithSegment`: reply plus a short segment written to
    /// `dest_ptr` in the replied-to process's space (which must have
    /// granted write access there). `src_addr`/`len` name the data in
    /// *this* process's space. Non-blocking.
    pub fn reply_with_segment(
        &mut self,
        msg: Message,
        to: Pid,
        dest_ptr: u32,
        src_addr: u32,
        len: u32,
    ) -> Result<(), KernelError> {
        let me = self.pid;
        let t = self.now;
        let mut ctx = self.cl.ctx(self.host);
        let end = ctx.do_reply(t, me, msg, to, Some((dest_ptr, src_addr, len)))?;
        self.now = end;
        Ok(())
    }

    /// `Forward(message, from, to)`: hands a message received from
    /// `from` to another server process `to`, as though `from` had sent
    /// it there directly — `to` becomes the process the client awaits a
    /// reply from, and its `Reply`/`MoveTo`/`MoveFrom` reach the client
    /// unchanged, locally and across hosts. The forwarder must have
    /// received (and not yet replied to) the exchange. Non-blocking:
    /// the receptionist of a server team forwards and immediately
    /// receives the next request.
    pub fn forward(&mut self, msg: Message, from: Pid, to: Pid) -> Result<(), KernelError> {
        let me = self.pid;
        let t = self.now;
        let mut ctx = self.cl.ctx(self.host);
        let end = ctx.do_forward(t, me, msg, from, to)?;
        self.now = end;
        Ok(())
    }

    /// `SetPid(logicalid, pid, scope)`: registers a logical id.
    pub fn set_pid(&mut self, logical_id: u32, pid: Pid, scope: Scope) {
        let h = &mut self.cl.hosts[self.host.0];
        let span = h.cpu.charge(self.now, h.costs.name_op);
        self.now = span.end;
        h.names.set(logical_id, pid, scope);
    }

    /// Reads this process's own memory (no kernel charge: programs touch
    /// their own space directly).
    pub fn mem_read(&self, addr: u32, len: usize) -> Result<Vec<u8>, KernelError> {
        let pcb = self.cl.hosts[self.host.0]
            .proc(self.pid)
            .expect("own process exists");
        pcb.space.read(addr, len).map(|s| s.to_vec())
    }

    /// Writes this process's own memory.
    pub fn mem_write(&mut self, addr: u32, data: &[u8]) -> Result<(), KernelError> {
        let pcb = self.cl.hosts[self.host.0]
            .proc_mut(self.pid)
            .expect("own process exists");
        pcb.space.write(addr, data)
    }

    /// Fills a range of this process's memory.
    pub fn mem_fill(&mut self, addr: u32, len: usize, value: u8) -> Result<(), KernelError> {
        let pcb = self.cl.hosts[self.host.0]
            .proc_mut(self.pid)
            .expect("own process exists");
        pcb.space.fill(addr, len, value)
    }

    /// Size of this process's address space.
    pub fn mem_size(&self) -> usize {
        self.cl.hosts[self.host.0]
            .proc(self.pid)
            .expect("own process exists")
            .space
            .size()
    }

    /// Creates a process on this host (the kernel's process-creation
    /// service; used by the exec server of §7).
    pub fn spawn(&mut self, name: &str, program: Box<dyn Program>) -> Pid {
        // Charge creation cost at the cursor, then spawn through the
        // cluster so accounting stays in one place.
        let h = &mut self.cl.hosts[self.host.0];
        let span = h.cpu.charge(self.now, h.costs.spawn);
        self.now = span.end;
        let host = self.host;
        let uid = self.cl.hosts[host.0].alloc_uid();
        let logical = self.cl.hosts[host.0].logical;
        let pid = Pid::new(logical, uid);
        let pcb = Pcb::new(
            pid,
            program,
            crate::addrspace::AddressSpace::DEFAULT_SIZE,
            name.to_string(),
        );
        self.cl.hosts[host.0].procs.insert(uid, pcb);
        self.cl.hosts[host.0].stats.processes_spawned += 1;
        self.cl.queue.schedule(
            self.now,
            Event::Resume {
                host,
                pid,
                outcome: Outcome::Started,
            },
        );
        pid
    }
}
