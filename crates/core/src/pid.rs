//! Process identifiers.
//!
//! V uses a flat, global naming space: a 32-bit *process identifier*
//! unique within the local network. The high-order 16 bits are a **logical
//! host** subfield and the low-order 16 bits a locally unique identifier —
//! this is the paper's §3.1, and the encoding is load-bearing: the
//! "locality test" on the host subfield is the primary invocation
//! mechanism from local kernel code into the network IPC path, and on the
//! 3 Mb Ethernet the top 8 bits of the logical host *are* the physical
//! network address, making pid → network address mapping trivial.

use std::fmt;

/// The logical-host subfield of a process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalHost(pub u16);

impl LogicalHost {
    /// The physical station address this logical host encodes.
    ///
    /// Inverse of [`LogicalHost::from_station`]: a zero low byte means
    /// the 3 Mb top-8-bit convention (station = top byte), a nonzero low
    /// byte means the identifier *is* the wide station address.
    pub fn station(self) -> u16 {
        if self.0 & 0xFF == 0 {
            self.0 >> 8
        } else {
            self.0
        }
    }

    /// Builds a logical host from a physical station address.
    ///
    /// Stations `1..=0xFF` use the paper's 3 Mb convention — address in
    /// the top 8 bits, low byte zero (free for, e.g., multiple logical
    /// hosts per physical machine). Wider addresses (boot-storm clusters
    /// beyond 255 stations) don't fit a byte, so the identifier carries
    /// the station address verbatim; such addresses must have a nonzero
    /// low byte, which keeps the two encodings disjoint and
    /// [`LogicalHost::station`] unambiguous.
    pub fn from_station(station: u16) -> LogicalHost {
        if station <= 0xFF {
            LogicalHost(station << 8)
        } else {
            debug_assert!(
                station & 0xFF != 0,
                "wide station address {station:#06x} has a zero low byte, \
                 which collides with the 3 Mb top-byte encoding"
            );
            LogicalHost(station)
        }
    }
}

impl fmt::Display for LogicalHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{:04x}", self.0)
    }
}

/// A 32-bit globally unique process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(u32);

impl Pid {
    /// The invalid pid (no process); `GetPid` misses return this as
    /// `None` at the API level, 0 on the wire.
    pub const NONE: u32 = 0;

    /// Builds a pid from its logical host and locally unique id.
    ///
    /// # Panics
    ///
    /// Panics if `local == 0` — 0 is reserved so that the all-zero pid is
    /// never a valid process.
    pub fn new(host: LogicalHost, local: u16) -> Pid {
        assert!(local != 0, "local uid 0 is reserved");
        Pid(((host.0 as u32) << 16) | local as u32)
    }

    /// Reconstructs a pid from its raw 32-bit representation (e.g. off the
    /// wire). Returns `None` for the reserved zero local id.
    pub fn from_raw(raw: u32) -> Option<Pid> {
        if raw & 0xFFFF == 0 {
            None
        } else {
            Some(Pid(raw))
        }
    }

    /// Raw 32-bit representation, as carried in packets and messages.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The logical-host subfield.
    pub fn host(self) -> LogicalHost {
        LogicalHost((self.0 >> 16) as u16)
    }

    /// The locally unique subfield.
    pub fn local(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The locality test: true if this pid lives on `host`.
    ///
    /// This single comparison is what routes every kernel primitive to
    /// either the Thoth-style local path or the interkernel protocol.
    pub fn is_local_to(self, host: LogicalHost) -> bool {
        self.host() == host
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:04x}", self.host(), self.local())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subfields_round_trip() {
        let p = Pid::new(LogicalHost(0x0A01), 0x0042);
        assert_eq!(p.host(), LogicalHost(0x0A01));
        assert_eq!(p.local(), 0x42);
        assert_eq!(Pid::from_raw(p.raw()), Some(p));
    }

    #[test]
    fn zero_local_is_invalid() {
        assert_eq!(Pid::from_raw(0x0A01_0000), None);
        assert_eq!(Pid::from_raw(0), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_zero_local() {
        let _ = Pid::new(LogicalHost(1), 0);
    }

    #[test]
    fn locality_test() {
        let h1 = LogicalHost::from_station(3);
        let h2 = LogicalHost::from_station(4);
        let p = Pid::new(h1, 7);
        assert!(p.is_local_to(h1));
        assert!(!p.is_local_to(h2));
    }

    #[test]
    fn station_byte_convention() {
        let h = LogicalHost::from_station(0x2B);
        assert_eq!(h.0, 0x2B00);
        assert_eq!(h.station(), 0x2B);
    }

    #[test]
    fn wide_stations_round_trip() {
        // Addresses past the 8-bit space ride verbatim; the two
        // encodings stay disjoint because wide addresses always carry a
        // nonzero low byte.
        let h = LogicalHost::from_station(0x0101);
        assert_eq!(h.0, 0x0101);
        assert_eq!(h.station(), 0x0101);
        assert_ne!(h, LogicalHost::from_station(0x01));
    }

    #[test]
    fn display() {
        let p = Pid::new(LogicalHost(0x0100), 0x002A);
        assert_eq!(p.to_string(), "h0100.002a");
    }
}
