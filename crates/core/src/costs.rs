//! The calibrated processor cost model.
//!
//! The paper's analysis is explicitly cost-decomposition driven: a network
//! operation costs *processor copy time* (memory ↔ interface, per byte) +
//! *wire time* (per byte at the physical bit rate) + *fixed per-packet
//! overhead*, and kernel primitives add syscall, scheduling and protocol
//! bookkeeping costs on top. This module fixes those constants for the
//! two measured processors.
//!
//! # Calibration derivation
//!
//! From the paper's own numbers (3 Mb Ethernet):
//!
//! * Network penalty fits: `P₈(n) = 0.0064·n + 0.390 ms` and
//!   `P₁₀(n) = 0.0054·n + 0.251 ms`.
//! * Wire time is `0.002721 ms/byte` (2.94 Mb/s), so the per-byte copy
//!   cost each way is `(0.0064 − 0.002721)/2 ≈ 0.00186 ms` at 8 MHz
//!   (the paper itself quotes ~1.90 ms per KB per direction) and
//!   `(0.0054 − 0.002721)/2 ≈ 0.00134 ms` at 10 MHz.
//! * The fixed part (0.390 / 0.251 ms) splits into packet build cost,
//!   packet parse cost (both interrupt-level processor work) and a small
//!   wire/interface latency.
//! * `GetTime` — "the basic minimal overhead of a kernel operation" — is
//!   0.07 / 0.06 ms.
//! * The local `Send-Receive-Reply` total of 1.00 / 0.77 ms decomposes
//!   into the three primitives plus two dispatches (context switches),
//!   with the 10 MHz values uniformly ~0.77× the 8 MHz ones (paper §5.2:
//!   "times for local operations ... are 25 percent faster on the 25
//!   percent faster processor").
//!
//! Remaining constants (alien management, scheduling administration,
//! transfer bookkeeping) are calibrated so the composite simulations
//! reproduce Tables 5-1/5-2/6-1/6-3; the regression test
//! `paper_calibration` in `v-bench` pins every reproduced table entry.

use v_net::NetParams;
use v_sim::SimDuration;

use crate::cpu::CpuSpeed;

/// Microseconds helper for constant tables.
const fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

/// Nanoseconds helper for constant tables.
const fn ns(n: u64) -> SimDuration {
    SimDuration::from_nanos(n)
}

/// Processor-time costs of kernel operations for one CPU grade.
///
/// All fields are public: ablation benches perturb individual entries to
/// show which costs dominate which table.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The processor grade these constants describe.
    pub speed: CpuSpeed,

    // Per-byte costs -----------------------------------------------------
    /// Copy between memory and the network interface (each direction).
    pub copy_net_per_byte: SimDuration,
    /// Memory-to-memory copy (local data transfer).
    pub copy_mem_per_byte: SimDuration,

    // Interrupt-level per-packet costs ------------------------------------
    /// Assemble a packet into the transmit interface (excl. per-byte copy).
    pub frame_build: SimDuration,
    /// Take a packet out of the receive interface (excl. per-byte copy).
    pub frame_parse: SimDuration,
    /// Interrupt entry and packet demultiplexing.
    pub rx_dispatch: SimDuration,

    // Local primitive costs ------------------------------------------------
    /// Minimal kernel call overhead (`GetTime`).
    pub syscall_min: SimDuration,
    /// Dispatching a readied process.
    pub context_switch: SimDuration,
    /// Local `Send` (validate, queue/deliver message).
    pub send_local: SimDuration,
    /// Local `Receive` (dequeue or block).
    pub receive_local: SimDuration,
    /// Local `Reply` (copy reply, ready sender).
    pub reply_local: SimDuration,
    /// `Forward`: relink a received exchange to another server process
    /// (requeue the sender or rebuild the alien binding). Comparable to
    /// a `Reply`'s bookkeeping; the network leg of a cross-host forward
    /// is charged by the frame-emission path on top.
    pub forward: SimDuration,
    /// Extra fixed work for segment-carrying receive/reply variants.
    pub segment_fixed: SimDuration,
    /// Zero-copy same-host delivery: the fixed cost of remapping the
    /// pages carrying a message's data into the peer's space (page-table
    /// bookkeeping, no per-byte copy). Charged in place of
    /// `segment_fixed`/`move_local_fixed` + `copy_mem(n)` when
    /// [`crate::ProtocolConfig::local_fastpath`] is on; idle otherwise.
    pub local_hop: SimDuration,

    // Remote protocol costs -----------------------------------------------
    /// Client-side `NonLocalSend` protocol work (addressing, sequence
    /// number, retransmit state).
    pub send_remote: SimDuration,
    /// Server-side remote `Reply` protocol work.
    pub reply_remote: SimDuration,
    /// Allocating and initializing an alien process descriptor.
    pub alien_alloc: SimDuration,
    /// Post-reply alien bookkeeping (caching the reply for retransmission,
    /// descriptor administration). Runs off the critical path.
    pub alien_post: SimDuration,
    /// Blocking the sender and scheduling other work after transmitting.
    /// Runs off the critical path.
    pub block_admin: SimDuration,
    /// Readying a process on packet arrival.
    pub unblock: SimDuration,
    /// Matching an arriving reply to the outstanding send; cancel timer.
    pub reply_match: SimDuration,
    /// Setting or clearing a retransmission timer.
    pub timer_admin: SimDuration,

    // Data transfer costs ---------------------------------------------------
    /// Fixed cost of a local `MoveTo`/`MoveFrom`.
    pub move_local_fixed: SimDuration,
    /// Fixed cost to start a remote transfer (either side).
    pub move_remote_setup: SimDuration,
    /// Per-chunk protocol cost at the sender beyond frame build.
    pub chunk_send: SimDuration,
    /// Per-chunk protocol cost at the receiver beyond frame parse.
    pub chunk_recv: SimDuration,
    /// Processing a transfer acknowledgement.
    pub ack_process: SimDuration,

    // Naming and process management ----------------------------------------
    /// Local name table lookup / registration.
    pub name_op: SimDuration,
    /// Creating a process.
    pub spawn: SimDuration,
}

impl CostModel {
    /// Constants for the 8 MHz MC68000 SUN workstation.
    pub fn mc68000_8mhz() -> CostModel {
        CostModel {
            speed: CpuSpeed::Mc68000At8MHz,
            copy_net_per_byte: ns(1855),
            copy_mem_per_byte: ns(880),
            frame_build: us(180),
            frame_parse: us(180),
            rx_dispatch: us(110),
            syscall_min: us(70),
            context_switch: us(200),
            send_local: us(250),
            receive_local: us(150),
            reply_local: us(200),
            forward: us(200),
            segment_fixed: us(250),
            local_hop: us(120),
            send_remote: us(300),
            reply_remote: us(250),
            alien_alloc: us(120),
            alien_post: us(780),
            block_admin: us(390),
            unblock: us(100),
            reply_match: us(80),
            timer_admin: us(50),
            move_local_fixed: us(360),
            move_remote_setup: us(400),
            chunk_send: us(60),
            chunk_recv: us(250),
            ack_process: us(100),
            name_op: us(100),
            spawn: us(400),
        }
    }

    /// Constants for the 10 MHz MC68000.
    ///
    /// Processor-time constants scale by the paper's observed 0.77 local
    /// speedup; the network copy rate comes from the 10 MHz penalty fit.
    pub fn mc68000_10mhz() -> CostModel {
        let base = CostModel::mc68000_8mhz();
        let scale = |d: SimDuration| SimDuration::from_nanos((d.as_nanos() as f64 * 0.77) as u64);
        CostModel {
            speed: CpuSpeed::Mc68000At10MHz,
            copy_net_per_byte: ns(1340),
            copy_mem_per_byte: ns(680),
            frame_build: scale(base.frame_build),
            frame_parse: scale(base.frame_parse),
            rx_dispatch: scale(base.rx_dispatch),
            syscall_min: us(60),
            context_switch: scale(base.context_switch),
            send_local: scale(base.send_local),
            receive_local: scale(base.receive_local),
            reply_local: scale(base.reply_local),
            forward: scale(base.forward),
            segment_fixed: scale(base.segment_fixed),
            local_hop: scale(base.local_hop),
            send_remote: scale(base.send_remote),
            reply_remote: scale(base.reply_remote),
            alien_alloc: scale(base.alien_alloc),
            alien_post: scale(base.alien_post),
            block_admin: scale(base.block_admin),
            unblock: scale(base.unblock),
            reply_match: scale(base.reply_match),
            timer_admin: scale(base.timer_admin),
            move_local_fixed: scale(base.move_local_fixed),
            move_remote_setup: scale(base.move_remote_setup),
            chunk_send: scale(base.chunk_send),
            chunk_recv: scale(base.chunk_recv),
            ack_process: scale(base.ack_process),
            name_op: scale(base.name_op),
            spawn: scale(base.spawn),
        }
    }

    /// Constants for a CPU grade.
    pub fn for_speed(speed: CpuSpeed) -> CostModel {
        match speed {
            CpuSpeed::Mc68000At8MHz => CostModel::mc68000_8mhz(),
            CpuSpeed::Mc68000At10MHz => CostModel::mc68000_10mhz(),
        }
    }

    /// Per-byte copy cost for `n` bytes, memory ↔ interface.
    pub fn copy_net(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(self.copy_net_per_byte.as_nanos() * n as u64)
    }

    /// Per-byte copy cost for `n` bytes, memory ↔ memory.
    pub fn copy_mem(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(self.copy_mem_per_byte.as_nanos() * n as u64)
    }

    /// Processor cost to build and hand an `n`-byte frame to the interface.
    pub fn frame_tx_cost(&self, n: usize) -> SimDuration {
        self.frame_build + self.copy_net(n)
    }

    /// Processor cost to take an `n`-byte frame out of the interface.
    pub fn frame_rx_cost(&self, n: usize) -> SimDuration {
        self.frame_parse + self.copy_net(n)
    }

    /// The **network penalty** for `n` bytes on medium `net`: the minimal
    /// time to move `n` bytes of payload from one process's memory to
    /// another's across the network, with zero protocol or process
    /// overhead (paper §4).
    pub fn network_penalty(&self, net: &NetParams, n: usize) -> SimDuration {
        self.frame_tx_cost(n) + net.wire_time(n) + net.latency + self.frame_rx_cost(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_net::NetworkKind;

    #[test]
    fn penalty_matches_paper_fit_8mhz() {
        let m = CostModel::mc68000_8mhz();
        let net = NetParams::for_kind(NetworkKind::Experimental3Mb);
        for n in [64usize, 128, 256, 512, 1024] {
            let sim = m.network_penalty(&net, n).as_millis_f64();
            let fit = 0.0064 * n as f64 + 0.390;
            let err = (sim - fit).abs() / fit;
            assert!(err < 0.05, "n={n}: sim={sim:.3} fit={fit:.3}");
        }
    }

    #[test]
    fn penalty_matches_paper_fit_10mhz() {
        let m = CostModel::mc68000_10mhz();
        let net = NetParams::for_kind(NetworkKind::Experimental3Mb);
        for n in [128usize, 256, 512, 1024] {
            let sim = m.network_penalty(&net, n).as_millis_f64();
            let fit = 0.0054 * n as f64 + 0.251;
            let err = (sim - fit).abs() / fit;
            assert!(err < 0.06, "n={n}: sim={sim:.3} fit={fit:.3}");
        }
    }

    #[test]
    fn penalty_table_4_1_values() {
        // Spot-check the two headline entries of Table 4-1.
        let m8 = CostModel::mc68000_8mhz();
        let net = NetParams::for_kind(NetworkKind::Experimental3Mb);
        let p1024 = m8.network_penalty(&net, 1024).as_millis_f64();
        assert!((p1024 - 6.95).abs() < 0.35, "p1024={p1024:.2}");
        let p64 = m8.network_penalty(&net, 64).as_millis_f64();
        assert!((p64 - 0.80).abs() < 0.08, "p64={p64:.2}");
    }

    #[test]
    fn local_srr_components_sum_to_paper_value() {
        // send + switch + reply + switch + receive = 1.00 ms at 8 MHz.
        let m = CostModel::mc68000_8mhz();
        let total =
            m.send_local + m.context_switch + m.reply_local + m.context_switch + m.receive_local;
        assert_eq!(total, SimDuration::from_micros(1000));
        let m10 = CostModel::mc68000_10mhz();
        let total10 = m10.send_local
            + m10.context_switch
            + m10.reply_local
            + m10.context_switch
            + m10.receive_local;
        assert!((total10.as_millis_f64() - 0.77).abs() < 0.01);
    }

    #[test]
    fn ten_mhz_is_uniformly_faster() {
        let m8 = CostModel::mc68000_8mhz();
        let m10 = CostModel::mc68000_10mhz();
        assert!(m10.copy_net_per_byte < m8.copy_net_per_byte);
        assert!(m10.send_local < m8.send_local);
        assert!(m10.frame_build < m8.frame_build);
        assert!(m10.syscall_min < m8.syscall_min);
    }

    #[test]
    fn local_hop_undercuts_the_copy_path_always() {
        // The zero-copy delivery must be strictly cheaper than the
        // classic path for *any* payload: the remap cost is below the
        // fixed part of both the segment and the move path alone, so
        // adding copy_mem(n) only widens the gap.
        for m in [CostModel::mc68000_8mhz(), CostModel::mc68000_10mhz()] {
            assert!(m.local_hop < m.segment_fixed);
            assert!(m.local_hop < m.move_local_fixed);
        }
    }

    #[test]
    fn getime_cost_is_table_value() {
        assert_eq!(CostModel::mc68000_8mhz().syscall_min.as_millis_f64(), 0.07);
        assert_eq!(CostModel::mc68000_10mhz().syscall_min.as_millis_f64(), 0.06);
    }
}
