//! The per-host processor model.
//!
//! Each workstation has one processor. Kernel work (syscall execution,
//! packet building/parsing, data copies) *charges* time on it: a charge
//! requested at time `t` begins at `max(t, busy_until)` and occupies the
//! processor for its duration. Charges therefore serialize FIFO, which is
//! how a file server saturates under multi-client load (§5.4, §7).
//!
//! Busy-time accounting doubles as the paper's measurement methodology:
//! the authors ran a low-priority "busywork" process and derived processor
//! time per operation as elapsed time minus busywork progress. Here the
//! counterpart is exact: [`Cpu::busy_total`] is the processor time all
//! other work consumed, and [`Cpu::busywork_count`] converts idle time
//! into the counter value the paper's busywork process would have shown.

use v_sim::{SimDuration, SimTime};

/// Processor speed grades measured in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuSpeed {
    /// 8 MHz Motorola 68000 (Tables 4-1, 5-1, 6-3).
    Mc68000At8MHz,
    /// 10 MHz Motorola 68000 (Tables 4-1, 5-2, 6-1, 6-2).
    Mc68000At10MHz,
}

/// A host processor.
#[derive(Debug, Clone)]
pub struct Cpu {
    speed: CpuSpeed,
    busy_until: SimTime,
    busy_total: SimDuration,
}

/// A reserved span of processor time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSpan {
    /// When the work begins executing.
    pub start: SimTime,
    /// When the work completes; effects become visible here.
    pub end: SimTime,
}

impl Cpu {
    /// Creates an idle processor.
    pub fn new(speed: CpuSpeed) -> Cpu {
        Cpu {
            speed,
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
        }
    }

    /// This processor's speed grade.
    pub fn speed(&self) -> CpuSpeed {
        self.speed
    }

    /// Reserves `cost` of processor time requested at `now`.
    ///
    /// Zero-cost charges return an empty span at the earliest available
    /// instant without touching the accounting.
    pub fn charge(&mut self, now: SimTime, cost: SimDuration) -> CpuSpan {
        let start = now.max(self.busy_until);
        let end = start + cost;
        self.busy_until = end;
        self.busy_total += cost;
        CpuSpan { start, end }
    }

    /// Earliest instant new work requested at `now` could begin.
    pub fn ready_at(&self, now: SimTime) -> SimTime {
        now.max(self.busy_until)
    }

    /// Instant the processor goes idle (given no further charges).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total processor time charged so far.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Idle time over `[0, now]`, i.e. what a low-priority busywork
    /// process would have received.
    pub fn idle_total(&self, now: SimTime) -> SimDuration {
        (now - SimTime::ZERO).saturating_sub(self.busy_total)
    }

    /// The counter value the paper's busywork process would show at
    /// `now`, given it performs one increment per `tick` of processor
    /// time.
    pub fn busywork_count(&self, now: SimTime, tick: SimDuration) -> u64 {
        if tick.is_zero() {
            return 0;
        }
        self.idle_total(now).as_nanos() / tick.as_nanos()
    }

    /// Processor utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.busy_total.as_secs_f64() / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_serialize_fifo() {
        let mut cpu = Cpu::new(CpuSpeed::Mc68000At8MHz);
        let a = cpu.charge(SimTime::from_millis(1), SimDuration::from_millis(2));
        assert_eq!(a.start, SimTime::from_millis(1));
        assert_eq!(a.end, SimTime::from_millis(3));
        // Requested during the first charge: starts after it.
        let b = cpu.charge(SimTime::from_millis(2), SimDuration::from_millis(1));
        assert_eq!(b.start, SimTime::from_millis(3));
        assert_eq!(b.end, SimTime::from_millis(4));
        // Requested after idle: starts immediately.
        let c = cpu.charge(SimTime::from_millis(10), SimDuration::from_millis(1));
        assert_eq!(c.start, SimTime::from_millis(10));
        assert_eq!(cpu.busy_total(), SimDuration::from_millis(4));
    }

    #[test]
    fn idle_and_utilization_accounting() {
        let mut cpu = Cpu::new(CpuSpeed::Mc68000At10MHz);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(3));
        let now = SimTime::from_millis(10);
        assert_eq!(cpu.idle_total(now), SimDuration::from_millis(7));
        assert!((cpu.utilization(now) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn busywork_counts_idle_ticks() {
        let mut cpu = Cpu::new(CpuSpeed::Mc68000At8MHz);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(4));
        let count = cpu.busywork_count(SimTime::from_millis(10), SimDuration::from_micros(10));
        assert_eq!(count, 600);
        assert_eq!(
            cpu.busywork_count(SimTime::from_millis(10), SimDuration::ZERO),
            0
        );
    }

    #[test]
    fn zero_utilization_at_time_zero() {
        let cpu = Cpu::new(CpuSpeed::Mc68000At8MHz);
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }
}
