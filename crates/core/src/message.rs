//! The 32-byte V message and its conventions.
//!
//! "Communication between processes is provided in the form of short
//! fixed-length messages ... all messages are a fixed 32 bytes in length"
//! (§2). The kernel message format conventions (§2.1) reserve:
//!
//! * flag bits at the *beginning* of the message (byte 0 here) indicating
//!   whether a segment is specified and its access permissions;
//! * the *last two words* (bytes 24–31) for the segment start address and
//!   length.
//!
//! Bytes 1–23 are free for the application protocol; accessor helpers
//! read/write little-endian words there. System protocols such as the
//! Verex I/O protocol in `v-fs` build on these helpers.

use crate::segment::{Access, SegmentGrant};

/// Length of every V message in bytes.
pub const MSG_LEN: usize = 32;

/// Flag bit: a segment is specified with read access.
const FLAG_SEG_READ: u8 = 0x01;
/// Flag bit: a segment is specified with write access.
const FLAG_SEG_WRITE: u8 = 0x02;

/// Offset of the segment start address word.
const SEG_START_OFF: usize = 24;
/// Offset of the segment length word.
const SEG_LEN_OFF: usize = 28;

/// A fixed 32-byte message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message([u8; MSG_LEN]);

impl Message {
    /// The all-zero message.
    pub fn empty() -> Message {
        Message([0; MSG_LEN])
    }

    /// Builds a message from raw bytes.
    pub fn from_bytes(bytes: [u8; MSG_LEN]) -> Message {
        Message(bytes)
    }

    /// Raw bytes of the message.
    pub fn as_bytes(&self) -> &[u8; MSG_LEN] {
        &self.0
    }

    /// Mutable raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8; MSG_LEN] {
        &mut self.0
    }

    /// Reads byte `i`.
    pub fn byte(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// Writes byte `i`.
    pub fn set_byte(&mut self, i: usize, v: u8) {
        self.0[i] = v;
    }

    /// Reads the little-endian u32 at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + 4 > 32`.
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([
            self.0[off],
            self.0[off + 1],
            self.0[off + 2],
            self.0[off + 3],
        ])
    }

    /// Writes a little-endian u32 at byte offset `off`.
    pub fn set_u32(&mut self, off: usize, v: u32) {
        self.0[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads the little-endian u16 at byte offset `off`.
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.0[off], self.0[off + 1]])
    }

    /// Writes a little-endian u16 at byte offset `off`.
    pub fn set_u16(&mut self, off: usize, v: u16) {
        self.0[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Specifies a segment per the message conventions: flag bits at the
    /// beginning, start address and length in the last two words.
    pub fn set_segment(&mut self, start: u32, len: u32, access: Access) {
        let mut flags = self.0[0] & !(FLAG_SEG_READ | FLAG_SEG_WRITE);
        if access.allows_read() {
            flags |= FLAG_SEG_READ;
        }
        if access.allows_write() {
            flags |= FLAG_SEG_WRITE;
        }
        self.0[0] = flags;
        self.set_u32(SEG_START_OFF, start);
        self.set_u32(SEG_LEN_OFF, len);
    }

    /// Removes any segment specification.
    pub fn clear_segment(&mut self) {
        self.0[0] &= !(FLAG_SEG_READ | FLAG_SEG_WRITE);
        self.set_u32(SEG_START_OFF, 0);
        self.set_u32(SEG_LEN_OFF, 0);
    }

    /// Decodes the segment specification, if any.
    ///
    /// This is how *both* kernels learn what access a sender granted: the
    /// message itself travels in the Send packet, so the receiving kernel
    /// can validate `MoveTo`/`MoveFrom` requests against the very same
    /// words the sending kernel saw. (This is why the paper made segment
    /// specification explicit rather than a Thoth library convention.)
    pub fn segment(&self) -> Option<SegmentGrant> {
        let flags = self.0[0];
        let access = match (flags & FLAG_SEG_READ != 0, flags & FLAG_SEG_WRITE != 0) {
            (false, false) => return None,
            (true, false) => Access::Read,
            (false, true) => Access::Write,
            (true, true) => Access::ReadWrite,
        };
        Some(SegmentGrant {
            start: self.get_u32(SEG_START_OFF),
            len: self.get_u32(SEG_LEN_OFF),
            access,
        })
    }
}

impl Default for Message {
    fn default() -> Self {
        Message::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_message_has_no_segment() {
        assert_eq!(Message::empty().segment(), None);
    }

    #[test]
    fn segment_round_trip() {
        let mut m = Message::empty();
        m.set_segment(0x1000, 512, Access::Read);
        let g = m.segment().unwrap();
        assert_eq!(g.start, 0x1000);
        assert_eq!(g.len, 512);
        assert_eq!(g.access, Access::Read);

        m.set_segment(0x2000, 64, Access::Write);
        assert_eq!(m.segment().unwrap().access, Access::Write);

        m.set_segment(0, 1, Access::ReadWrite);
        assert_eq!(m.segment().unwrap().access, Access::ReadWrite);

        m.clear_segment();
        assert_eq!(m.segment(), None);
    }

    #[test]
    fn segment_words_live_in_last_two_words() {
        let mut m = Message::empty();
        m.set_segment(0xAABBCCDD, 0x11223344, Access::Read);
        assert_eq!(m.get_u32(24), 0xAABBCCDD);
        assert_eq!(m.get_u32(28), 0x11223344);
    }

    #[test]
    fn user_words_survive_segment_ops() {
        let mut m = Message::empty();
        m.set_u32(4, 0xDEAD_BEEF);
        m.set_u16(8, 0x1234);
        m.set_byte(10, 0xAB);
        m.set_segment(1, 2, Access::Read);
        assert_eq!(m.get_u32(4), 0xDEAD_BEEF);
        assert_eq!(m.get_u16(8), 0x1234);
        assert_eq!(m.byte(10), 0xAB);
    }

    #[test]
    fn word_accessors_round_trip() {
        let mut m = Message::empty();
        for (i, off) in (4..24).step_by(4).enumerate() {
            m.set_u32(off, i as u32 * 0x0101_0101);
        }
        for (i, off) in (4..24).step_by(4).enumerate() {
            assert_eq!(m.get_u32(off), i as u32 * 0x0101_0101);
        }
    }

    #[test]
    fn from_bytes_round_trip() {
        let bytes: [u8; MSG_LEN] = core::array::from_fn(|i| i as u8);
        let m = Message::from_bytes(bytes);
        assert_eq!(*m.as_bytes(), bytes);
    }
}
