//! Per-kernel protocol statistics.

/// Counters one kernel accumulates; integration tests and experiments
/// read these to verify protocol behaviour (retransmissions under loss,
/// reply-pending under alien exhaustion, ...).
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Local message exchanges begun (Send to a local process).
    pub sends_local: u64,
    /// Remote message exchanges begun (NonLocalSend).
    pub sends_remote: u64,
    /// Send packets retransmitted after timeout.
    pub retransmissions: u64,
    /// Sends that failed after exhausting retries.
    pub send_timeouts: u64,
    /// Nacks received (addressed process did not exist).
    pub nacks_received: u64,
    /// Nacks sent.
    pub nacks_sent: u64,
    /// Reply-pending packets sent.
    pub reply_pending_sent: u64,
    /// Reply-pending packets received.
    pub reply_pending_received: u64,
    /// Duplicate Send packets filtered by the alien table.
    pub duplicates_filtered: u64,
    /// Cached replies retransmitted for duplicate Sends.
    pub replies_retransmitted: u64,
    /// Aliens allocated.
    pub aliens_allocated: u64,
    /// `Forward` primitives executed on this host (a received exchange
    /// handed to another server process).
    pub forwards: u64,
    /// Blocked local senders rebound to a forwardee on receipt of a
    /// Forward rebind notification.
    pub forward_rebinds: u64,
    /// Forward rebind notifications re-emitted in answer to a duplicate
    /// Send (the client evidently missed the first notification).
    pub forward_notes_resent: u64,
    /// Messages refused for want of an alien descriptor.
    pub aliens_exhausted: u64,
    /// Received frames discarded for checksum failure.
    pub checksum_drops: u64,
    /// Received frames that passed the checksum but carried a packet kind
    /// this kernel does not understand (dropped at the dispatch boundary).
    pub unknown_kind_drops: u64,
    /// Bulk-transfer data chunks sent.
    pub chunks_sent: u64,
    /// Bulk-transfer data chunks received in order.
    pub chunks_received: u64,
    /// Out-of-order chunks dropped.
    pub chunks_dropped: u64,
    /// Transfers resumed from a partial acknowledgement or stall.
    pub transfer_resumes: u64,
    /// Transfers failed.
    pub transfer_failures: u64,
    /// GetPid broadcasts issued.
    pub getpid_broadcasts: u64,
    /// GetPid replies answered for other kernels.
    pub getpid_answers: u64,
    /// Processes spawned on this host.
    pub processes_spawned: u64,
    /// Processes exited on this host.
    pub processes_exited: u64,
    /// Times this host crashed ([`crate::Cluster::crash_host`]).
    pub crashes: u64,
    /// Times this host restarted ([`crate::Cluster::restart_host`]).
    pub restarts: u64,
    /// Sends that failed with [`crate::KernelError::HostDown`] after the
    /// retransmission budget ran out.
    pub host_down_failures: u64,
    /// Peers newly condemned as down (first budget exhaustion against
    /// that logical host).
    pub peer_suspicions: u64,
    /// Condemned peers cleared by evidence of life (any frame from them).
    pub peer_reprieves: u64,
    /// Sends issued against an already-suspect peer, probing with the
    /// reduced [`crate::ProtocolConfig::suspect_retries`] budget.
    pub sends_to_suspect: u64,
    /// Frames addressed to this host while it was down (counted by the
    /// simulation, not the dead kernel: the bits died at the interface).
    pub frames_dropped_down: u64,
    /// Same-host data deliveries that took the zero-copy fast path
    /// ([`crate::ProtocolConfig::local_fastpath`]): segment hand-offs in
    /// `Receive`/`Reply` plus local `MoveTo`/`MoveFrom` transfers.
    pub local_fastpath_sends: u64,
    /// Bytes those deliveries would have copied memory-to-memory on the
    /// classic local path — the copy tax the page remap avoided.
    pub local_fastpath_bytes_saved: u64,
}
