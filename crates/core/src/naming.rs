//! Process naming: `SetPid` / `GetPid`.
//!
//! Logical ids ("fileserver", "nameserver", ...) map to pids with a
//! *scope* that distinguishes per-workstation servers from network-wide
//! ones (§3.1): a mapping registered `Local` answers only this kernel's
//! lookups, `Remote` answers only other kernels' broadcast queries, and
//! `Both` answers both.

use crate::pid::Pid;
use crate::slab::LinearMap;

/// Visibility scope of a logical-id registration or lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// This workstation only.
    Local,
    /// Other workstations only.
    Remote,
    /// Everywhere.
    Both,
}

/// Well-known logical ids used by the reproduction's system services.
pub mod logical {
    /// The network file server.
    pub const FILE_SERVER: u32 = 1;
    /// The name server (exercised by examples).
    pub const NAME_SERVER: u32 = 2;
    /// The program-execution server (§7).
    pub const EXEC_SERVER: u32 = 3;
}

/// One kernel's logical-id table.
///
/// A handful of well-known ids are ever registered, so the table is a
/// flat insertion-ordered map rather than a hash table.
#[derive(Debug, Default)]
pub struct NameTable {
    map: LinearMap<u32, (Pid, Scope)>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Registers `pid` under `logical_id` with visibility `scope`
    /// (overwriting any previous registration, as `SetPid` does).
    pub fn set(&mut self, logical_id: u32, pid: Pid, scope: Scope) {
        self.map.insert(logical_id, (pid, scope));
    }

    /// Removes a registration.
    pub fn clear(&mut self, logical_id: u32) {
        self.map.remove(&logical_id);
    }

    /// Looks up a logical id on behalf of a **local** `GetPid`.
    pub fn lookup_local(&self, logical_id: u32) -> Option<Pid> {
        match self.map.get(&logical_id) {
            Some((pid, Scope::Local)) | Some((pid, Scope::Both)) => Some(*pid),
            _ => None,
        }
    }

    /// Looks up a logical id on behalf of a **remote** kernel's broadcast
    /// query.
    pub fn lookup_remote(&self, logical_id: u32) -> Option<Pid> {
        match self.map.get(&logical_id) {
            Some((pid, Scope::Remote)) | Some((pid, Scope::Both)) => Some(*pid),
            _ => None,
        }
    }

    /// Drops every registration pointing at `pid` (process exit).
    pub fn purge_pid(&mut self, pid: Pid) {
        self.map.retain(|_, (p, _)| *p != pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::LogicalHost;

    fn pid(l: u16) -> Pid {
        Pid::new(LogicalHost(1), l)
    }

    #[test]
    fn scope_local_hides_from_remote() {
        let mut t = NameTable::new();
        t.set(7, pid(1), Scope::Local);
        assert_eq!(t.lookup_local(7), Some(pid(1)));
        assert_eq!(t.lookup_remote(7), None);
    }

    #[test]
    fn scope_remote_hides_from_local() {
        let mut t = NameTable::new();
        t.set(7, pid(2), Scope::Remote);
        assert_eq!(t.lookup_local(7), None);
        assert_eq!(t.lookup_remote(7), Some(pid(2)));
    }

    #[test]
    fn scope_both_is_visible_everywhere() {
        let mut t = NameTable::new();
        t.set(7, pid(3), Scope::Both);
        assert_eq!(t.lookup_local(7), Some(pid(3)));
        assert_eq!(t.lookup_remote(7), Some(pid(3)));
    }

    #[test]
    fn set_overwrites() {
        let mut t = NameTable::new();
        t.set(7, pid(1), Scope::Both);
        t.set(7, pid(2), Scope::Local);
        assert_eq!(t.lookup_local(7), Some(pid(2)));
        assert_eq!(t.lookup_remote(7), None);
    }

    #[test]
    fn purge_removes_dead_pids() {
        let mut t = NameTable::new();
        t.set(1, pid(1), Scope::Both);
        t.set(2, pid(2), Scope::Both);
        t.purge_pid(pid(1));
        assert_eq!(t.lookup_local(1), None);
        assert_eq!(t.lookup_local(2), Some(pid(2)));
    }

    #[test]
    fn clear_removes_mapping() {
        let mut t = NameTable::new();
        t.set(1, pid(1), Scope::Both);
        t.clear(1);
        assert_eq!(t.lookup_local(1), None);
    }
}
