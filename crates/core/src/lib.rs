//! # The Distributed V Kernel
//!
//! A from-scratch reproduction of the system described in:
//!
//! > D. R. Cheriton and W. Zwaenepoel, *The Distributed V Kernel and its
//! > Performance for Diskless Workstations*, SOSP 1983.
//!
//! The V kernel is a message-oriented kernel providing **uniform local and
//! network interprocess communication**: small fixed-size (32-byte)
//! messages with synchronous `Send`/`Receive`/`Reply`, separate bulk data
//! transfer (`MoveTo`/`MoveFrom`), and the segment extensions
//! (`ReceiveWithSegment`/`ReplyWithSegment`) that make page-level file
//! access take the minimal two packets. Remote operations are implemented
//! directly in the kernel on the raw data-link layer; the reply message of
//! every exchange doubles as its acknowledgement, so reliable exchanges
//! ride on unreliable datagrams with no extra transport layer.
//!
//! This crate contains the kernel and the simulated hardware it runs on
//! (processors with a calibrated 1983-era cost model; the network substrate
//! lives in `v-net`). The public surface:
//!
//! * [`Cluster`] — build a simulated network of diskless workstations,
//!   spawn processes, run the event loop;
//! * [`Program`] / [`Api`] / [`Outcome`] — write V processes;
//! * [`Message`], [`Pid`], [`Scope`], [`KernelError`] — the kernel
//!   vocabulary;
//! * [`CostModel`] / [`CpuSpeed`] — the calibrated timing constants;
//! * [`raw::RawHandler`] — attach specialized protocols below the IPC
//!   layer (used by the baseline comparators of `v-baselines`).
//!
//! ## Example
//!
//! ```
//! use v_kernel::{Api, Cluster, ClusterConfig, CpuSpeed, Message, Outcome, Pid, Program};
//!
//! /// Replies to every message with the same payload.
//! struct Echo;
//! impl Program for Echo {
//!     fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
//!         match outcome {
//!             Outcome::Started => api.receive(),
//!             Outcome::Receive { from, msg } => {
//!                 api.reply(msg, from).unwrap();
//!                 api.receive();
//!             }
//!             _ => api.exit(),
//!         }
//!     }
//! }
//!
//! /// Sends one message to the echo server, then exits.
//! struct Client { server: Pid }
//! impl Program for Client {
//!     fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
//!         match outcome {
//!             Outcome::Started => {
//!                 let mut m = Message::empty();
//!                 m.set_u32(4, 42);
//!                 api.send(m, self.server);
//!             }
//!             Outcome::Send(Ok(reply)) => {
//!                 assert_eq!(reply.get_u32(4), 42);
//!                 api.exit();
//!             }
//!             _ => api.exit(),
//!         }
//!     }
//! }
//!
//! let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
//! let mut cluster = Cluster::new(cfg);
//! let server = cluster.spawn(v_kernel::HostId(0), "echo", Box::new(Echo));
//! cluster.spawn(v_kernel::HostId(1), "client", Box::new(Client { server }));
//! cluster.run();
//! ```

pub mod addrspace;
pub mod aliens;
pub mod cluster;
pub mod config;
pub mod costs;
pub mod cpu;
mod ctx;
pub mod error;
pub mod event;
pub mod hostmap;
mod ipc;
pub mod message;
pub mod naming;
pub mod pcb;
pub mod pid;
pub mod program;
pub mod raw;
pub mod segment;
pub mod slab;
pub mod stats;

mod host;

pub use addrspace::AddressSpace;
pub use cluster::{Api, Cluster};
pub use config::{ClusterConfig, Encapsulation, HostConfig, ProtocolConfig};
pub use costs::CostModel;
pub use cpu::{Cpu, CpuSpeed};
pub use error::KernelError;
pub use event::HostId;
pub use hostmap::AddressingMode;
pub use message::{Message, MSG_LEN};
pub use naming::{logical, Scope};
pub use pid::{LogicalHost, Pid};
pub use program::{Outcome, Program};
pub use segment::{Access, SegmentGrant};
pub use stats::KernelStats;
