//! The shared-state core of the kernel protocol engine.
//!
//! [`Ctx`] is a split borrow of one host plus the shared medium, event
//! queue and protocol configuration. The protocol logic itself lives in
//! the [`crate::ipc`] module tree — one file per protocol concern — as
//! `impl Ctx` blocks; this file keeps only the state plumbing every
//! concern shares: processor charging, event scheduling and frame
//! emission.
//!
//! Timing discipline: a handler runs at its trigger's pop time, charges
//! processor costs as it goes, and schedules every externally visible
//! effect (process resume, frame transmission) at the end of the charges
//! that produce it.

use v_net::{Delivery, EtherType, Frame, Transport};
use v_sim::{EventQueue, SimDuration, SimTime};

use crate::config::ProtocolConfig;
use crate::event::{Event, HostId, TimerKind};
use crate::host::Host;
use crate::pid::{LogicalHost, Pid};
use crate::program::Outcome;
use v_wire::{encode, Packet, PacketBody};

/// Result of handing a frame to the interface.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Emitted {
    /// When the sending processor finished the copy-in (it is free after
    /// this).
    pub cpu_done: SimTime,
    /// When the frame left the interface (next copy-in may start).
    pub tx_end: SimTime,
}

/// Split-borrow context for one host's kernel.
pub(crate) struct Ctx<'a> {
    pub host: &'a mut Host,
    pub net: &'a mut dyn Transport,
    pub queue: &'a mut EventQueue<Event>,
    pub proto: &'a ProtocolConfig,
    pub host_id: HostId,
    pub housekeeping_armed: &'a mut bool,
    /// Cluster-owned delivery buffer every transmit drains into and
    /// schedules from (always left empty between uses).
    pub scratch: &'a mut Vec<Delivery>,
}

impl Ctx<'_> {
    /// Charges processor time starting no earlier than `t`; returns the
    /// completion instant.
    pub(crate) fn charge(&mut self, t: SimTime, cost: SimDuration) -> SimTime {
        self.host.cpu.charge(t, cost).end
    }

    /// Cost of handing `n` bytes of message data between two co-located
    /// processes' spaces — the same-host loopback leg every local
    /// `Send`/`Reply` segment and local `MoveTo`/`MoveFrom` pays instead
    /// of the wire. Classic (Thoth-style) delivery charges the fixed
    /// bookkeeping plus a memory-to-memory copy; with
    /// [`ProtocolConfig::local_fastpath`] on, the kernel remaps the
    /// pages carrying the typed data into the peer's space for one fixed
    /// [`crate::CostModel::local_hop`], and the counters record the copy
    /// the exchange skipped. Never reached for remote peers, so the
    /// toggle cannot perturb the wire path.
    pub(crate) fn local_data_cost(&mut self, fixed: SimDuration, n: usize) -> SimDuration {
        if self.proto.local_fastpath {
            self.host.stats.local_fastpath_sends += 1;
            self.host.stats.local_fastpath_bytes_saved += n as u64;
            self.host.costs.local_hop
        } else {
            fixed + self.host.costs.copy_mem(n)
        }
    }

    /// Schedules a process resume on this host.
    pub(crate) fn resume_at(&mut self, at: SimTime, pid: Pid, outcome: Outcome) {
        self.queue.schedule(
            at,
            Event::Resume {
                host: self.host_id,
                pid,
                outcome,
            },
        );
    }

    /// Schedules a kernel timer on this host.
    pub(crate) fn timer_at(&mut self, at: SimTime, kind: TimerKind) {
        self.queue.schedule(
            at,
            Event::Timer {
                host: self.host_id,
                kind,
            },
        );
    }

    /// Arms the housekeeping sweep if it is not already pending.
    pub(crate) fn arm_housekeeping(&mut self, t: SimTime) {
        if !*self.housekeeping_armed {
            *self.housekeeping_armed = true;
            let at = t + self.proto.housekeeping;
            self.timer_at(at, TimerKind::Housekeeping);
        }
    }

    /// Encodes and transmits a packet to a logical host (or broadcast if
    /// the station is unknown in learned addressing mode).
    pub(crate) fn emit_packet(
        &mut self,
        t: SimTime,
        pkt: &Packet,
        to_host: LogicalHost,
    ) -> Emitted {
        self.emit_bytes(t, encode(pkt), to_host)
    }

    /// Transmits pre-encoded packet bytes (used for cached
    /// retransmissions).
    pub(crate) fn emit_bytes(
        &mut self,
        t: SimTime,
        bytes: Vec<u8>,
        to_host: LogicalHost,
    ) -> Emitted {
        let dst = match self.host.hostmap.resolve(to_host) {
            Some(mac) => mac,
            None => {
                self.host.hostmap.note_broadcast_fallback();
                v_net::MacAddr::BROADCAST
            }
        };
        self.emit_to_mac(t, bytes, dst)
    }

    /// Broadcasts a packet (naming queries).
    pub(crate) fn emit_broadcast(&mut self, t: SimTime, pkt: &Packet) -> Emitted {
        self.emit_to_mac(t, encode(pkt), v_net::MacAddr::BROADCAST)
    }

    fn emit_to_mac(&mut self, t: SimTime, bytes: Vec<u8>, dst: v_net::MacAddr) -> Emitted {
        let encap = self.proto.encapsulation;
        let payload = if encap.extra_bytes() > 0 {
            let mut v = vec![0u8; encap.extra_bytes()];
            v.extend_from_slice(&bytes);
            v
        } else {
            bytes
        };
        self.emit_frame(
            t,
            dst,
            EtherType::INTERKERNEL,
            payload,
            encap.extra_tx_cost(),
        )
    }

    /// Transmits a raw (non-interkernel) frame for a registered
    /// [`crate::raw::RawHandler`]; returns the instant the processor is
    /// free again.
    pub(crate) fn emit_raw(
        &mut self,
        t: SimTime,
        dst: v_net::MacAddr,
        ethertype: EtherType,
        payload: Vec<u8>,
    ) -> SimTime {
        self.emit_frame(t, dst, ethertype, payload, SimDuration::ZERO)
            .cpu_done
    }

    /// The one transmit path every frame takes: charges the copy-in and
    /// `extra_cost`, hands the frame to the transport, and schedules its
    /// deliveries (direct and gateway-forwarded alike) out of the
    /// cluster's reused scratch buffer — no per-transmit allocation and
    /// no per-delivery frame clone beyond the transport's own fan-out.
    fn emit_frame(
        &mut self,
        t: SimTime,
        dst: v_net::MacAddr,
        ethertype: EtherType,
        payload: Vec<u8>,
        extra_cost: SimDuration,
    ) -> Emitted {
        let wire_len = payload.len();
        // The copy into the single-buffered transmit interface cannot
        // begin until the previous frame has left it.
        let ready = self.host.nic.tx_ready_after(t);
        let cost = self.host.costs.frame_tx_cost(wire_len) + extra_cost;
        let span = self.host.cpu.charge(ready, cost);
        let frame = Frame::new(dst, self.host.nic.mac(), ethertype, payload);
        self.scratch.clear();
        let win = self.net.transmit(span.end, frame, self.scratch);
        self.host.nic.note_tx(win.tx_end, wire_len);
        self.schedule_scratch();
        // Forwarded deliveries a gateway produced ride the same buffer
        // (empty again after the schedule above).
        self.net.poll_deliveries(self.scratch);
        self.schedule_scratch();
        Emitted {
            cpu_done: span.end,
            tx_end: win.tx_end,
        }
    }

    /// Drains the delivery scratch into the event queue, coalescing each
    /// run of same-instant arrivals into one [`Event::FrameBatch`] — a
    /// broadcast's fan-out becomes a single heap entry instead of one
    /// per receiver. Scheduling order (and therefore FIFO tie-break
    /// order at dispatch) matches the unbatched path exactly.
    fn schedule_scratch(&mut self) {
        let mut drain = self.scratch.drain(..).peekable();
        while let Some(d) = drain.next() {
            let host = HostId::from_station_mac(d.dst);
            if drain.peek().is_some_and(|n| n.at == d.at) {
                let at = d.at;
                let mut items = vec![(host, d.frame)];
                while drain.peek().is_some_and(|n| n.at == at) {
                    let n = drain.next().expect("peeked");
                    items.push((HostId::from_station_mac(n.dst), n.frame));
                }
                self.queue.schedule(at, Event::FrameBatch { items });
            } else {
                self.queue.schedule(
                    d.at,
                    Event::Frame {
                        host,
                        frame: d.frame,
                    },
                );
            }
        }
    }

    /// Sends a negative acknowledgement for an exchange addressed to a
    /// nonexistent process.
    pub(crate) fn send_nack(&mut self, t: SimTime, to: Pid, seq: u32, dead: Pid) {
        let pkt = Packet {
            seq,
            src_pid: dead.raw(),
            dst_pid: to.raw(),
            body: PacketBody::Nack,
        };
        self.host.stats.nacks_sent += 1;
        self.emit_packet(t, &pkt, to.host());
    }
}
