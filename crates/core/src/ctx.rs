//! The kernel protocol engine.
//!
//! [`Ctx`] is a split borrow of one host plus the shared medium, event
//! queue and protocol configuration; every kernel code path — syscall
//! execution, packet reception, timers, transfer pacing — is a method
//! here. Timing discipline: a handler runs at its trigger's pop time,
//! charges processor costs as it goes, and schedules every externally
//! visible effect (process resume, frame transmission) at the end of the
//! charges that produce it.

use v_net::{EtherType, Ethernet, Frame};
use v_sim::{EventQueue, SimDuration, SimTime};

use crate::aliens::{AlienState, SendVerdict};
use crate::cluster::Pending;
use crate::config::ProtocolConfig;
use crate::error::KernelError;
use crate::event::{Event, HostId, StreamKey, TimerKind};
use crate::host::{Host, InFetch, InMove, OutMove, OutServe};
use crate::message::Message;
use crate::naming::Scope;
use crate::pcb::ProcState;
use crate::pid::{LogicalHost, Pid};
use crate::program::Outcome;
use crate::segment::Access;
use v_wire::packet::Body;
use v_wire::{decode, encode, Packet, TransferStatus};

/// Result of handing a frame to the interface.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Emitted {
    /// When the sending processor finished the copy-in (it is free after
    /// this).
    pub cpu_done: SimTime,
    /// When the frame left the interface (next copy-in may start).
    pub tx_end: SimTime,
}

/// Split-borrow context for one host's kernel.
pub(crate) struct Ctx<'a> {
    pub host: &'a mut Host,
    pub net: &'a mut Ethernet,
    pub queue: &'a mut EventQueue<Event>,
    pub proto: &'a ProtocolConfig,
    pub host_id: HostId,
    pub housekeeping_armed: &'a mut bool,
}

impl<'a> Ctx<'a> {
    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    /// Charges processor time starting no earlier than `t`; returns the
    /// completion instant.
    fn charge(&mut self, t: SimTime, cost: SimDuration) -> SimTime {
        self.host.cpu.charge(t, cost).end
    }

    /// Schedules a process resume on this host.
    fn resume_at(&mut self, at: SimTime, pid: Pid, outcome: Outcome) {
        self.queue.schedule(
            at,
            Event::Resume {
                host: self.host_id,
                pid,
                outcome,
            },
        );
    }

    /// Schedules a kernel timer on this host.
    fn timer_at(&mut self, at: SimTime, kind: TimerKind) {
        self.queue.schedule(
            at,
            Event::Timer {
                host: self.host_id,
                kind,
            },
        );
    }

    /// Arms the housekeeping sweep if it is not already pending.
    fn arm_housekeeping(&mut self, t: SimTime) {
        if !*self.housekeeping_armed {
            *self.housekeeping_armed = true;
            let at = t + self.proto.housekeeping;
            self.timer_at(at, TimerKind::Housekeeping);
        }
    }

    /// Encodes and transmits a packet to a logical host (or broadcast if
    /// the station is unknown in learned addressing mode).
    fn emit_packet(&mut self, t: SimTime, pkt: &Packet, to_host: LogicalHost) -> Emitted {
        self.emit_bytes(t, encode(pkt), to_host)
    }

    /// Transmits pre-encoded packet bytes (used for cached
    /// retransmissions).
    fn emit_bytes(&mut self, t: SimTime, bytes: Vec<u8>, to_host: LogicalHost) -> Emitted {
        let dst = match self.host.hostmap.resolve(to_host) {
            Some(mac) => mac,
            None => {
                self.host.hostmap.note_broadcast_fallback();
                v_net::MacAddr::BROADCAST
            }
        };
        self.emit_to_mac(t, bytes, dst)
    }

    /// Broadcasts a packet (naming queries).
    fn emit_broadcast(&mut self, t: SimTime, pkt: &Packet) -> Emitted {
        self.emit_to_mac(t, encode(pkt), v_net::MacAddr::BROADCAST)
    }

    fn emit_to_mac(&mut self, t: SimTime, bytes: Vec<u8>, dst: v_net::MacAddr) -> Emitted {
        let encap = self.proto.encapsulation;
        let payload = if encap.extra_bytes() > 0 {
            let mut v = vec![0u8; encap.extra_bytes()];
            v.extend_from_slice(&bytes);
            v
        } else {
            bytes
        };
        let wire_len = payload.len();
        // The copy into the single-buffered transmit interface cannot
        // begin until the previous frame has left it.
        let ready = self.host.nic.tx_ready_after(t);
        let cost = self.host.costs.frame_tx_cost(wire_len) + encap.extra_tx_cost();
        let span = self.host.cpu.charge(ready, cost);
        let frame = Frame::new(dst, self.host.nic.mac(), EtherType::INTERKERNEL, payload);
        let tx = self.net.transmit(span.end, frame);
        self.host.nic.note_tx(tx.tx_end, wire_len);
        for d in &tx.deliveries {
            let host = HostId((d.dst.0 - 1) as usize);
            self.queue.schedule(
                d.at,
                Event::Frame {
                    host,
                    frame: d.frame.clone(),
                },
            );
        }
        Emitted {
            cpu_done: span.end,
            tx_end: tx.tx_end,
        }
    }

    /// Sends a negative acknowledgement for an exchange addressed to a
    /// nonexistent process.
    pub(crate) fn send_nack(&mut self, t: SimTime, to: Pid, seq: u32, dead: Pid) {
        let pkt = Packet {
            seq,
            src_pid: dead.raw(),
            dst_pid: to.raw(),
            body: Body::Nack,
        };
        self.host.stats.nacks_sent += 1;
        self.emit_packet(t, &pkt, to.host());
    }

    // ------------------------------------------------------------------
    // Blocking syscall execution
    // ------------------------------------------------------------------

    /// Executes the blocking call a program issued during its resume.
    pub(crate) fn execute_blocking(&mut self, t: SimTime, pid: Pid, pending: Pending) {
        match pending {
            Pending::Send { msg, to } => self.do_send(t, pid, msg, to),
            Pending::Receive => self.do_receive(t, pid, None),
            Pending::ReceiveSeg { buf, size } => self.do_receive(t, pid, Some((buf, size))),
            Pending::MoveTo {
                dst,
                dest,
                src,
                count,
            } => self.do_move_to(t, pid, dst, dest, src, count),
            Pending::MoveFrom {
                src_pid,
                dest,
                src,
                count,
            } => self.do_move_from(t, pid, src_pid, dest, src, count),
            Pending::GetPid { logical_id, scope } => self.do_get_pid(t, pid, logical_id, scope),
            Pending::Delay(d) => {
                let pcb = self.host.proc_mut(pid).expect("caller verified");
                pcb.state = ProcState::Waiting;
                self.resume_at(t + d, pid, Outcome::Delay);
            }
            Pending::Compute(d) => {
                let pcb = self.host.proc_mut(pid).expect("caller verified");
                pcb.state = ProcState::Waiting;
                let end = self.charge(t, d);
                self.resume_at(end, pid, Outcome::Compute);
            }
        }
    }

    fn do_send(&mut self, t: SimTime, pid: Pid, msg: Message, to: Pid) {
        {
            let pcb = self.host.proc_mut(pid).expect("sender exists");
            pcb.out_msg = msg;
        }
        if to.is_local_to(self.host.logical) {
            self.host.stats.sends_local += 1;
            let send_cost = self.host.costs.send_local;
            let end = self.charge(t, send_cost);
            if self.host.proc(to).is_none() {
                self.resume_at(
                    end,
                    pid,
                    Outcome::Send(Err(KernelError::NonexistentProcess)),
                );
                return;
            }
            {
                let pcb = self.host.proc_mut(pid).expect("sender exists");
                pcb.state = ProcState::AwaitingReplyLocal { to };
            }
            let receiver = self.host.proc_mut(to).expect("checked above");
            receiver.senders.push_back(pid);
            if receiver.state.is_receiving() {
                self.pump(end, to, true);
            }
        } else {
            self.host.stats.sends_remote += 1;
            let cost = self.host.costs.send_remote + self.host.costs.timer_admin;
            let end = self.charge(t, cost);

            // Gather the appended segment prefix, if read access was
            // granted (§3.4's optimization: the first part of the segment
            // rides in the Send packet).
            let grant = msg.segment();
            let (appended, appended_from) = match grant {
                Some(g) if g.access.allows_read() && g.len > 0 => {
                    let n = (g.len as usize)
                        .min(self.proto.max_appended_segment)
                        .min(self.proto.max_data_per_packet);
                    let pcb = self.host.proc(pid).expect("sender exists");
                    match pcb.space.read(g.start, n) {
                        Ok(bytes) => (bytes.to_vec(), g.start),
                        Err(e) => {
                            self.fail_send(end, pid, e);
                            return;
                        }
                    }
                }
                _ => (Vec::new(), 0),
            };

            let seq = {
                let pcb = self.host.proc_mut(pid).expect("sender exists");
                pcb.next_seq()
            };
            let pkt = Packet {
                seq,
                src_pid: pid.raw(),
                dst_pid: to.raw(),
                body: Body::Send {
                    msg: *msg.as_bytes(),
                    appended,
                    appended_from,
                },
            };
            let bytes = encode(&pkt);
            {
                let max_retries = self.proto.max_retries;
                let pcb = self.host.proc_mut(pid).expect("sender exists");
                pcb.state = ProcState::AwaitingReplyRemote {
                    to,
                    seq,
                    retries_left: max_retries,
                    packet: bytes.clone(),
                    grant,
                };
            }
            let emitted = self.emit_bytes(end, bytes, to.host());
            // Blocking the sender and dispatching other work happens off
            // the critical path, after the packet is on the wire.
            let block = self.host.costs.block_admin;
            self.charge(emitted.cpu_done, block);
            let timeout = self.proto.retransmit_timeout;
            self.timer_at(
                emitted.cpu_done + timeout,
                TimerKind::Retransmit { pid, seq },
            );
        }
    }

    fn fail_send(&mut self, t: SimTime, pid: Pid, err: KernelError) {
        if let Some(pcb) = self.host.proc_mut(pid) {
            pcb.state = ProcState::Ready;
        }
        self.resume_at(t, pid, Outcome::Send(Err(err)));
    }

    fn do_receive(&mut self, t: SimTime, pid: Pid, seg: Option<(u32, u32)>) {
        let recv_cost = self.host.costs.receive_local;
        let end = self.charge(t, recv_cost);
        {
            let pcb = self.host.proc_mut(pid).expect("receiver exists");
            pcb.state = match seg {
                None => ProcState::Receiving,
                Some((buf, size)) => ProcState::ReceivingSeg { buf, size },
            };
        }
        let has_queued = self
            .host
            .proc(pid)
            .map(|p| !p.senders.is_empty())
            .unwrap_or(false);
        if has_queued {
            self.pump(end, pid, false);
        }
    }

    /// Delivers the head of `receiver`'s sender queue to it.
    ///
    /// `dispatch` is true when this delivery *wakes* the receiver (send
    /// side), charging a context switch; false when the receiver found
    /// the message already queued during `Receive`.
    fn pump(&mut self, t: SimTime, receiver: Pid, dispatch: bool) {
        loop {
            let Some(pcb) = self.host.proc_mut(receiver) else {
                return;
            };
            if !pcb.state.is_receiving() {
                return;
            }
            let Some(sender) = pcb.senders.pop_front() else {
                return;
            };

            // Gather message + segment source, skipping stale queue
            // entries (dead senders, superseded aliens).
            enum SegData {
                None,
                Local { start: u32, len: u32 },
                Appended(Vec<u8>),
            }
            let (msg, seg) = if sender.is_local_to(self.host.logical) {
                match self.host.proc(sender) {
                    Some(sp) if matches!(sp.state, ProcState::AwaitingReplyLocal { to } if to == receiver) =>
                    {
                        let msg = sp.out_msg;
                        let seg = match msg.segment() {
                            Some(g) if g.access.allows_read() && g.len > 0 => SegData::Local {
                                start: g.start,
                                len: g.len,
                            },
                            _ => SegData::None,
                        };
                        (msg, seg)
                    }
                    _ => continue, // stale entry
                }
            } else {
                match self.host.aliens.get(sender) {
                    Some(a) if a.dst == receiver && a.state == AlienState::Queued => {
                        let seg = if a.appended.is_empty() {
                            SegData::None
                        } else {
                            SegData::Appended(a.appended.clone())
                        };
                        (a.msg, seg)
                    }
                    _ => continue, // stale entry
                }
            };

            // Deliver into the receiver, honouring ReceiveWithSegment.
            let (buf, size, wants_seg) = match &self.host.proc(receiver).expect("checked").state {
                ProcState::ReceivingSeg { buf, size } => (*buf, *size, true),
                _ => (0, 0, false),
            };

            let mut cost = SimDuration::ZERO;
            if dispatch {
                cost += self.host.costs.context_switch;
            }
            let mut seg_len: u32 = 0;
            let mut seg_bytes: Option<(u32, Vec<u8>)> = None;
            if wants_seg {
                match seg {
                    SegData::None => {}
                    SegData::Local { start, len } => {
                        let n = size.min(len);
                        if n > 0 {
                            let sp = self.host.proc(sender).expect("checked");
                            if let Ok(data) = sp.space.read(start, n as usize) {
                                cost += self.host.costs.segment_fixed
                                    + self.host.costs.copy_mem(n as usize);
                                seg_bytes = Some((buf, data.to_vec()));
                                seg_len = n;
                            }
                        }
                    }
                    SegData::Appended(data) => {
                        let n = (size as usize).min(data.len());
                        if n > 0 {
                            // Bytes came off the wire straight into their
                            // final location: only fixed handling cost.
                            cost += self.host.costs.segment_fixed;
                            seg_bytes = Some((buf, data[..n].to_vec()));
                            seg_len = n as u32;
                        }
                    }
                }
            }
            let end = self.charge(t, cost);

            if let Some((addr, data)) = seg_bytes {
                let pcb = self.host.proc_mut(receiver).expect("checked");
                if pcb.space.write(addr, &data).is_err() {
                    seg_len = 0; // receiver's own buffer was bogus
                }
            }

            // Mark the sender's exchange delivered.
            if sender.is_local_to(self.host.logical) {
                // Local sender stays AwaitingReplyLocal.
            } else if let Some(a) = self.host.aliens.get_mut(sender) {
                a.state = AlienState::Delivered;
            }

            let pcb = self.host.proc_mut(receiver).expect("checked");
            pcb.state = ProcState::Ready;
            let outcome = if wants_seg {
                Outcome::ReceiveSeg {
                    from: sender,
                    msg,
                    seg_len,
                }
            } else {
                Outcome::Receive { from: sender, msg }
            };
            self.resume_at(end, receiver, outcome);
            return;
        }
    }

    /// `Reply` / `ReplyWithSegment` (non-blocking). Returns the caller's
    /// new time cursor.
    pub(crate) fn do_reply(
        &mut self,
        t: SimTime,
        replier: Pid,
        msg: Message,
        to: Pid,
        seg: Option<(u32, u32, u32)>, // (dest_ptr, src_addr, len)
    ) -> Result<SimTime, KernelError> {
        if to.is_local_to(self.host.logical) {
            // Local reply.
            let awaiting = matches!(
                self.host.proc(to).map(|p| &p.state),
                Some(ProcState::AwaitingReplyLocal { to: t2 }) if *t2 == replier
            );
            if !awaiting {
                return Err(KernelError::NotAwaitingReply);
            }
            let mut cost = self.host.costs.reply_local + self.host.costs.context_switch;
            let mut write: Option<(u32, Vec<u8>)> = None;
            if let Some((dest_ptr, src_addr, len)) = seg {
                let target = self.host.proc(to).expect("checked");
                let grant = target
                    .out_msg
                    .segment()
                    .ok_or(KernelError::NoSegmentAccess)?;
                grant.check(dest_ptr, len, Access::Write)?;
                let rp = self.host.proc(replier).expect("replier exists");
                let data = rp.space.read(src_addr, len as usize)?.to_vec();
                cost += self.host.costs.segment_fixed + self.host.costs.copy_mem(len as usize);
                write = Some((dest_ptr, data));
            }
            let end = self.charge(t, cost);
            if let Some((addr, data)) = write {
                let target = self.host.proc_mut(to).expect("checked");
                target.space.write(addr, &data)?;
            }
            let target = self.host.proc_mut(to).expect("checked");
            target.state = ProcState::Ready;
            self.resume_at(end, to, Outcome::Send(Ok(msg)));
            Ok(end)
        } else {
            // Remote reply, through the alien.
            let (seq, grant) = match self.host.aliens.get(to) {
                Some(a) if a.dst == replier && a.state == AlienState::Delivered => {
                    (a.seq, a.msg.segment())
                }
                _ => return Err(KernelError::NotAwaitingReply),
            };
            let mut cost = self.host.costs.reply_remote;
            let (seg_dest, seg_data) = if let Some((dest_ptr, src_addr, len)) = seg {
                if len as usize > self.proto.max_data_per_packet {
                    return Err(KernelError::NoSegmentAccess);
                }
                let g = grant.ok_or(KernelError::NoSegmentAccess)?;
                g.check(dest_ptr, len, Access::Write)?;
                let rp = self.host.proc(replier).expect("replier exists");
                let data = rp.space.read(src_addr, len as usize)?.to_vec();
                cost += self.host.costs.segment_fixed;
                (dest_ptr, data)
            } else {
                (0, Vec::new())
            };
            let end = self.charge(t, cost);
            let pkt = Packet {
                seq,
                src_pid: replier.raw(),
                dst_pid: to.raw(),
                body: Body::Reply {
                    msg: *msg.as_bytes(),
                    seg_dest,
                    seg: seg_data,
                },
            };
            let bytes = encode(&pkt);
            let emitted = self.emit_bytes(end, bytes.clone(), to.host());
            if let Some(a) = self.host.aliens.get_mut(to) {
                a.state = AlienState::Replied {
                    packet: bytes,
                    at: emitted.cpu_done,
                };
            }
            let post = self.host.costs.alien_post;
            self.charge(emitted.cpu_done, post);
            self.arm_housekeeping(emitted.cpu_done);
            Ok(emitted.cpu_done)
        }
    }

    // ------------------------------------------------------------------
    // Data transfer
    // ------------------------------------------------------------------

    fn do_move_to(&mut self, t: SimTime, mover: Pid, dst: Pid, dest: u32, src: u32, count: u32) {
        if dst.is_local_to(self.host.logical) {
            // Local fast path: one memory-to-memory copy.
            let valid = matches!(
                self.host.proc(dst).map(|p| &p.state),
                Some(ProcState::AwaitingReplyLocal { to }) if *to == mover
            );
            if !valid {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, mover, KernelError::NotBlocked);
                return;
            }
            let grant = self.host.proc(dst).expect("checked").out_msg.segment();
            let res = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(dest, count, Access::Write).map(|_| ()))
                .and_then(|_| {
                    let mp = self.host.proc(mover).expect("mover exists");
                    mp.space.read(src, count as usize).map(|d| d.to_vec())
                });
            match res {
                Err(e) => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, mover, e);
                }
                Ok(data) => {
                    let cost =
                        self.host.costs.move_local_fixed + self.host.costs.copy_mem(count as usize);
                    let end = self.charge(t, cost);
                    let target = self.host.proc_mut(dst).expect("checked");
                    if target.space.write(dest, &data).is_err() {
                        self.fail_move(end, mover, KernelError::BadAddress);
                        return;
                    }
                    self.resume_at(end, mover, Outcome::Move(Ok(count)));
                }
            }
        } else {
            // Remote: the destination must be an alien blocked on us.
            let grant = match self.host.aliens.get(dst) {
                Some(a) if a.dst == mover && a.state == AlienState::Delivered => a.msg.segment(),
                _ => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, mover, KernelError::NotBlocked);
                    return;
                }
            };
            let check = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(dest, count, Access::Write))
                .and_then(|_| {
                    let mp = self.host.proc(mover).expect("mover exists");
                    mp.space.read(src, count as usize).map(|_| ())
                });
            if let Err(e) = check {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, mover, e);
                return;
            }
            let setup = self.host.costs.move_remote_setup;
            let end = self.charge(t, setup);
            let seq = {
                let pcb = self.host.proc_mut(mover).expect("mover exists");
                pcb.state = ProcState::Moving;
                pcb.next_seq()
            };
            self.host.out_moves.insert(
                mover.local(),
                OutMove {
                    seq,
                    dest_pid: dst,
                    dest_addr: dest,
                    src_addr: src,
                    total: count,
                    next_off: 0,
                    acked_base: 0,
                    retries_left: self.proto.transfer_retries,
                    awaiting_ack: false,
                    marker: 0,
                },
            );
            let marker = self.send_move_chunk(end, mover);
            let timeout = self.proto.transfer_timeout;
            self.timer_at(
                end + timeout,
                TimerKind::TransferStall {
                    pid: mover,
                    seq,
                    marker,
                },
            );
        }
    }

    fn fail_move(&mut self, t: SimTime, pid: Pid, err: KernelError) {
        self.host.stats.transfer_failures += 1;
        if let Some(pcb) = self.host.proc_mut(pid) {
            pcb.state = ProcState::Ready;
        }
        self.host.out_moves.remove(&pid.local());
        self.host.in_fetches.remove(&pid.local());
        self.resume_at(t, pid, Outcome::Move(Err(err)));
    }

    /// Transmits the next `MoveTo` chunk; returns the stream's progress
    /// marker.
    fn send_move_chunk(&mut self, t: SimTime, mover: Pid) -> u32 {
        let Some(om) = self.host.out_moves.get(&mover.local()) else {
            return 0;
        };
        let off = om.next_off;
        let n = (self.proto.max_data_per_packet as u32).min(om.total - off);
        let last = off + n == om.total;
        let (seq, dest_pid, dest_addr, src_addr) = (om.seq, om.dest_pid, om.dest_addr, om.src_addr);
        let data = {
            let mp = self.host.proc(mover).expect("mover exists");
            mp.space
                .read(src_addr + off, n as usize)
                .expect("validated at setup")
                .to_vec()
        };
        let pkt = Packet {
            seq,
            src_pid: mover.raw(),
            dst_pid: dest_pid.raw(),
            body: Body::MoveToData {
                dest: dest_addr + off,
                offset: off,
                total: om.total,
                last,
                data,
            },
        };
        let chunk_cost = self.host.costs.chunk_send;
        let end = self.charge(t, chunk_cost);
        let emitted = self.emit_packet(end, &pkt, dest_pid.host());
        self.host.stats.chunks_sent += 1;
        let om = self.host.out_moves.get_mut(&mover.local()).expect("exists");
        om.next_off = off + n;
        om.marker = om.marker.wrapping_add(1);
        let marker = om.marker;
        if last {
            om.awaiting_ack = true;
        } else {
            self.queue.schedule(
                emitted.tx_end,
                Event::ChunkReady {
                    host: self.host_id,
                    key: StreamKey::Move {
                        mover: mover.local(),
                    },
                },
            );
        }
        marker
    }

    fn do_move_from(
        &mut self,
        t: SimTime,
        requester: Pid,
        src_pid: Pid,
        dest: u32,
        src: u32,
        count: u32,
    ) {
        if src_pid.is_local_to(self.host.logical) {
            // Local fast path.
            let valid = matches!(
                self.host.proc(src_pid).map(|p| &p.state),
                Some(ProcState::AwaitingReplyLocal { to }) if *to == requester
            );
            if !valid {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, requester, KernelError::NotBlocked);
                return;
            }
            let grant = self.host.proc(src_pid).expect("checked").out_msg.segment();
            let res = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(src, count, Access::Read))
                .and_then(|_| {
                    let sp = self.host.proc(src_pid).expect("checked");
                    sp.space.read(src, count as usize).map(|d| d.to_vec())
                });
            match res {
                Err(e) => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, requester, e);
                }
                Ok(data) => {
                    let cost =
                        self.host.costs.move_local_fixed + self.host.costs.copy_mem(count as usize);
                    let end = self.charge(t, cost);
                    let rp = self.host.proc_mut(requester).expect("requester exists");
                    if rp.space.write(dest, &data).is_err() {
                        self.fail_move(end, requester, KernelError::BadAddress);
                        return;
                    }
                    self.resume_at(end, requester, Outcome::Move(Ok(count)));
                }
            }
        } else {
            // Remote: ask the granting kernel to stream the segment back.
            let grant = match self.host.aliens.get(src_pid) {
                Some(a) if a.dst == requester && a.state == AlienState::Delivered => {
                    a.msg.segment()
                }
                _ => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, requester, KernelError::NotBlocked);
                    return;
                }
            };
            let check = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(src, count, Access::Read))
                .and_then(|_| {
                    let rp = self.host.proc(requester).expect("requester exists");
                    // Destination range must be writable in our space.
                    rp.space.read(dest, count as usize).map(|_| ())
                });
            if let Err(e) = check {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, requester, e);
                return;
            }
            let setup = self.host.costs.move_remote_setup;
            let end = self.charge(t, setup);
            let seq = {
                let pcb = self.host.proc_mut(requester).expect("requester exists");
                pcb.state = ProcState::Moving;
                pcb.next_seq()
            };
            self.host.in_fetches.insert(
                requester.local(),
                InFetch {
                    seq,
                    src_pid,
                    src_addr: src,
                    dest_addr: dest,
                    total: count,
                    expected: 0,
                    retries_left: self.proto.transfer_retries,
                    marker: 0,
                },
            );
            let pkt = Packet {
                seq,
                src_pid: requester.raw(),
                dst_pid: src_pid.raw(),
                body: Body::MoveFromReq {
                    src,
                    offset: 0,
                    total: count,
                },
            };
            let emitted = self.emit_packet(end, &pkt, src_pid.host());
            let timeout = self.proto.transfer_timeout;
            self.timer_at(
                emitted.cpu_done + timeout,
                TimerKind::TransferStall {
                    pid: requester,
                    seq,
                    marker: 0,
                },
            );
        }
    }

    /// Streams the next `MoveFrom` service chunk.
    fn send_serve_chunk(&mut self, t: SimTime, key: (u32, u32)) {
        let Some(serve) = self.host.out_serves.get(&key) else {
            return;
        };
        let off = serve.next_off;
        let n = (self.proto.max_data_per_packet as u32).min(serve.total - off);
        let last = off + n == serve.total;
        let (requester, seq, grantor, src_addr, total) = (
            serve.requester,
            serve.seq,
            serve.grantor,
            serve.src_addr,
            serve.total,
        );
        let data = {
            let gp = self.host.proc(grantor).expect("validated at request");
            gp.space
                .read(src_addr + off, n as usize)
                .expect("validated at request")
                .to_vec()
        };
        let pkt = Packet {
            seq,
            src_pid: grantor.raw(),
            dst_pid: requester.raw(),
            body: Body::MoveFromData {
                offset: off,
                total,
                last,
                data,
            },
        };
        let chunk_cost = self.host.costs.chunk_send;
        let end = self.charge(t, chunk_cost);
        let emitted = self.emit_packet(end, &pkt, requester.host());
        self.host.stats.chunks_sent += 1;
        let serve = self.host.out_serves.get_mut(&key).expect("exists");
        serve.next_off = off + n;
        if last {
            self.host.out_serves.remove(&key);
        } else {
            self.queue.schedule(
                emitted.tx_end,
                Event::ChunkReady {
                    host: self.host_id,
                    key: StreamKey::Serve {
                        requester: key.0,
                        seq: key.1,
                    },
                },
            );
        }
    }

    /// A stream's previous frame left the interface: send the next chunk.
    pub(crate) fn handle_chunk_ready(&mut self, t: SimTime, key: StreamKey) {
        match key {
            StreamKey::Move { mover } => {
                let Some(om) = self.host.out_moves.get(&mover) else {
                    return;
                };
                if om.awaiting_ack {
                    return;
                }
                let logical = self.host.logical;
                self.send_move_chunk(t, Pid::new(logical, mover));
            }
            StreamKey::Serve { requester, seq } => {
                self.send_serve_chunk(t, (requester, seq));
            }
        }
    }

    // ------------------------------------------------------------------
    // Naming
    // ------------------------------------------------------------------

    fn do_get_pid(&mut self, t: SimTime, pid: Pid, logical_id: u32, scope: Scope) {
        let cost = self.host.costs.name_op;
        let end = self.charge(t, cost);
        let local_hit = match scope {
            Scope::Remote => None,
            _ => self.host.names.lookup_local(logical_id),
        };
        if let Some(found) = local_hit {
            self.resume_at(end, pid, Outcome::GetPid(Some(found)));
            return;
        }
        if scope == Scope::Local {
            self.resume_at(end, pid, Outcome::GetPid(None));
            return;
        }
        // Broadcast resolution.
        {
            let retries = self.proto.getpid_retries;
            let pcb = self.host.proc_mut(pid).expect("caller exists");
            pcb.state = ProcState::AwaitingGetPid {
                logical_id,
                retries_left: retries,
            };
        }
        self.host.stats.getpid_broadcasts += 1;
        let pkt = Packet {
            seq: 0,
            src_pid: pid.raw(),
            dst_pid: 0,
            body: Body::GetPidReq { logical_id },
        };
        let emitted = self.emit_broadcast(end, &pkt);
        let timeout = self.proto.getpid_timeout;
        self.timer_at(
            emitted.cpu_done + timeout,
            TimerKind::GetPid { pid, logical_id },
        );
    }

    pub(crate) fn getpid_timer(&mut self, t: SimTime, pid: Pid, logical_id: u32) {
        let retries = match self.host.proc(pid).map(|p| &p.state) {
            Some(ProcState::AwaitingGetPid {
                logical_id: l,
                retries_left,
            }) if *l == logical_id => *retries_left,
            _ => return,
        };
        if retries == 0 {
            let pcb = self.host.proc_mut(pid).expect("checked");
            pcb.state = ProcState::Ready;
            self.resume_at(t, pid, Outcome::GetPid(None));
            return;
        }
        {
            let pcb = self.host.proc_mut(pid).expect("checked");
            pcb.state = ProcState::AwaitingGetPid {
                logical_id,
                retries_left: retries - 1,
            };
        }
        self.host.stats.getpid_broadcasts += 1;
        let pkt = Packet {
            seq: 0,
            src_pid: pid.raw(),
            dst_pid: 0,
            body: Body::GetPidReq { logical_id },
        };
        let emitted = self.emit_broadcast(t, &pkt);
        let timeout = self.proto.getpid_timeout;
        self.timer_at(
            emitted.cpu_done + timeout,
            TimerKind::GetPid { pid, logical_id },
        );
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    pub(crate) fn retransmit_timer(&mut self, t: SimTime, pid: Pid, seq: u32) {
        let (to, retries, packet) = match self.host.proc(pid).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote {
                to,
                seq: s,
                retries_left,
                packet,
                ..
            }) if *s == seq => (*to, *retries_left, packet.clone()),
            _ => return, // exchange completed; stale timer
        };
        if retries == 0 {
            self.host.stats.send_timeouts += 1;
            let pcb = self.host.proc_mut(pid).expect("checked");
            pcb.state = ProcState::Ready;
            self.resume_at(t, pid, Outcome::Send(Err(KernelError::Timeout)));
            return;
        }
        if let Some(ProcState::AwaitingReplyRemote { retries_left, .. }) =
            self.host.proc_mut(pid).map(|p| &mut p.state)
        {
            *retries_left = retries - 1;
        }
        self.host.stats.retransmissions += 1;
        let emitted = self.emit_bytes(t, packet, to.host());
        let timeout = self.proto.retransmit_timeout;
        self.timer_at(
            emitted.cpu_done + timeout,
            TimerKind::Retransmit { pid, seq },
        );
    }

    pub(crate) fn transfer_stall_timer(&mut self, t: SimTime, pid: Pid, seq: u32, marker: u32) {
        let timeout = self.proto.transfer_timeout;
        // MoveTo mover side.
        if let Some(om) = self.host.out_moves.get(&pid.local()) {
            if om.seq != seq {
                return; // timer belongs to a finished transfer
            }
            if om.marker != marker {
                // Progress since the timer was set; re-arm.
                let m = om.marker;
                self.timer_at(
                    t + timeout,
                    TimerKind::TransferStall {
                        pid,
                        seq,
                        marker: m,
                    },
                );
                return;
            }
            if om.retries_left == 0 {
                self.fail_move(t, pid, KernelError::Timeout);
                return;
            }
            let om = self.host.out_moves.get_mut(&pid.local()).expect("exists");
            om.retries_left -= 1;
            om.next_off = om.acked_base;
            om.awaiting_ack = false;
            self.host.stats.transfer_resumes += 1;
            let marker = self.send_move_chunk(t, pid);
            self.timer_at(t + timeout, TimerKind::TransferStall { pid, seq, marker });
            return;
        }
        // MoveFrom requester side.
        if let Some(f) = self.host.in_fetches.get(&pid.local()) {
            if f.seq != seq {
                return; // timer belongs to a finished transfer
            }
            if f.marker != marker {
                let m = f.marker;
                self.timer_at(
                    t + timeout,
                    TimerKind::TransferStall {
                        pid,
                        seq,
                        marker: m,
                    },
                );
                return;
            }
            if f.retries_left == 0 {
                self.fail_move(t, pid, KernelError::Timeout);
                return;
            }
            let (src_pid, src_addr, total, expected) = (f.src_pid, f.src_addr, f.total, f.expected);
            let f = self.host.in_fetches.get_mut(&pid.local()).expect("exists");
            f.retries_left -= 1;
            f.marker = f.marker.wrapping_add(1);
            let marker = f.marker;
            self.host.stats.transfer_resumes += 1;
            let pkt = Packet {
                seq,
                src_pid: pid.raw(),
                dst_pid: src_pid.raw(),
                body: Body::MoveFromReq {
                    src: src_addr,
                    offset: expected,
                    total,
                },
            };
            let emitted = self.emit_packet(t, &pkt, src_pid.host());
            self.timer_at(
                emitted.cpu_done + timeout,
                TimerKind::TransferStall { pid, seq, marker },
            );
        }
    }

    pub(crate) fn housekeeping(&mut self, t: SimTime) {
        let keep = self.proto.alien_keep;
        self.host.aliens.sweep(t, keep);
        self.host
            .in_moves
            .retain(|_, m| !(m.complete && t.since(m.last_seen) >= keep));
        let busy = !self.host.aliens.is_empty()
            || !self.host.in_moves.is_empty()
            || !self.host.out_serves.is_empty();
        if busy {
            let at = t + self.proto.housekeeping;
            self.timer_at(at, TimerKind::Housekeeping);
        } else {
            *self.housekeeping_armed = false;
        }
    }

    // ------------------------------------------------------------------
    // Packet reception
    // ------------------------------------------------------------------

    /// A frame finished arriving at this host's interface.
    pub(crate) fn handle_frame(&mut self, t: SimTime, frame: Frame) {
        self.host.nic.note_rx(frame.payload.len());
        if frame.ethertype != EtherType::INTERKERNEL {
            self.dispatch_raw(t, frame);
            return;
        }
        let encap = self.proto.encapsulation;
        let cost = self.host.costs.rx_dispatch
            + self.host.costs.frame_rx_cost(frame.payload.len())
            + encap.extra_rx_cost();
        let end = self.charge(t, cost);
        let body = if encap.extra_bytes() > 0 {
            if frame.payload.len() < encap.extra_bytes() {
                self.host.stats.checksum_drops += 1;
                self.host.nic.note_rx_bad();
                return;
            }
            &frame.payload[encap.extra_bytes()..]
        } else {
            &frame.payload[..]
        };
        let pkt = match decode(body) {
            Ok(p) => p,
            Err(_) => {
                self.host.stats.checksum_drops += 1;
                self.host.nic.note_rx_bad();
                return;
            }
        };
        // Learn logical-host → station correspondences from traffic
        // (10 Mb addressing mode).
        if let Some(src) = Pid::from_raw(pkt.src_pid) {
            self.host.hostmap.learn(src.host(), frame.src);
        }
        self.dispatch_packet(end, pkt);
    }

    fn dispatch_packet(&mut self, t: SimTime, pkt: Packet) {
        let seq = pkt.seq;
        let src = Pid::from_raw(pkt.src_pid);
        let dst = Pid::from_raw(pkt.dst_pid);
        match pkt.body {
            Body::Send {
                msg,
                appended,
                appended_from,
            } => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_send_pkt(
                    t,
                    src,
                    dst,
                    seq,
                    Message::from_bytes(msg),
                    appended,
                    appended_from,
                );
            }
            Body::Reply { msg, seg_dest, seg } => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_reply_pkt(t, src, dst, seq, Message::from_bytes(msg), seg_dest, seg);
            }
            Body::ReplyPending => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_reply_pending(t, src, dst, seq);
            }
            Body::Nack => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_nack(t, src, dst, seq);
            }
            Body::MoveToData {
                dest,
                offset,
                total,
                last,
                data,
            } => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_moveto_data(t, src, dst, seq, dest, offset, total, last, data);
            }
            Body::MoveFromReq {
                src: addr,
                offset,
                total,
            } => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_movefrom_req(t, src, dst, seq, addr, offset, total);
            }
            Body::MoveFromData {
                offset,
                total,
                last,
                data,
            } => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_movefrom_data(t, src, dst, seq, offset, total, last, data);
            }
            Body::TransferAck { received, status } => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_transfer_ack(t, src, dst, seq, received, status);
            }
            Body::GetPidReq { logical_id } => {
                let Some(src) = src else { return };
                self.handle_getpid_req(t, src, logical_id);
            }
            Body::GetPidReply { logical_id, pid } => {
                let Some(dst) = dst else { return };
                self.handle_getpid_reply(t, dst, logical_id, pid);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_send_pkt(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        msg: Message,
        appended: Vec<u8>,
        appended_from: u32,
    ) {
        if !dst.is_local_to(self.host.logical) {
            return; // stray broadcast-fallback delivery; not ours
        }
        // Duplicate filtering comes *before* the existence check: a
        // retransmission of an exchange that already completed must be
        // answered from the alien's cached reply even if the replier has
        // since exited (the sender's reply was lost, not the exchange).
        if let Some(alien) = self.host.aliens.get(src) {
            if alien.seq == seq {
                match &alien.state {
                    AlienState::Replied { packet, .. } => {
                        let packet = packet.clone();
                        self.host.stats.duplicates_filtered += 1;
                        self.host.stats.replies_retransmitted += 1;
                        self.emit_bytes(t, packet, src.host());
                    }
                    _ => {
                        self.host.stats.duplicates_filtered += 1;
                        self.host.stats.reply_pending_sent += 1;
                        let pkt = Packet {
                            seq,
                            src_pid: dst.raw(),
                            dst_pid: src.raw(),
                            body: Body::ReplyPending,
                        };
                        self.emit_packet(t, &pkt, src.host());
                    }
                }
                return;
            }
        }
        if self.host.proc(dst).is_none() {
            self.send_nack(t, src, seq, dst);
            return;
        }
        // Is there an existing queued entry for this source? (Avoid
        // double-queueing when a superseding exchange replaces an alien
        // still sitting in the receiver's queue.)
        let already_queued = matches!(
            self.host.aliens.get(src),
            Some(a) if a.state == AlienState::Queued
        );
        match self
            .host
            .aliens
            .admit(src, seq, dst, msg, appended, appended_from)
        {
            SendVerdict::Deliver => {
                self.host.stats.aliens_allocated += 1;
                let alloc = self.host.costs.alien_alloc + self.host.costs.unblock;
                let end = self.charge(t, alloc);
                self.arm_housekeeping(end);
                if !already_queued {
                    let pcb = self.host.proc_mut(dst).expect("checked");
                    pcb.senders.push_back(src);
                }
                let receiving = self
                    .host
                    .proc(dst)
                    .map(|p| p.state.is_receiving())
                    .unwrap_or(false);
                if receiving {
                    self.pump(end, dst, true);
                }
            }
            SendVerdict::RetransmitReply(packet) => {
                self.host.stats.duplicates_filtered += 1;
                self.host.stats.replies_retransmitted += 1;
                self.emit_bytes(t, packet, src.host());
            }
            SendVerdict::ReplyPending => {
                // Either a duplicate whose reply is still pending, or the
                // alien pool is exhausted.
                if matches!(self.host.aliens.get(src), Some(a) if a.seq == seq) {
                    self.host.stats.duplicates_filtered += 1;
                } else {
                    self.host.stats.aliens_exhausted += 1;
                }
                self.host.stats.reply_pending_sent += 1;
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: Body::ReplyPending,
                };
                self.emit_packet(t, &pkt, src.host());
            }
            SendVerdict::Drop => {
                self.host.stats.duplicates_filtered += 1;
            }
        }
    }

    // Parameters mirror the fields of a wire `Body::Reply` one-for-one.
    #[allow(clippy::too_many_arguments)]
    fn handle_reply_pkt(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        msg: Message,
        seg_dest: u32,
        seg: Vec<u8>,
    ) {
        let grant = match self.host.proc(dst).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote {
                to, seq: s, grant, ..
            }) if *to == src && *s == seq => *grant,
            _ => return, // duplicate or stale reply
        };
        let mut cost =
            self.host.costs.reply_match + self.host.costs.unblock + self.host.costs.context_switch;
        let mut seg_err = None;
        if !seg.is_empty() {
            cost += self.host.costs.segment_fixed;
            let ok = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(seg_dest, seg.len() as u32, Access::Write));
            match ok {
                Ok(()) => {
                    let pcb = self.host.proc_mut(dst).expect("checked");
                    if pcb.space.write(seg_dest, &seg).is_err() {
                        seg_err = Some(KernelError::BadAddress);
                    }
                }
                Err(e) => seg_err = Some(e),
            }
        }
        let end = self.charge(t, cost);
        let pcb = self.host.proc_mut(dst).expect("checked");
        pcb.state = ProcState::Ready;
        let outcome = match seg_err {
            None => Outcome::Send(Ok(msg)),
            Some(e) => Outcome::Send(Err(e)),
        };
        self.resume_at(end, dst, outcome);
    }

    fn handle_reply_pending(&mut self, _t: SimTime, src: Pid, dst: Pid, seq: u32) {
        let max = self.proto.max_retries;
        if let Some(ProcState::AwaitingReplyRemote {
            to,
            seq: s,
            retries_left,
            ..
        }) = self.host.proc_mut(dst).map(|p| &mut p.state)
        {
            if *to == src && *s == seq {
                *retries_left = max;
                self.host.stats.reply_pending_received += 1;
            }
        }
    }

    fn handle_nack(&mut self, t: SimTime, src: Pid, dst: Pid, seq: u32) {
        let matches = matches!(
            self.host.proc(dst).map(|p| &p.state),
            Some(ProcState::AwaitingReplyRemote { to, seq: s, .. }) if *to == src && *s == seq
        );
        if matches {
            self.host.stats.nacks_received += 1;
            self.fail_send(t, dst, KernelError::NonexistentProcess);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_moveto_data(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        dest: u32,
        offset: u32,
        total: u32,
        last: bool,
        data: Vec<u8>,
    ) {
        let key = (src.raw(), seq);
        if let Some(m) = self.host.in_moves.get_mut(&key) {
            if m.complete {
                // Duplicate after completion: re-acknowledge.
                m.last_seen = t;
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: Body::TransferAck {
                        received: total,
                        status: TransferStatus::Complete,
                    },
                };
                self.emit_packet(t, &pkt, src.host());
                return;
            }
        } else {
            // First chunk of a new inbound transfer: validate the grant.
            let grant = match self.host.proc(dst).map(|p| &p.state) {
                Some(ProcState::AwaitingReplyRemote { to, grant, .. }) if *to == src => *grant,
                _ => {
                    let pkt = Packet {
                        seq,
                        src_pid: dst.raw(),
                        dst_pid: src.raw(),
                        body: Body::TransferAck {
                            received: 0,
                            status: TransferStatus::Unknown,
                        },
                    };
                    self.emit_packet(t, &pkt, src.host());
                    return;
                }
            };
            // The whole transfer's range is implied by (dest - offset,
            // total); validate this chunk now and later chunks as they
            // arrive.
            if grant.is_none() {
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: Body::TransferAck {
                        received: 0,
                        status: TransferStatus::AccessViolation,
                    },
                };
                self.emit_packet(t, &pkt, src.host());
                return;
            }
            self.host.in_moves.insert(
                key,
                InMove {
                    dest_pid: dst,
                    expected: 0,
                    total,
                    complete: false,
                    last_seen: t,
                },
            );
            self.arm_housekeeping(t);
        }

        let expected = self.host.in_moves.get(&key).expect("just ensured").expected;
        let chunk_cost = self.host.costs.chunk_recv;
        let end = self.charge(t, chunk_cost);

        if offset != expected {
            self.host.stats.chunks_dropped += 1;
            if last {
                // Gap detected at the end: ask for resumption from the
                // last in-order byte.
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: Body::TransferAck {
                        received: expected,
                        status: TransferStatus::Partial,
                    },
                };
                self.emit_packet(end, &pkt, src.host());
            }
            return;
        }

        // In-order chunk: validate against the grant and deposit.
        let grant = match self.host.proc(dst).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote { grant: Some(g), .. }) => *g,
            _ => {
                self.host.in_moves.remove(&key);
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: Body::TransferAck {
                        received: 0,
                        status: TransferStatus::Unknown,
                    },
                };
                self.emit_packet(end, &pkt, src.host());
                return;
            }
        };
        let n = data.len() as u32;
        let ok = grant.check(dest, n, Access::Write).and_then(|_| {
            let pcb = self.host.proc_mut(dst).expect("checked");
            pcb.space.write(dest, &data)
        });
        if ok.is_err() {
            self.host.in_moves.remove(&key);
            let pkt = Packet {
                seq,
                src_pid: dst.raw(),
                dst_pid: src.raw(),
                body: Body::TransferAck {
                    received: 0,
                    status: TransferStatus::AccessViolation,
                },
            };
            self.emit_packet(end, &pkt, src.host());
            return;
        }
        self.host.stats.chunks_received += 1;
        let m = self.host.in_moves.get_mut(&key).expect("exists");
        m.expected += n;
        m.last_seen = end;
        let complete = last && m.expected == m.total;
        let received = m.expected;
        if last {
            if complete {
                m.complete = true;
            }
            let status = if complete {
                TransferStatus::Complete
            } else {
                TransferStatus::Partial
            };
            let ack_cost = self.host.costs.ack_process;
            let end2 = self.charge(end, ack_cost);
            let pkt = Packet {
                seq,
                src_pid: dst.raw(),
                dst_pid: src.raw(),
                body: Body::TransferAck {
                    received: if complete { total } else { received },
                    status,
                },
            };
            self.emit_packet(end2, &pkt, src.host());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_movefrom_req(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        addr: u32,
        offset: u32,
        total: u32,
    ) {
        // `dst` is the local granting process; `src` the remote requester.
        let grant = match self.host.proc(dst).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote { to, grant, .. }) if *to == src => *grant,
            _ => {
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: Body::TransferAck {
                        received: 0,
                        status: TransferStatus::Unknown,
                    },
                };
                self.emit_packet(t, &pkt, src.host());
                return;
            }
        };
        let ok = grant
            .ok_or(KernelError::NoSegmentAccess)
            .and_then(|g| g.check(addr, total, Access::Read))
            .and_then(|_| {
                let pcb = self.host.proc(dst).expect("checked");
                pcb.space.read(addr, total as usize).map(|_| ())
            });
        if ok.is_err() {
            let pkt = Packet {
                seq,
                src_pid: dst.raw(),
                dst_pid: src.raw(),
                body: Body::TransferAck {
                    received: 0,
                    status: TransferStatus::AccessViolation,
                },
            };
            self.emit_packet(t, &pkt, src.host());
            return;
        }
        let setup = self.host.costs.move_remote_setup;
        let end = self.charge(t, setup);
        let key = (src.raw(), seq);
        self.host.out_serves.insert(
            key,
            OutServe {
                requester: src,
                seq,
                grantor: dst,
                src_addr: addr,
                next_off: offset,
                total,
            },
        );
        self.arm_housekeeping(end);
        self.send_serve_chunk(end, key);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_movefrom_data(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        offset: u32,
        _total: u32,
        last: bool,
        data: Vec<u8>,
    ) {
        let uid = dst.local();
        let Some(f) = self.host.in_fetches.get(&uid) else {
            return; // transfer already completed or failed
        };
        if f.src_pid != src || f.seq != seq {
            return;
        }
        let expected = f.expected;
        let chunk_cost = self.host.costs.chunk_recv;
        let end = self.charge(t, chunk_cost);

        if offset != expected {
            self.host.stats.chunks_dropped += 1;
            if last {
                // Ask the source to resume from the last in-order byte.
                self.host.stats.transfer_resumes += 1;
                let f = self.host.in_fetches.get_mut(&uid).expect("exists");
                f.marker = f.marker.wrapping_add(1);
                let (seq, src_pid, src_addr, total_rem) = (f.seq, f.src_pid, f.src_addr, f.total);
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src_pid.raw(),
                    body: Body::MoveFromReq {
                        src: src_addr,
                        offset: expected,
                        total: total_rem,
                    },
                };
                self.emit_packet(end, &pkt, src_pid.host());
            }
            return;
        }

        let n = data.len() as u32;
        let dest = {
            let f = self.host.in_fetches.get(&uid).expect("exists");
            f.dest_addr + offset
        };
        {
            let pcb = self.host.proc_mut(dst).expect("requester exists");
            if pcb.space.write(dest, &data).is_err() {
                self.fail_move(end, dst, KernelError::BadAddress);
                return;
            }
        }
        self.host.stats.chunks_received += 1;
        let f = self.host.in_fetches.get_mut(&uid).expect("exists");
        f.expected += n;
        f.marker = f.marker.wrapping_add(1);
        let done = last && f.expected == f.total;
        let total = f.total;
        if done {
            self.host.in_fetches.remove(&uid);
            let cost = self.host.costs.ack_process
                + self.host.costs.unblock
                + self.host.costs.context_switch;
            let end2 = self.charge(end, cost);
            let pcb = self.host.proc_mut(dst).expect("requester exists");
            pcb.state = ProcState::Ready;
            self.resume_at(end2, dst, Outcome::Move(Ok(total)));
        } else if last {
            // Final chunk arrived but earlier ones are missing — covered
            // by the out-of-order branch above, so nothing to do here.
        }
    }

    fn handle_transfer_ack(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        received: u32,
        status: TransferStatus,
    ) {
        // MoveTo mover side?
        if let Some(om) = self.host.out_moves.get(&dst.local()) {
            if om.seq != seq || om.dest_pid != src {
                return;
            }
            match status {
                TransferStatus::Complete => {
                    let total = om.total;
                    self.host.out_moves.remove(&dst.local());
                    let cost = self.host.costs.ack_process
                        + self.host.costs.unblock
                        + self.host.costs.context_switch;
                    let end = self.charge(t, cost);
                    let pcb = self.host.proc_mut(dst).expect("mover exists");
                    pcb.state = ProcState::Ready;
                    self.resume_at(end, dst, Outcome::Move(Ok(total)));
                }
                TransferStatus::Partial => {
                    let om = self.host.out_moves.get_mut(&dst.local()).expect("exists");
                    om.acked_base = received;
                    om.next_off = received;
                    om.awaiting_ack = false;
                    om.marker = om.marker.wrapping_add(1);
                    self.host.stats.transfer_resumes += 1;
                    let end = self.charge(t, self.host.costs.ack_process);
                    self.send_move_chunk(end, dst);
                }
                TransferStatus::AccessViolation | TransferStatus::Unknown => {
                    self.fail_move(t, dst, KernelError::TransferRejected);
                }
            }
            return;
        }
        // MoveFrom requester side: acks only carry rejections.
        if let Some(f) = self.host.in_fetches.get(&dst.local()) {
            if f.seq != seq || f.src_pid != src {
                return;
            }
            match status {
                TransferStatus::AccessViolation | TransferStatus::Unknown => {
                    self.fail_move(t, dst, KernelError::TransferRejected);
                }
                _ => {}
            }
        }
    }

    fn handle_getpid_req(&mut self, t: SimTime, src: Pid, logical_id: u32) {
        let Some(found) = self.host.names.lookup_remote(logical_id) else {
            return;
        };
        self.host.stats.getpid_answers += 1;
        let cost = self.host.costs.name_op;
        let end = self.charge(t, cost);
        let pkt = Packet {
            seq: 0,
            src_pid: found.raw(), // advertised pid also teaches the hostmap
            dst_pid: src.raw(),
            body: Body::GetPidReply {
                logical_id,
                pid: found.raw(),
            },
        };
        self.emit_packet(end, &pkt, src.host());
    }

    fn handle_getpid_reply(&mut self, t: SimTime, dst: Pid, logical_id: u32, pid_raw: u32) {
        let matches = matches!(
            self.host.proc(dst).map(|p| &p.state),
            Some(ProcState::AwaitingGetPid { logical_id: l, .. }) if *l == logical_id
        );
        if !matches {
            return; // already resolved by an earlier answer
        }
        let cost =
            self.host.costs.name_op + self.host.costs.unblock + self.host.costs.context_switch;
        let end = self.charge(t, cost);
        let pcb = self.host.proc_mut(dst).expect("checked");
        pcb.state = ProcState::Ready;
        self.resume_at(end, dst, Outcome::GetPid(Pid::from_raw(pid_raw)));
    }

    // ------------------------------------------------------------------
    // Raw protocol handlers
    // ------------------------------------------------------------------

    fn dispatch_raw(&mut self, t: SimTime, frame: Frame) {
        let cost = self.host.costs.frame_rx_cost(frame.payload.len());
        let end = self.charge(t, cost);
        let ety = frame.ethertype.0;
        let Some(mut handler) = self.host.raw.remove(&ety) else {
            return; // no handler registered; frame dropped
        };
        {
            let mut raw = RawCtxImpl::new(self, end, EtherType(ety));
            handler.on_frame(&mut raw, &frame);
        }
        self.host.raw.insert(ety, handler);
    }
}

/// [`crate::raw::RawCtx`] implementation over a kernel context.
pub(crate) struct RawCtxImpl<'c, 'a> {
    ctx: &'c mut Ctx<'a>,
    now: SimTime,
    ethertype: EtherType,
}

impl<'c, 'a> RawCtxImpl<'c, 'a> {
    pub(crate) fn new(ctx: &'c mut Ctx<'a>, now: SimTime, ethertype: EtherType) -> Self {
        RawCtxImpl {
            ctx,
            now,
            ethertype,
        }
    }
}

impl crate::raw::RawCtx for RawCtxImpl<'_, '_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn mac(&self) -> v_net::MacAddr {
        self.ctx.host.nic.mac()
    }

    fn send_frame(&mut self, dst: v_net::MacAddr, payload: Vec<u8>) {
        let wire_len = payload.len();
        let ready = self.ctx.host.nic.tx_ready_after(self.now);
        let cost = self.ctx.host.costs.frame_tx_cost(wire_len);
        let span = self.ctx.host.cpu.charge(ready, cost);
        let frame = Frame::new(dst, self.ctx.host.nic.mac(), self.ethertype, payload);
        let tx = self.ctx.net.transmit(span.end, frame);
        self.ctx.host.nic.note_tx(tx.tx_end, wire_len);
        for d in &tx.deliveries {
            let host = HostId((d.dst.0 - 1) as usize);
            self.ctx.queue.schedule(
                d.at,
                Event::Frame {
                    host,
                    frame: d.frame.clone(),
                },
            );
        }
        self.now = span.end;
    }

    fn charge(&mut self, cost: SimDuration) {
        self.now = self.ctx.host.cpu.charge(self.now, cost).end;
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let kind = TimerKind::Raw {
            ethertype: self.ethertype.0,
            token,
        };
        let at = self.now + delay;
        self.ctx.timer_at(at, kind);
    }
}
