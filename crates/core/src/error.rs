//! Kernel error codes.

use std::fmt;

/// Errors surfaced to processes by kernel primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelError {
    /// The addressed process does not exist (locally verified, or a
    /// negative acknowledgement arrived from the remote kernel).
    NonexistentProcess,
    /// A bulk transfer was retransmitted `N` times without any progress.
    Timeout,
    /// The addressed host is presumed down: a `Send` exhausted its
    /// retransmission budget with neither reply nor reply-pending (the
    /// paper's "host unreachable after N retransmissions" condition), or
    /// the local kernel already held the host suspect and its probe went
    /// unanswered.
    HostDown,
    /// A data-transfer or segment operation was attempted outside the
    /// segment access the message conventions granted.
    NoSegmentAccess,
    /// An address range fell outside the target address space.
    BadAddress,
    /// `Reply` was issued to a process that is not awaiting reply from the
    /// replier.
    NotAwaitingReply,
    /// `MoveTo`/`MoveFrom` addressed a process that is not awaiting reply
    /// from the active process.
    NotBlocked,
    /// The remote kernel rejected a transfer (grant violation or unknown
    /// transfer at its end).
    TransferRejected,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelError::NonexistentProcess => "nonexistent process",
            KernelError::Timeout => "operation timed out after N retransmissions",
            KernelError::HostDown => "remote host presumed down (retransmission budget exhausted)",
            KernelError::NoSegmentAccess => "segment access not granted",
            KernelError::BadAddress => "address out of range",
            KernelError::NotAwaitingReply => "process not awaiting reply",
            KernelError::NotBlocked => "process not blocked on the active process",
            KernelError::TransferRejected => "remote kernel rejected the transfer",
        };
        f.write_str(s)
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KernelError::Timeout.to_string().contains("retransmissions"));
        assert!(KernelError::HostDown.to_string().contains("down"));
        assert!(KernelError::NoSegmentAccess.to_string().contains("segment"));
    }
}
