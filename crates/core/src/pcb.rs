//! Process descriptors.

use std::collections::VecDeque;

use crate::addrspace::AddressSpace;
use crate::message::Message;
use crate::pid::Pid;
use crate::program::Program;
use crate::segment::SegmentGrant;

/// Scheduling/blocking state of a process.
#[derive(Debug)]
pub enum ProcState {
    /// Runnable (a resume is scheduled or in progress).
    Ready,
    /// Blocked in `Receive`.
    Receiving,
    /// Blocked in `ReceiveWithSegment`, with the receiver's buffer.
    ReceivingSeg {
        /// Buffer start in the receiver's space.
        buf: u32,
        /// Buffer capacity in bytes.
        size: u32,
    },
    /// Blocked in `Send` to a local process, awaiting its reply.
    AwaitingReplyLocal {
        /// The process that must reply.
        to: Pid,
    },
    /// Blocked in `Send` to a remote process; the kernel retransmits the
    /// cached packet until a reply, reply-pending, nack, or exhaustion.
    AwaitingReplyRemote {
        /// The remote process that must reply.
        to: Pid,
        /// Message sequence number of this exchange.
        seq: u32,
        /// Retransmissions remaining before the send fails.
        retries_left: u32,
        /// Encoded Send packet, cached for retransmission.
        packet: Vec<u8>,
        /// Write-capable grant extracted from the sent message; incoming
        /// `ReplyWithSegment` data and remote `MoveTo` chunks are
        /// validated against it on this (the granting) side too.
        grant: Option<SegmentGrant>,
    },
    /// Blocked in a remote `MoveTo`/`MoveFrom` (stream state lives in the
    /// host's transfer tables).
    Moving,
    /// Blocked in a broadcast `GetPid` resolution.
    AwaitingGetPid {
        /// Logical id being resolved.
        logical_id: u32,
        /// Broadcast retries remaining.
        retries_left: u32,
    },
    /// Blocked in `Delay` (or `Compute`; the distinction is only whether
    /// processor time was charged).
    Waiting,
}

impl ProcState {
    /// True if the process is blocked in either receive variant.
    pub fn is_receiving(&self) -> bool {
        matches!(self, ProcState::Receiving | ProcState::ReceivingSeg { .. })
    }
}

/// A process control block.
pub struct Pcb {
    /// This process's identifier.
    pub pid: Pid,
    /// The process body; `None` while the body is being resumed (taken
    /// out to satisfy the borrow checker) or for alien-less helpers.
    pub program: Option<Box<dyn Program>>,
    /// Blocking state.
    pub state: ProcState,
    /// The process's address space.
    pub space: AddressSpace,
    /// Message being sent while blocked in `Send` (the receiver and data
    /// transfers read segment grants out of it).
    pub out_msg: Message,
    /// FCFS queue of senders (local pids and alien pids) with messages
    /// waiting for this process to `Receive`.
    pub senders: VecDeque<Pid>,
    /// Sequence number of the next outgoing remote message exchange.
    pub send_seq: u32,
    /// Monotonic marker used to detect stale transfer-stall timers.
    pub stall_marker: u32,
    /// Debug name (for traces and error messages).
    pub name: String,
}

impl Pcb {
    /// Creates a ready PCB.
    pub fn new(pid: Pid, program: Box<dyn Program>, space_size: usize, name: String) -> Pcb {
        Pcb {
            pid,
            program: Some(program),
            state: ProcState::Ready,
            space: AddressSpace::new(space_size),
            out_msg: Message::empty(),
            senders: VecDeque::new(),
            send_seq: 0,
            stall_marker: 0,
            name,
        }
    }

    /// Allocates the next message sequence number.
    pub fn next_seq(&mut self) -> u32 {
        self.send_seq = self.send_seq.wrapping_add(1);
        self.send_seq
    }
}

impl std::fmt::Debug for Pcb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pcb")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("state", &self.state)
            .field("queued_senders", &self.senders.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::LogicalHost;
    use crate::program::{Api, Outcome};

    struct Nop;
    impl Program for Nop {
        fn resume(&mut self, _api: &mut Api<'_>, _outcome: Outcome) {}
    }

    #[test]
    fn seq_numbers_increment() {
        let pid = Pid::new(LogicalHost(1), 1);
        let mut pcb = Pcb::new(pid, Box::new(Nop), 1024, "t".into());
        assert_eq!(pcb.next_seq(), 1);
        assert_eq!(pcb.next_seq(), 2);
        pcb.send_seq = u32::MAX;
        assert_eq!(pcb.next_seq(), 0); // wraps without panicking
    }

    #[test]
    fn receiving_states() {
        assert!(ProcState::Receiving.is_receiving());
        assert!(ProcState::ReceivingSeg { buf: 0, size: 1 }.is_receiving());
        assert!(!ProcState::Ready.is_receiving());
        assert!(!ProcState::Waiting.is_receiving());
    }
}
