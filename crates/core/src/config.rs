//! Cluster and protocol configuration.

use v_net::{
    CollisionBug, FaultPlan, InternetworkConfig, LinkParams, MeshConfig, NetworkKind, Topology,
};
use v_sim::SimDuration;

use crate::cpu::CpuSpeed;
use crate::hostmap::AddressingMode;
use crate::pid::LogicalHost;

/// Optional IP encapsulation of interkernel packets (§3 of the paper
/// measured ~20 % slowdown from an IP layer, "even without computing the
/// IP header checksum and with only the simplest routing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encapsulation {
    /// Raw data-link level (the kernel's choice).
    Raw,
    /// Internet (IP) headers on every interkernel packet.
    Ip,
}

impl Encapsulation {
    /// Extra header bytes per packet.
    pub fn extra_bytes(self) -> usize {
        match self {
            Encapsulation::Raw => 0,
            Encapsulation::Ip => 20,
        }
    }

    /// Extra fixed processor cost to build the encapsulation header.
    pub fn extra_tx_cost(self) -> SimDuration {
        match self {
            Encapsulation::Raw => SimDuration::ZERO,
            Encapsulation::Ip => SimDuration::from_micros(100),
        }
    }

    /// Extra fixed processor cost to parse and route the header.
    pub fn extra_rx_cost(self) -> SimDuration {
        match self {
            Encapsulation::Raw => SimDuration::ZERO,
            Encapsulation::Ip => SimDuration::from_micros(120),
        }
    }
}

/// Interkernel protocol parameters.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Retransmission timeout `T` for message exchanges.
    pub retransmit_timeout: SimDuration,
    /// Retransmission budget `N`: a Send fails after `N` retransmissions
    /// with neither reply nor reply-pending.
    pub max_retries: u32,
    /// Reduced retransmission budget for a `Send` to a host this kernel
    /// already holds suspect (a previous exchange exhausted the full
    /// budget). The probe keeps failover latency bounded while still
    /// giving a restarted host a chance to answer and clear suspicion.
    pub suspect_retries: u32,
    /// Largest data payload per packet for bulk transfer and appended
    /// segments ("maximally-sized packets").
    pub max_data_per_packet: usize,
    /// Cap on the segment prefix appended to a Send packet; the paper
    /// sets it "at least as large as a file block" so a one-block write is
    /// a single two-packet exchange.
    pub max_appended_segment: usize,
    /// Alien descriptor pool size per kernel.
    pub alien_pool: usize,
    /// How long replied aliens retain cached replies.
    pub alien_keep: SimDuration,
    /// Stall timeout for bulk transfers (no in-order progress → resume
    /// from the last acknowledged offset).
    pub transfer_timeout: SimDuration,
    /// Retries for a stalled transfer before it fails.
    pub transfer_retries: u32,
    /// Timeout awaiting answers to a broadcast `GetPid`.
    pub getpid_timeout: SimDuration,
    /// Broadcast retries for `GetPid` before returning "no such id".
    pub getpid_retries: u32,
    /// Interval of the kernel's housekeeping sweep (alien/transfer
    /// garbage collection).
    pub housekeeping: SimDuration,
    /// Packet encapsulation.
    pub encapsulation: Encapsulation,
    /// §3.4 appended segments: the first part of a read-granted segment
    /// rides in the Send packet. Disabling reproduces the unmodified
    /// (Thoth-style) kernel for ablation experiments.
    pub appended_segments: bool,
    /// Reply caching: replied aliens retain the encoded reply packet for
    /// `alien_keep` so retransmissions of a completed exchange are
    /// answered without re-executing the receiver. Disabling (the
    /// "alien keep = 0" ablation) frees descriptors immediately, so a
    /// lost reply costs a full re-delivery.
    pub reply_caching: bool,
    /// Zero-copy same-host transport. A `Send`/`Reply`/`MoveTo`/
    /// `MoveFrom` whose peer resolves to the local host never touches
    /// the wire, but the classic (Thoth-style) delivery still pays a
    /// memory-to-memory copy per data byte. With the fast path on, the
    /// kernel instead remaps the pages carrying the typed message data
    /// into the peer's space through the kernel's loopback path,
    /// charging one fixed [`crate::CostModel::local_hop`] per
    /// delivery in place of `segment/move fixed + copy_mem(n)` and
    /// counting `n` into
    /// [`crate::KernelStats::local_fastpath_bytes_saved`]. Off (the
    /// default) is bit-identical to the historical copy-based path, and
    /// remote exchanges are untouched either way — a stale pid on a
    /// restarted host still Nacks exactly like the wire path.
    pub local_fastpath: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            retransmit_timeout: SimDuration::from_millis(200),
            // Budget sized so an exchange survives the harshest fault mix
            // the test storms generate (10% loss + 8% corruption each
            // way ⇒ ~1/3 per-attempt failure): 13 attempts pushes the
            // per-exchange failure odds below 1e-6.
            max_retries: 12,
            suspect_retries: 1,
            max_data_per_packet: 512,
            max_appended_segment: 512,
            alien_pool: 16,
            alien_keep: SimDuration::from_millis(2000),
            transfer_timeout: SimDuration::from_millis(200),
            transfer_retries: 5,
            getpid_timeout: SimDuration::from_millis(100),
            getpid_retries: 3,
            housekeeping: SimDuration::from_millis(1000),
            encapsulation: Encapsulation::Raw,
            appended_segments: true,
            reply_caching: true,
            local_fastpath: false,
        }
    }
}

/// Per-host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Processor grade.
    pub cpu: CpuSpeed,
    /// Logical host identifier; `None` assigns one from the station
    /// address by the 3 Mb convention.
    pub logical_host: Option<LogicalHost>,
    /// Which network segment this host attaches to. Only meaningful for
    /// [`Topology::Internetwork`]; single-segment topologies ignore it.
    pub segment: usize,
}

impl HostConfig {
    /// A host with the given CPU and an auto-assigned logical host id on
    /// segment 0.
    pub fn new(cpu: CpuSpeed) -> HostConfig {
        HostConfig {
            cpu,
            logical_host: None,
            segment: 0,
        }
    }

    /// A host attached to a specific network segment.
    pub fn on_segment(cpu: CpuSpeed, segment: usize) -> HostConfig {
        HostConfig {
            segment,
            ..HostConfig::new(cpu)
        }
    }
}

/// Whole-cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Which physical network to simulate when `topology` is `None`
    /// (the paper's single shared segment).
    pub network: NetworkKind,
    /// Explicit network topology. `None` means one shared Ethernet
    /// segment of the `network` flavour — the paper's configuration and
    /// the default for every existing experiment.
    pub topology: Option<Topology>,
    /// pid → station addressing scheme.
    pub addressing: AddressingMode,
    /// The workstations, in station-address order (station `i + 1`).
    pub hosts: Vec<HostConfig>,
    /// Protocol parameters.
    pub protocol: ProtocolConfig,
    /// Medium fault injection. The empty plan means "unset": it leaves
    /// any error rates the topology carries in its own parameters (a WAN
    /// link's configured loss) in effect — to run a clean control arm on
    /// a lossy topology, build the topology without loss instead.
    pub faults: FaultPlan,
    /// The §5.4 collision-detection hardware bug.
    pub collision_bug: Option<CollisionBug>,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl ClusterConfig {
    /// A cluster on the 3 Mb experimental Ethernet with direct addressing
    /// — the paper's main configuration.
    pub fn three_mb() -> ClusterConfig {
        ClusterConfig {
            network: NetworkKind::Experimental3Mb,
            topology: None,
            addressing: AddressingMode::Direct,
            hosts: Vec::new(),
            protocol: ProtocolConfig::default(),
            faults: FaultPlan::NONE,
            collision_bug: None,
            seed: 0x5EED,
        }
    }

    /// A cluster on the 10 Mb standard Ethernet with learned addressing
    /// (§8's configuration).
    pub fn ten_mb() -> ClusterConfig {
        ClusterConfig {
            network: NetworkKind::Standard10Mb,
            addressing: AddressingMode::Learned,
            ..ClusterConfig::three_mb()
        }
    }

    /// Two workstations joined by a point-to-point WAN link — the
    /// off-segment regime the paper never measured.
    pub fn wan(params: LinkParams) -> ClusterConfig {
        ClusterConfig {
            topology: Some(Topology::PointToPoint(params)),
            ..ClusterConfig::three_mb()
        }
    }

    /// Ethernet segments joined by a store-and-forward gateway; place
    /// hosts with [`ClusterConfig::with_host_on`].
    pub fn internetwork(topo: InternetworkConfig) -> ClusterConfig {
        ClusterConfig {
            topology: Some(Topology::Internetwork(topo)),
            ..ClusterConfig::three_mb()
        }
    }

    /// Ethernet segments joined by a routed mesh of gateways; place
    /// hosts with [`ClusterConfig::with_host_on`].
    pub fn mesh(topo: MeshConfig) -> ClusterConfig {
        ClusterConfig {
            topology: Some(Topology::Mesh(topo)),
            ..ClusterConfig::three_mb()
        }
    }

    /// Adds a host; returns `self` for chaining.
    pub fn with_host(mut self, cpu: CpuSpeed) -> Self {
        self.hosts.push(HostConfig::new(cpu));
        self
    }

    /// Adds `n` identical hosts.
    pub fn with_hosts(mut self, n: usize, cpu: CpuSpeed) -> Self {
        for _ in 0..n {
            self.hosts.push(HostConfig::new(cpu));
        }
        self
    }

    /// Adds a host on a specific segment of an internetwork or mesh
    /// topology.
    pub fn with_host_on(mut self, cpu: CpuSpeed, segment: usize) -> Self {
        self.hosts.push(HostConfig::on_segment(cpu, segment));
        self
    }

    /// Number of network segments hosts can be placed on (1 for the
    /// paper's single shared Ethernet).
    pub fn num_segments(&self) -> usize {
        self.topology.as_ref().map_or(1, Topology::num_segments)
    }

    /// Validates per-host segment placement against the topology.
    /// [`crate::Cluster::new`] calls this and panics on the error, so a
    /// host placed on a nonexistent segment fails loudly at build time —
    /// with the offending host named — rather than misrouting frames.
    pub fn validate(&self) -> Result<(), String> {
        let segments = self.num_segments();
        for (i, h) in self.hosts.iter().enumerate() {
            if h.segment >= segments {
                return Err(format!(
                    "host {i} is placed on segment {}, but the topology has only \
                     {segments} segment(s)",
                    h.segment
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = ProtocolConfig::default();
        assert!(p.max_retries > 0);
        assert!(p.max_data_per_packet >= 512);
        assert!(p.alien_pool > 0);
        assert_eq!(p.encapsulation, Encapsulation::Raw);
        assert!(p.appended_segments, "paper's kernel appends segments");
        assert!(p.reply_caching, "paper's kernel caches replies");
        assert!(
            !p.local_fastpath,
            "zero-copy local transport is opt-in; default matches the paper"
        );
    }

    #[test]
    fn topology_builders() {
        let wan = ClusterConfig::wan(v_net::LinkParams::T1);
        assert!(matches!(wan.topology, Some(Topology::PointToPoint(_))));

        let inet = ClusterConfig::internetwork(InternetworkConfig::two_segments())
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 1);
        assert!(matches!(inet.topology, Some(Topology::Internetwork(_))));
        assert_eq!(inet.hosts[0].segment, 0);
        assert_eq!(inet.hosts[1].segment, 1);

        let mesh = ClusterConfig::mesh(MeshConfig::line(3))
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 2);
        assert!(matches!(mesh.topology, Some(Topology::Mesh(_))));
        assert_eq!(mesh.num_segments(), 3);

        // The paper's configurations stay single-segment.
        assert!(ClusterConfig::three_mb().topology.is_none());
        assert!(ClusterConfig::ten_mb().topology.is_none());
    }

    #[test]
    fn placement_validation_names_the_offending_host() {
        let ok = ClusterConfig::mesh(MeshConfig::line(3))
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 2);
        assert!(ok.validate().is_ok());

        let bad = ClusterConfig::mesh(MeshConfig::line(3))
            .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
            .with_host_on(CpuSpeed::Mc68000At8MHz, 3);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("host 1"), "{err}");
        assert!(err.contains("segment 3"), "{err}");

        // Single-segment topologies only accept segment 0.
        let single = ClusterConfig::three_mb().with_host_on(CpuSpeed::Mc68000At8MHz, 1);
        assert!(single.validate().is_err());
        assert_eq!(ClusterConfig::three_mb().num_segments(), 1);
    }

    #[test]
    fn builders_accumulate_hosts() {
        let cfg = ClusterConfig::three_mb()
            .with_host(CpuSpeed::Mc68000At8MHz)
            .with_hosts(2, CpuSpeed::Mc68000At10MHz);
        assert_eq!(cfg.hosts.len(), 3);
        assert_eq!(cfg.addressing, AddressingMode::Direct);
        let cfg10 = ClusterConfig::ten_mb();
        assert_eq!(cfg10.addressing, AddressingMode::Learned);
        assert_eq!(cfg10.network, NetworkKind::Standard10Mb);
    }

    #[test]
    fn ip_encapsulation_adds_costs() {
        assert_eq!(Encapsulation::Raw.extra_bytes(), 0);
        assert!(Encapsulation::Ip.extra_bytes() > 0);
        assert!(Encapsulation::Ip.extra_tx_cost() > SimDuration::ZERO);
        assert!(Encapsulation::Ip.extra_rx_cost() > SimDuration::ZERO);
    }
}
