//! The process programming model.
//!
//! A V process is a [`Program`]: a state machine the kernel resumes with
//! an [`Outcome`] each time a blocking kernel operation completes. During
//! a resume the program may issue any number of **non-blocking** calls
//! (`Reply`, `SetPid`, memory access, spawning) and at most one
//! **blocking** call (`Send`, `Receive`, `MoveTo`, ...); the kernel then
//! runs the blocking operation and schedules the next resume. This is
//! continuation-passing style standing in for Thoth's blocking processes
//! — the synchronous *semantics* (a `Send` does not "return" until the
//! reply arrives) are exactly preserved.
//!
//! Programs never see simulation internals: everything flows through the
//! [`crate::cluster::Api`] handle, which charges the calibrated
//! processor costs for each operation.

use crate::error::KernelError;
use crate::message::Message;
use crate::pid::Pid;

pub use crate::cluster::Api;

/// Completion of a blocking kernel operation, handed to
/// [`Program::resume`].
#[derive(Debug, Clone)]
pub enum Outcome {
    /// First resume after process creation.
    Started,
    /// `Send` completed: the reply message (which, per the message
    /// semantics, has overwritten the original message area), or why the
    /// exchange failed.
    Send(Result<Message, KernelError>),
    /// `Receive` completed.
    Receive {
        /// The sending process.
        from: Pid,
        /// The 32-byte message.
        msg: Message,
    },
    /// `ReceiveWithSegment` completed.
    ReceiveSeg {
        /// The sending process.
        from: Pid,
        /// The 32-byte message.
        msg: Message,
        /// Bytes of the sender's read-granted segment delivered into the
        /// receiver's buffer (0 if none were available).
        seg_len: u32,
    },
    /// `MoveTo` / `MoveFrom` completed with the byte count, or failed.
    Move(Result<u32, KernelError>),
    /// `GetPid` completed (`None`: no such logical id answered).
    GetPid(Option<Pid>),
    /// `Delay` elapsed.
    Delay,
    /// `Compute` finished.
    Compute,
}

/// A process body.
///
/// `resume` is called once with [`Outcome::Started`] when the process is
/// created, then once per completed blocking operation. If a resume
/// issues no blocking operation and does not call
/// [`Api::exit`](crate::cluster::Api::exit), the process is considered
/// finished and exits.
pub trait Program {
    /// Continues execution with the outcome of the last blocking call.
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome);
}

impl std::fmt::Debug for dyn Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<program>")
    }
}
