//! Alien process descriptors.
//!
//! When a Send packet arrives, the receiving kernel "creates an alien
//! process descriptor to represent the remote sending process ... and
//! saves the message in the message buffer field" (§3.2). Aliens never
//! execute — they are, as the paper notes, best thought of as message
//! buffers — but they are the receiver-side half of the reliability
//! machinery:
//!
//! * retransmitted Sends are recognized by (source pid, sequence number)
//!   and answered from the alien instead of being re-delivered;
//! * after the local process replies, the reply packet is cached in the
//!   alien "for a period of time" so a lost reply can be retransmitted;
//! * the pool is **bounded**: if no descriptor is free the new message is
//!   discarded and a reply-pending packet tells the sender to retry.

use v_sim::SimTime;

use crate::message::Message;
use crate::pid::Pid;
use v_wire::SendBody;

/// Delivery state of an alien's message exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlienState {
    /// Message queued; the local receiver has not accepted it yet.
    Queued,
    /// The local receiver has received the message and will reply.
    Delivered,
    /// Replied: the encoded reply packet is cached for retransmission.
    Replied {
        /// Cached encoded reply packet.
        packet: Vec<u8>,
        /// When the reply was generated (for retention expiry).
        at: SimTime,
    },
    /// Forwarded to a server on another host: the exchange now lives at
    /// the forwardee's kernel; this descriptor only answers duplicate
    /// Sends with the cached rebind notification until it expires.
    Forwarded {
        /// When the exchange was handed off (for retention expiry).
        at: SimTime,
    },
}

/// An alien descriptor.
#[derive(Debug, Clone)]
pub struct Alien {
    /// The remote sending process this alien stands in for.
    pub src: Pid,
    /// Sequence number of the exchange in progress.
    pub seq: u32,
    /// The local process the message is addressed to.
    pub dst: Pid,
    /// The 32-byte message.
    pub msg: Message,
    /// Appended segment bytes carried by the Send packet (the
    /// `ReceiveWithSegment` optimization), if any.
    pub appended: Vec<u8>,
    /// Address in the *sender's* space the appended bytes came from.
    pub appended_from: u32,
    /// Exchange state.
    pub state: AlienState,
    /// Encoded Forward rebind notification, cached once the exchange has
    /// been forwarded so a duplicate Send (the client missed the note)
    /// can be answered by re-sending it.
    pub forward_note: Option<Vec<u8>>,
}

/// Disposition of an arriving Send packet, as judged by the alien table.
#[derive(Debug)]
pub enum SendVerdict {
    /// Fresh message: an alien was created (or an older one for the same
    /// source replaced); deliver to the destination process.
    Deliver,
    /// Duplicate of an exchange whose reply is cached: retransmit it.
    RetransmitReply(Vec<u8>),
    /// Duplicate of an exchange still awaiting its reply — or the pool is
    /// exhausted: answer with a reply-pending packet.
    ReplyPending,
    /// Stale retransmission of an already-superseded exchange: drop.
    Drop,
}

/// The bounded alien pool of one kernel.
///
/// The pool is a flat vector scanned linearly: its capacity is a small
/// constant (the paper bounds the descriptor pool), so a scan beats a
/// hash, and insertion-ordered iteration makes exit-time nack emission
/// deterministic.
#[derive(Debug)]
pub struct AlienTable {
    pool: Vec<Alien>,
    capacity: usize,
}

impl AlienTable {
    /// Creates a pool with room for `capacity` aliens.
    pub fn new(capacity: usize) -> AlienTable {
        AlienTable {
            pool: Vec::new(),
            capacity,
        }
    }

    /// Number of live aliens.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if no aliens are live.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Looks up the alien for a remote sender.
    pub fn get(&self, src: Pid) -> Option<&Alien> {
        self.pool.iter().find(|a| a.src == src)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, src: Pid) -> Option<&mut Alien> {
        self.pool.iter_mut().find(|a| a.src == src)
    }

    /// Judges an arriving Send packet body and updates the table.
    ///
    /// `newer(a, b)` on sequence numbers is wrapping-aware: the sender
    /// increments per exchange, and because the sender is synchronous a
    /// numerically newer sequence implies the previous exchange completed,
    /// so its alien may be reused.
    pub fn admit(&mut self, src: Pid, seq: u32, dst: Pid, body: SendBody) -> SendVerdict {
        let slot = self.pool.iter().position(|a| a.src == src);
        if let Some(i) = slot {
            let alien = &self.pool[i];
            if alien.seq == seq {
                return match &alien.state {
                    AlienState::Replied { packet, .. } => {
                        SendVerdict::RetransmitReply(packet.clone())
                    }
                    _ => SendVerdict::ReplyPending,
                };
            }
            if !seq_newer(alien.seq, seq) {
                // Stale duplicate of a superseded exchange.
                return SendVerdict::Drop;
            }
            // Newer exchange from the same source: reuse the descriptor.
        } else if self.pool.len() >= self.capacity {
            // Pool exhausted: discard the message, tell the sender to
            // retry (it will find a descriptor once one frees up).
            return SendVerdict::ReplyPending;
        }
        let alien = Alien {
            src,
            seq,
            dst,
            msg: Message::from_bytes(body.msg),
            appended: body.appended,
            appended_from: body.appended_from,
            state: AlienState::Queued,
            forward_note: None,
        };
        match slot {
            Some(i) => self.pool[i] = alien,
            None => self.pool.push(alien),
        }
        SendVerdict::Deliver
    }

    /// Removes the alien for `src`.
    pub fn remove(&mut self, src: Pid) -> Option<Alien> {
        let i = self.pool.iter().position(|a| a.src == src)?;
        Some(self.pool.remove(i))
    }

    /// Drops replied and forwarded aliens older than `keep` at time
    /// `now`, freeing pool slots (the paper keeps replies "for a period
    /// of time"; a forwarded exchange's rebind note gets the same
    /// retention).
    pub fn sweep(&mut self, now: SimTime, keep: v_sim::SimDuration) -> usize {
        let before = self.pool.len();
        self.pool.retain(|a| match &a.state {
            AlienState::Replied { at, .. } | AlienState::Forwarded { at } => now.since(*at) < keep,
            _ => true,
        });
        before - self.pool.len()
    }

    /// Iterates over live aliens in admission order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Alien> {
        self.pool.iter()
    }

    /// Aliens addressed to a given local process (used at process exit),
    /// in admission order.
    pub fn addressed_to(&self, dst: Pid) -> Vec<Pid> {
        self.pool
            .iter()
            .filter(|a| a.dst == dst)
            .map(|a| a.src)
            .collect()
    }

    /// Aliens addressed to `dst` whose exchange will never be replied
    /// (still queued or delivered). `Replied` aliens are *not* listed:
    /// their cached reply must stay available to answer retransmissions
    /// even after the replier exits. `Forwarded` aliens are likewise
    /// excluded — their exchange completes at the forwardee's kernel.
    pub fn addressed_to_unreplied(&self, dst: Pid) -> Vec<Pid> {
        self.pool
            .iter()
            .filter(|a| {
                a.dst == dst
                    && !matches!(
                        a.state,
                        AlienState::Replied { .. } | AlienState::Forwarded { .. }
                    )
            })
            .map(|a| a.src)
            .collect()
    }
}

/// True if `b` is a (wrapping-aware) newer sequence number than `a`.
fn seq_newer(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) as i32 > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::LogicalHost;

    fn pid(h: u16, l: u16) -> Pid {
        Pid::new(LogicalHost(h), l)
    }

    fn table(cap: usize) -> AlienTable {
        AlienTable::new(cap)
    }

    fn body() -> SendBody {
        SendBody {
            msg: [0u8; 32],
            appended: vec![],
            appended_from: 0,
        }
    }

    #[test]
    fn fresh_message_is_delivered() {
        let mut t = table(4);
        let v = t.admit(pid(2, 1), 1, pid(1, 1), body());
        assert!(matches!(v, SendVerdict::Deliver));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(pid(2, 1)).unwrap().state, AlienState::Queued);
    }

    #[test]
    fn duplicate_before_reply_gets_reply_pending() {
        let mut t = table(4);
        t.admit(pid(2, 1), 1, pid(1, 1), body());
        let v = t.admit(pid(2, 1), 1, pid(1, 1), body());
        assert!(matches!(v, SendVerdict::ReplyPending));
    }

    #[test]
    fn duplicate_after_reply_retransmits_cached_reply() {
        let mut t = table(4);
        t.admit(pid(2, 1), 1, pid(1, 1), body());
        t.get_mut(pid(2, 1)).unwrap().state = AlienState::Replied {
            packet: vec![1, 2, 3],
            at: SimTime::ZERO,
        };
        let v = t.admit(pid(2, 1), 1, pid(1, 1), body());
        match v {
            SendVerdict::RetransmitReply(p) => assert_eq!(p, vec![1, 2, 3]),
            other => panic!("expected retransmit, got {other:?}"),
        }
    }

    #[test]
    fn newer_seq_replaces_old_alien() {
        let mut t = table(4);
        t.admit(pid(2, 1), 1, pid(1, 1), body());
        t.get_mut(pid(2, 1)).unwrap().state = AlienState::Replied {
            packet: vec![],
            at: SimTime::ZERO,
        };
        let v = t.admit(pid(2, 1), 2, pid(1, 1), body());
        assert!(matches!(v, SendVerdict::Deliver));
        assert_eq!(t.get(pid(2, 1)).unwrap().seq, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stale_seq_is_dropped() {
        let mut t = table(4);
        t.admit(pid(2, 1), 5, pid(1, 1), body());
        let v = t.admit(pid(2, 1), 4, pid(1, 1), body());
        assert!(matches!(v, SendVerdict::Drop));
    }

    #[test]
    fn pool_exhaustion_yields_reply_pending() {
        let mut t = table(2);
        t.admit(pid(2, 1), 1, pid(1, 1), body());
        t.admit(pid(2, 2), 1, pid(1, 1), body());
        let v = t.admit(pid(2, 3), 1, pid(1, 1), body());
        assert!(matches!(v, SendVerdict::ReplyPending));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sweep_frees_old_replies_only() {
        let mut t = table(4);
        t.admit(pid(2, 1), 1, pid(1, 1), body());
        t.admit(pid(2, 2), 1, pid(1, 1), body());
        t.get_mut(pid(2, 1)).unwrap().state = AlienState::Replied {
            packet: vec![],
            at: SimTime::ZERO,
        };
        let freed = t.sweep(
            SimTime::from_millis(5000),
            v_sim::SimDuration::from_millis(1000),
        );
        assert_eq!(freed, 1);
        assert!(t.get(pid(2, 1)).is_none());
        assert!(t.get(pid(2, 2)).is_some());
    }

    #[test]
    fn seq_wrapping_comparison() {
        assert!(seq_newer(1, 2));
        assert!(!seq_newer(2, 1));
        assert!(seq_newer(u32::MAX, 0)); // wraps
        assert!(!seq_newer(0, u32::MAX));
    }

    #[test]
    fn addressed_to_finds_aliens() {
        let mut t = table(4);
        t.admit(pid(2, 1), 1, pid(1, 1), body());
        t.admit(pid(2, 2), 1, pid(1, 9), body());
        let v = t.addressed_to(pid(1, 1));
        assert_eq!(v, vec![pid(2, 1)]);
    }
}
