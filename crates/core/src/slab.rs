//! Index-addressed containers for the hot kernel state.
//!
//! Every per-host table the protocol engine touches on the fast path
//! used to be a `std::collections::HashMap`. At boot-storm scale that
//! costs a hash plus a probe sequence per message on tables whose keys
//! are already small dense integers (local uids) or whose live
//! population is tiny (a handful of in-flight transfers, ≤ a dozen
//! aliens). The three containers here replace them:
//!
//! * [`UidSlab`] — a slot-per-uid arena for tables keyed by the 16-bit
//!   local uid (process table, outbound moves, inbound fetches): lookup
//!   is one bounds-checked index.
//! * [`LinearMap`] — an insertion-ordered flat map for tables whose
//!   live population stays small (inbound moves, outbound serves, name
//!   registrations, raw handlers): lookup is a short linear scan with
//!   no hashing, and iteration order is *deterministic* (insertion
//!   order), unlike `HashMap`'s per-instance random order — which is
//!   what lets two runs of the same storm produce byte-identical
//!   reports.
//! * [`SortedSet`] — a sorted vector set for the crash-suspect list.
//!
//! The APIs deliberately mirror the `HashMap` calls they replaced
//! (`get`/`get_mut`/`insert`/`remove`/`retain`/`values`), so the
//! protocol code reads unchanged.

/// A slot-per-key arena keyed by a dense `u16` id.
///
/// Storage is a vector indexed directly by the key, grown on demand;
/// the kernel's uid allocator keeps keys dense (it scans for free uids
/// starting at 1), so the vector stays near the live population size.
#[derive(Debug)]
pub struct UidSlab<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for UidSlab<T> {
    fn default() -> Self {
        UidSlab {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<T> UidSlab<T> {
    /// The value at `k`, if present.
    pub fn get(&self, k: &u16) -> Option<&T> {
        self.slots.get(*k as usize).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value at `k`, if present.
    pub fn get_mut(&mut self, k: &u16) -> Option<&mut T> {
        self.slots.get_mut(*k as usize).and_then(|s| s.as_mut())
    }

    /// True if `k` holds a value.
    pub fn contains_key(&self, k: &u16) -> bool {
        self.get(k).is_some()
    }

    /// Inserts `v` at `k`, returning the previous occupant.
    pub fn insert(&mut self, k: u16, v: T) -> Option<T> {
        let i = k as usize;
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(v);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `k`.
    pub fn remove(&mut self, k: &u16) -> Option<T> {
        let v = self.slots.get_mut(*k as usize).and_then(|s| s.take());
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no value is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every value (slot storage is retained for reuse).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Live values in key order (deterministic).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Live `(key, value)` pairs in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (u16, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u16, v)))
    }

    /// Removes entries failing the predicate, in key order.
    pub fn retain(&mut self, mut f: impl FnMut(&u16, &mut T) -> bool) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !f(&(i as u16), v) {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
    }
}

/// An insertion-ordered flat map for small live populations.
#[derive(Debug)]
pub struct LinearMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for LinearMap<K, V> {
    fn default() -> Self {
        LinearMap {
            entries: Vec::new(),
        }
    }
}

impl<K: PartialEq + Copy, V> LinearMap<K, V> {
    /// The value under `k`, if present.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.entries.iter().find(|(e, _)| e == k).map(|(_, v)| v)
    }

    /// Mutable access to the value under `k`, if present.
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|(e, _)| e == k)
            .map(|(_, v)| v)
    }

    /// True if `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.entries.iter().any(|(e, _)| e == k)
    }

    /// Inserts or replaces the value under `k`, returning the previous
    /// one. A fresh key appends (iteration stays insertion-ordered).
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self.get_mut(&k) {
            Some(slot) => Some(std::mem::replace(slot, v)),
            None => {
                self.entries.push((k, v));
                None
            }
        }
    }

    /// Removes and returns the value under `k`. Later entries keep
    /// their relative order (stable removal — iteration order is part
    /// of the determinism contract).
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let i = self.entries.iter().position(|(e, _)| e == k)?;
        Some(self.entries.remove(i).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Removes entries failing the predicate, preserving order.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }
}

/// A sorted-vector set (ordered iteration, binary-search membership).
#[derive(Debug)]
pub struct SortedSet<T> {
    items: Vec<T>,
}

impl<T> Default for SortedSet<T> {
    fn default() -> Self {
        SortedSet { items: Vec::new() }
    }
}

impl<T: Ord + Copy> SortedSet<T> {
    /// True if `x` is a member.
    pub fn contains(&self, x: &T) -> bool {
        self.items.binary_search(x).is_ok()
    }

    /// Adds `x`; returns true if it was not already a member.
    pub fn insert(&mut self, x: T) -> bool {
        match self.items.binary_search(&x) {
            Ok(_) => false,
            Err(i) => {
                self.items.insert(i, x);
                true
            }
        }
    }

    /// Removes `x`; returns true if it was a member.
    pub fn remove(&mut self, x: &T) -> bool {
        match self.items.binary_search(x) {
            Ok(i) => {
                self.items.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_slab_behaves_like_a_map() {
        let mut s: UidSlab<&'static str> = UidSlab::default();
        assert!(s.is_empty());
        assert_eq!(s.insert(3, "three"), None);
        assert_eq!(s.insert(200, "big"), None);
        assert_eq!(s.insert(3, "replaced"), Some("three"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&3), Some(&"replaced"));
        assert!(s.contains_key(&200));
        assert!(!s.contains_key(&4));
        assert_eq!(s.remove(&3), Some("replaced"));
        assert_eq!(s.remove(&3), None);
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(&200), None);
    }

    #[test]
    fn uid_slab_iterates_in_key_order() {
        let mut s: UidSlab<u32> = UidSlab::default();
        for k in [9u16, 1, 5, 3] {
            s.insert(k, u32::from(k) * 10);
        }
        let keys: Vec<u16> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        let vals: Vec<u32> = s.values().copied().collect();
        assert_eq!(vals, vec![10, 30, 50, 90]);
        s.retain(|&k, _| k > 3);
        let keys: Vec<u16> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![5, 9]);
    }

    #[test]
    fn linear_map_keeps_insertion_order_across_removal() {
        let mut m: LinearMap<(u32, u32), i32> = LinearMap::default();
        m.insert((1, 1), 11);
        m.insert((2, 2), 22);
        m.insert((3, 3), 33);
        assert_eq!(m.insert((2, 2), 220), Some(22));
        assert_eq!(m.remove(&(1, 1)), Some(11));
        let order: Vec<i32> = m.values().copied().collect();
        assert_eq!(order, vec![220, 33], "stable removal keeps order");
        m.retain(|_, v| *v > 100);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&(2, 2)));
        assert_eq!(m.get(&(3, 3)), None);
    }

    #[test]
    fn sorted_set_membership_and_order() {
        let mut s: SortedSet<u32> = SortedSet::default();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5), "duplicate rejected");
        assert!(s.contains(&1));
        let members: Vec<u32> = s.iter().copied().collect();
        assert_eq!(members, vec![1, 5]);
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }
}
