//! Segment grants.
//!
//! A V message may grant its recipient access to one contiguous segment
//! of the sender's address space (§2.1): the last two words of the message
//! give the segment's start address and length, and reserved flag bits at
//! the start of the message say whether a segment is specified and with
//! which access. All kernel data transfer — `MoveTo`, `MoveFrom`, the
//! appended-segment optimizations — is validated against this grant.

use crate::error::KernelError;

/// Access mode granted on a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Recipient may read the segment (`MoveFrom`, appended send data).
    Read,
    /// Recipient may write the segment (`MoveTo`, `ReplyWithSegment`).
    Write,
    /// Recipient may both read and write.
    ReadWrite,
}

impl Access {
    /// True if reads are permitted.
    pub fn allows_read(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// True if writes are permitted.
    pub fn allows_write(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// A segment grant: one contiguous byte range plus an access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGrant {
    /// Start address in the granting process's space.
    pub start: u32,
    /// Length in bytes.
    pub len: u32,
    /// Granted access mode.
    pub access: Access,
}

impl SegmentGrant {
    /// Validates that `[addr, addr+count)` lies inside the grant and that
    /// the requested `access` is permitted.
    pub fn check(&self, addr: u32, count: u32, access: Access) -> Result<(), KernelError> {
        let ok_mode = match access {
            Access::Read => self.access.allows_read(),
            Access::Write => self.access.allows_write(),
            Access::ReadWrite => self.access.allows_read() && self.access.allows_write(),
        };
        if !ok_mode {
            return Err(KernelError::NoSegmentAccess);
        }
        let end = addr.checked_add(count).ok_or(KernelError::BadAddress)?;
        let grant_end = self
            .start
            .checked_add(self.len)
            .ok_or(KernelError::BadAddress)?;
        if addr < self.start || end > grant_end {
            return Err(KernelError::NoSegmentAccess);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_modes() {
        assert!(Access::Read.allows_read());
        assert!(!Access::Read.allows_write());
        assert!(Access::Write.allows_write());
        assert!(!Access::Write.allows_read());
        assert!(Access::ReadWrite.allows_read());
        assert!(Access::ReadWrite.allows_write());
    }

    #[test]
    fn in_range_check_passes() {
        let g = SegmentGrant {
            start: 100,
            len: 50,
            access: Access::Read,
        };
        assert!(g.check(100, 50, Access::Read).is_ok());
        assert!(g.check(120, 10, Access::Read).is_ok());
        assert!(g.check(149, 1, Access::Read).is_ok());
        // Zero-length transfers at the very end are fine.
        assert!(g.check(150, 0, Access::Read).is_ok());
    }

    #[test]
    fn out_of_range_check_fails() {
        let g = SegmentGrant {
            start: 100,
            len: 50,
            access: Access::ReadWrite,
        };
        assert_eq!(
            g.check(99, 2, Access::Read),
            Err(KernelError::NoSegmentAccess)
        );
        assert_eq!(
            g.check(140, 20, Access::Write),
            Err(KernelError::NoSegmentAccess)
        );
    }

    #[test]
    fn wrong_mode_fails() {
        let g = SegmentGrant {
            start: 0,
            len: 10,
            access: Access::Read,
        };
        assert_eq!(
            g.check(0, 10, Access::Write),
            Err(KernelError::NoSegmentAccess)
        );
        let g = SegmentGrant {
            start: 0,
            len: 10,
            access: Access::Write,
        };
        assert_eq!(
            g.check(0, 10, Access::Read),
            Err(KernelError::NoSegmentAccess)
        );
    }

    #[test]
    fn overflow_is_rejected() {
        let g = SegmentGrant {
            start: 0,
            len: u32::MAX,
            access: Access::ReadWrite,
        };
        assert_eq!(
            g.check(u32::MAX, 2, Access::Read),
            Err(KernelError::BadAddress)
        );
    }
}
