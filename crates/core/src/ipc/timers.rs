//! Kernel timers: retransmission, transfer stalls, housekeeping.
//!
//! Timers are never cancelled — they fire and check whether the state
//! they were armed against still exists (staleness detection by sequence
//! number and, for streaming transfers, a progress marker that advances
//! with every chunk).

use v_sim::SimTime;

use crate::ctx::Ctx;
use crate::error::KernelError;
use crate::event::TimerKind;
use crate::pcb::ProcState;
use crate::pid::Pid;
use crate::program::Outcome;
use v_wire::{MoveFromReq, Packet, PacketBody};

impl Ctx<'_> {
    /// A remote `Send`'s reply did not arrive in time: retransmit the
    /// cached packet, or fail the exchange after the retry budget.
    pub(crate) fn retransmit_timer(&mut self, t: SimTime, pid: Pid, seq: u32) {
        let (to, retries, packet) = match self.host.proc(pid).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote {
                to,
                seq: s,
                retries_left,
                packet,
                ..
            }) if *s == seq => (*to, *retries_left, packet.clone()),
            _ => return, // exchange completed; stale timer
        };
        if retries == 0 {
            // The budget ran out with neither reply nor reply-pending:
            // the paper's condition for presuming the host down. Condemn
            // the peer so later Sends probe with the reduced budget
            // instead of paying the full timeout ladder again.
            self.host.stats.send_timeouts += 1;
            self.host.stats.host_down_failures += 1;
            if self.host.suspects.insert(to.host()) {
                self.host.stats.peer_suspicions += 1;
            }
            let pcb = self.host.proc_mut(pid).expect("checked");
            pcb.state = ProcState::Ready;
            self.resume_at(t, pid, Outcome::Send(Err(KernelError::HostDown)));
            return;
        }
        if let Some(ProcState::AwaitingReplyRemote { retries_left, .. }) =
            self.host.proc_mut(pid).map(|p| &mut p.state)
        {
            *retries_left = retries - 1;
        }
        self.host.stats.retransmissions += 1;
        let emitted = self.emit_bytes(t, packet, to.host());
        let timeout = self.proto.retransmit_timeout;
        self.timer_at(
            emitted.cpu_done + timeout,
            TimerKind::Retransmit { pid, seq },
        );
    }

    /// A bulk transfer stopped making progress: rewind to the last
    /// acknowledged point (MoveTo) or re-request from the last in-order
    /// byte (MoveFrom).
    pub(crate) fn transfer_stall_timer(&mut self, t: SimTime, pid: Pid, seq: u32, marker: u32) {
        let timeout = self.proto.transfer_timeout;
        // MoveTo mover side.
        if let Some(om) = self.host.out_moves.get(&pid.local()) {
            if om.seq != seq {
                return; // timer belongs to a finished transfer
            }
            if om.marker != marker {
                // Progress since the timer was set; re-arm.
                let m = om.marker;
                self.timer_at(
                    t + timeout,
                    TimerKind::TransferStall {
                        pid,
                        seq,
                        marker: m,
                    },
                );
                return;
            }
            if om.retries_left == 0 {
                self.fail_move(t, pid, KernelError::Timeout);
                return;
            }
            let om = self.host.out_moves.get_mut(&pid.local()).expect("exists");
            om.retries_left -= 1;
            om.next_off = om.acked_base;
            om.awaiting_ack = false;
            self.host.stats.transfer_resumes += 1;
            let marker = self.send_move_chunk(t, pid);
            self.timer_at(t + timeout, TimerKind::TransferStall { pid, seq, marker });
            return;
        }
        // MoveFrom requester side.
        if let Some(f) = self.host.in_fetches.get(&pid.local()) {
            if f.seq != seq {
                return; // timer belongs to a finished transfer
            }
            if f.marker != marker {
                let m = f.marker;
                self.timer_at(
                    t + timeout,
                    TimerKind::TransferStall {
                        pid,
                        seq,
                        marker: m,
                    },
                );
                return;
            }
            if f.retries_left == 0 {
                self.fail_move(t, pid, KernelError::Timeout);
                return;
            }
            let (src_pid, src_addr, total, expected) = (f.src_pid, f.src_addr, f.total, f.expected);
            let f = self.host.in_fetches.get_mut(&pid.local()).expect("exists");
            f.retries_left -= 1;
            f.marker = f.marker.wrapping_add(1);
            let marker = f.marker;
            self.host.stats.transfer_resumes += 1;
            let pkt = Packet {
                seq,
                src_pid: pid.raw(),
                dst_pid: src_pid.raw(),
                body: PacketBody::MoveFromReq(MoveFromReq {
                    src: src_addr,
                    offset: expected,
                    total,
                }),
            };
            let emitted = self.emit_packet(t, &pkt, src_pid.host());
            self.timer_at(
                emitted.cpu_done + timeout,
                TimerKind::TransferStall { pid, seq, marker },
            );
        }
    }

    /// Periodic sweep: expires idle aliens and completed inbound-transfer
    /// tombstones; re-arms itself while any remain.
    pub(crate) fn housekeeping(&mut self, t: SimTime) {
        let keep = self.proto.alien_keep;
        self.host.aliens.sweep(t, keep);
        self.host
            .in_moves
            .retain(|_, m| !(m.complete && t.since(m.last_seen) >= keep));
        let busy = !self.host.aliens.is_empty()
            || !self.host.in_moves.is_empty()
            || !self.host.out_serves.is_empty();
        if busy {
            let at = t + self.proto.housekeeping;
            self.timer_at(at, TimerKind::Housekeeping);
        } else {
            *self.housekeeping_armed = false;
        }
    }
}
