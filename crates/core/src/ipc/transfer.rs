//! Bulk data transfer: `MoveTo` / `MoveFrom`.
//!
//! Transfers stream `max_data_per_packet`-sized chunks back to back
//! (next chunk launched when the previous frame clears the interface),
//! with a single acknowledgement solicited by the final chunk. Receivers
//! reassemble strictly in order; a gap at the end produces a partial ack
//! asking the source to resume from the last in-order byte — the paper's
//! "retransmission from the last correctly received data packet".

use v_sim::SimTime;

use crate::aliens::AlienState;
use crate::ctx::Ctx;
use crate::error::KernelError;
use crate::event::{Event, StreamKey, TimerKind};
use crate::host::{InFetch, InMove, OutMove, OutServe};
use crate::pcb::ProcState;
use crate::pid::Pid;
use crate::program::Outcome;
use crate::segment::Access;
use v_wire::{
    MoveFromData, MoveFromReq, MoveToData, Packet, PacketBody, TransferAck, TransferStatus,
};

impl Ctx<'_> {
    pub(crate) fn do_move_to(
        &mut self,
        t: SimTime,
        mover: Pid,
        dst: Pid,
        dest: u32,
        src: u32,
        count: u32,
    ) {
        if dst.is_local_to(self.host.logical) {
            // Local fast path: one memory-to-memory copy.
            let valid = matches!(
                self.host.proc(dst).map(|p| &p.state),
                Some(ProcState::AwaitingReplyLocal { to }) if *to == mover
            );
            if !valid {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, mover, KernelError::NotBlocked);
                return;
            }
            let grant = self.host.proc(dst).expect("checked").out_msg.segment();
            let res = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(dest, count, Access::Write).map(|_| ()))
                .and_then(|_| {
                    let mp = self.host.proc(mover).expect("mover exists");
                    mp.space.read(src, count as usize).map(|d| d.to_vec())
                });
            match res {
                Err(e) => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, mover, e);
                }
                Ok(data) => {
                    let cost =
                        self.local_data_cost(self.host.costs.move_local_fixed, count as usize);
                    let end = self.charge(t, cost);
                    let target = self.host.proc_mut(dst).expect("checked");
                    if target.space.write(dest, &data).is_err() {
                        self.fail_move(end, mover, KernelError::BadAddress);
                        return;
                    }
                    self.resume_at(end, mover, Outcome::Move(Ok(count)));
                }
            }
        } else {
            // Remote: the destination must be an alien blocked on us.
            let grant = match self.host.aliens.get(dst) {
                Some(a) if a.dst == mover && a.state == AlienState::Delivered => a.msg.segment(),
                _ => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, mover, KernelError::NotBlocked);
                    return;
                }
            };
            let check = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(dest, count, Access::Write))
                .and_then(|_| {
                    let mp = self.host.proc(mover).expect("mover exists");
                    mp.space.read(src, count as usize).map(|_| ())
                });
            if let Err(e) = check {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, mover, e);
                return;
            }
            let setup = self.host.costs.move_remote_setup;
            let end = self.charge(t, setup);
            let seq = {
                let pcb = self.host.proc_mut(mover).expect("mover exists");
                pcb.state = ProcState::Moving;
                pcb.next_seq()
            };
            self.host.out_moves.insert(
                mover.local(),
                OutMove {
                    seq,
                    dest_pid: dst,
                    dest_addr: dest,
                    src_addr: src,
                    total: count,
                    next_off: 0,
                    acked_base: 0,
                    retries_left: self.proto.transfer_retries,
                    awaiting_ack: false,
                    marker: 0,
                },
            );
            let marker = self.send_move_chunk(end, mover);
            let timeout = self.proto.transfer_timeout;
            self.timer_at(
                end + timeout,
                TimerKind::TransferStall {
                    pid: mover,
                    seq,
                    marker,
                },
            );
        }
    }

    pub(crate) fn fail_move(&mut self, t: SimTime, pid: Pid, err: KernelError) {
        self.host.stats.transfer_failures += 1;
        if let Some(pcb) = self.host.proc_mut(pid) {
            pcb.state = ProcState::Ready;
        }
        self.host.out_moves.remove(&pid.local());
        self.host.in_fetches.remove(&pid.local());
        self.resume_at(t, pid, Outcome::Move(Err(err)));
    }

    /// Transmits the next `MoveTo` chunk; returns the stream's progress
    /// marker.
    pub(crate) fn send_move_chunk(&mut self, t: SimTime, mover: Pid) -> u32 {
        let Some(om) = self.host.out_moves.get(&mover.local()) else {
            return 0;
        };
        let off = om.next_off;
        let n = (self.proto.max_data_per_packet as u32).min(om.total - off);
        let last = off + n == om.total;
        let (seq, dest_pid, dest_addr, src_addr) = (om.seq, om.dest_pid, om.dest_addr, om.src_addr);
        let data = {
            let mp = self.host.proc(mover).expect("mover exists");
            mp.space
                .read(src_addr + off, n as usize)
                .expect("validated at setup")
                .to_vec()
        };
        let pkt = Packet {
            seq,
            src_pid: mover.raw(),
            dst_pid: dest_pid.raw(),
            body: PacketBody::MoveToData(MoveToData {
                dest: dest_addr + off,
                offset: off,
                total: om.total,
                last,
                data,
            }),
        };
        let chunk_cost = self.host.costs.chunk_send;
        let end = self.charge(t, chunk_cost);
        let emitted = self.emit_packet(end, &pkt, dest_pid.host());
        self.host.stats.chunks_sent += 1;
        let om = self.host.out_moves.get_mut(&mover.local()).expect("exists");
        om.next_off = off + n;
        om.marker = om.marker.wrapping_add(1);
        let marker = om.marker;
        if last {
            om.awaiting_ack = true;
        } else {
            self.queue.schedule(
                emitted.tx_end,
                Event::ChunkReady {
                    host: self.host_id,
                    key: StreamKey::Move {
                        mover: mover.local(),
                    },
                },
            );
        }
        marker
    }

    pub(crate) fn do_move_from(
        &mut self,
        t: SimTime,
        requester: Pid,
        src_pid: Pid,
        dest: u32,
        src: u32,
        count: u32,
    ) {
        if src_pid.is_local_to(self.host.logical) {
            // Local fast path.
            let valid = matches!(
                self.host.proc(src_pid).map(|p| &p.state),
                Some(ProcState::AwaitingReplyLocal { to }) if *to == requester
            );
            if !valid {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, requester, KernelError::NotBlocked);
                return;
            }
            let grant = self.host.proc(src_pid).expect("checked").out_msg.segment();
            let res = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(src, count, Access::Read))
                .and_then(|_| {
                    let sp = self.host.proc(src_pid).expect("checked");
                    sp.space.read(src, count as usize).map(|d| d.to_vec())
                });
            match res {
                Err(e) => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, requester, e);
                }
                Ok(data) => {
                    let cost =
                        self.local_data_cost(self.host.costs.move_local_fixed, count as usize);
                    let end = self.charge(t, cost);
                    let rp = self.host.proc_mut(requester).expect("requester exists");
                    if rp.space.write(dest, &data).is_err() {
                        self.fail_move(end, requester, KernelError::BadAddress);
                        return;
                    }
                    self.resume_at(end, requester, Outcome::Move(Ok(count)));
                }
            }
        } else {
            // Remote: ask the granting kernel to stream the segment back.
            let grant = match self.host.aliens.get(src_pid) {
                Some(a) if a.dst == requester && a.state == AlienState::Delivered => {
                    a.msg.segment()
                }
                _ => {
                    let end = self.charge(t, self.host.costs.syscall_min);
                    self.fail_move(end, requester, KernelError::NotBlocked);
                    return;
                }
            };
            let check = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(src, count, Access::Read))
                .and_then(|_| {
                    let rp = self.host.proc(requester).expect("requester exists");
                    // Destination range must be writable in our space.
                    rp.space.read(dest, count as usize).map(|_| ())
                });
            if let Err(e) = check {
                let end = self.charge(t, self.host.costs.syscall_min);
                self.fail_move(end, requester, e);
                return;
            }
            let setup = self.host.costs.move_remote_setup;
            let end = self.charge(t, setup);
            let seq = {
                let pcb = self.host.proc_mut(requester).expect("requester exists");
                pcb.state = ProcState::Moving;
                pcb.next_seq()
            };
            self.host.in_fetches.insert(
                requester.local(),
                InFetch {
                    seq,
                    src_pid,
                    src_addr: src,
                    dest_addr: dest,
                    total: count,
                    expected: 0,
                    retries_left: self.proto.transfer_retries,
                    marker: 0,
                },
            );
            let pkt = Packet {
                seq,
                src_pid: requester.raw(),
                dst_pid: src_pid.raw(),
                body: PacketBody::MoveFromReq(MoveFromReq {
                    src,
                    offset: 0,
                    total: count,
                }),
            };
            let emitted = self.emit_packet(end, &pkt, src_pid.host());
            let timeout = self.proto.transfer_timeout;
            self.timer_at(
                emitted.cpu_done + timeout,
                TimerKind::TransferStall {
                    pid: requester,
                    seq,
                    marker: 0,
                },
            );
        }
    }

    /// Streams the next `MoveFrom` service chunk.
    pub(crate) fn send_serve_chunk(&mut self, t: SimTime, key: (u32, u32)) {
        let Some(serve) = self.host.out_serves.get(&key) else {
            return;
        };
        let off = serve.next_off;
        let n = (self.proto.max_data_per_packet as u32).min(serve.total - off);
        let last = off + n == serve.total;
        let (requester, seq, grantor, src_addr, total) = (
            serve.requester,
            serve.seq,
            serve.grantor,
            serve.src_addr,
            serve.total,
        );
        let data = {
            let gp = self.host.proc(grantor).expect("validated at request");
            gp.space
                .read(src_addr + off, n as usize)
                .expect("validated at request")
                .to_vec()
        };
        let pkt = Packet {
            seq,
            src_pid: grantor.raw(),
            dst_pid: requester.raw(),
            body: PacketBody::MoveFromData(MoveFromData {
                offset: off,
                total,
                last,
                data,
            }),
        };
        let chunk_cost = self.host.costs.chunk_send;
        let end = self.charge(t, chunk_cost);
        let emitted = self.emit_packet(end, &pkt, requester.host());
        self.host.stats.chunks_sent += 1;
        let serve = self.host.out_serves.get_mut(&key).expect("exists");
        serve.next_off = off + n;
        if last {
            self.host.out_serves.remove(&key);
        } else {
            self.queue.schedule(
                emitted.tx_end,
                Event::ChunkReady {
                    host: self.host_id,
                    key: StreamKey::Serve {
                        requester: key.0,
                        seq: key.1,
                    },
                },
            );
        }
    }

    /// A stream's previous frame left the interface: send the next chunk.
    pub(crate) fn handle_chunk_ready(&mut self, t: SimTime, key: StreamKey) {
        match key {
            StreamKey::Move { mover } => {
                let Some(om) = self.host.out_moves.get(&mover) else {
                    return;
                };
                if om.awaiting_ack {
                    return;
                }
                let logical = self.host.logical;
                self.send_move_chunk(t, Pid::new(logical, mover));
            }
            StreamKey::Serve { requester, seq } => {
                self.send_serve_chunk(t, (requester, seq));
            }
        }
    }

    /// Builds a `TransferAck` packet addressed back to a transfer peer.
    fn ack_packet(seq: u32, from: Pid, to: Pid, received: u32, status: TransferStatus) -> Packet {
        Packet {
            seq,
            src_pid: from.raw(),
            dst_pid: to.raw(),
            body: PacketBody::TransferAck(TransferAck { received, status }),
        }
    }

    // ------------------------------------------------------------------
    // Wire handlers
    // ------------------------------------------------------------------

    pub(crate) fn handle_moveto_data(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: MoveToData,
    ) {
        let key = (src.raw(), seq);
        if let Some(m) = self.host.in_moves.get_mut(&key) {
            if m.complete {
                // Duplicate after completion: re-acknowledge.
                m.last_seen = t;
                let pkt = Self::ack_packet(seq, dst, src, body.total, TransferStatus::Complete);
                self.emit_packet(t, &pkt, src.host());
                return;
            }
        } else {
            // First chunk of a new inbound transfer: validate the grant.
            let grant = match self.host.proc(dst).map(|p| &p.state) {
                Some(ProcState::AwaitingReplyRemote { to, grant, .. }) if *to == src => *grant,
                _ => {
                    let pkt = Self::ack_packet(seq, dst, src, 0, TransferStatus::Unknown);
                    self.emit_packet(t, &pkt, src.host());
                    return;
                }
            };
            // The whole transfer's range is implied by (dest - offset,
            // total); validate this chunk now and later chunks as they
            // arrive.
            if grant.is_none() {
                let pkt = Self::ack_packet(seq, dst, src, 0, TransferStatus::AccessViolation);
                self.emit_packet(t, &pkt, src.host());
                return;
            }
            self.host.in_moves.insert(
                key,
                InMove {
                    dest_pid: dst,
                    expected: 0,
                    total: body.total,
                    complete: false,
                    last_seen: t,
                },
            );
            self.arm_housekeeping(t);
        }

        let expected = self.host.in_moves.get(&key).expect("just ensured").expected;
        let chunk_cost = self.host.costs.chunk_recv;
        let end = self.charge(t, chunk_cost);

        if body.offset != expected {
            self.host.stats.chunks_dropped += 1;
            if body.last {
                // Gap detected at the end: ask for resumption from the
                // last in-order byte.
                let pkt = Self::ack_packet(seq, dst, src, expected, TransferStatus::Partial);
                self.emit_packet(end, &pkt, src.host());
            }
            return;
        }

        // In-order chunk: validate against the grant and deposit.
        let grant = match self.host.proc(dst).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote { grant: Some(g), .. }) => *g,
            _ => {
                self.host.in_moves.remove(&key);
                let pkt = Self::ack_packet(seq, dst, src, 0, TransferStatus::Unknown);
                self.emit_packet(end, &pkt, src.host());
                return;
            }
        };
        let n = body.data.len() as u32;
        let ok = grant.check(body.dest, n, Access::Write).and_then(|_| {
            let pcb = self.host.proc_mut(dst).expect("checked");
            pcb.space.write(body.dest, &body.data)
        });
        if ok.is_err() {
            self.host.in_moves.remove(&key);
            let pkt = Self::ack_packet(seq, dst, src, 0, TransferStatus::AccessViolation);
            self.emit_packet(end, &pkt, src.host());
            return;
        }
        self.host.stats.chunks_received += 1;
        let m = self.host.in_moves.get_mut(&key).expect("exists");
        m.expected += n;
        m.last_seen = end;
        let complete = body.last && m.expected == m.total;
        let received = m.expected;
        if body.last {
            if complete {
                m.complete = true;
            }
            let status = if complete {
                TransferStatus::Complete
            } else {
                TransferStatus::Partial
            };
            let ack_cost = self.host.costs.ack_process;
            let end2 = self.charge(end, ack_cost);
            let sent = if complete { body.total } else { received };
            let pkt = Self::ack_packet(seq, dst, src, sent, status);
            self.emit_packet(end2, &pkt, src.host());
            if complete && !self.proto.reply_caching {
                // The transfer-side analog of the reply cache is the
                // completed-transfer tombstone that re-acks duplicate
                // final chunks; the ablation frees it immediately. A
                // duplicate arriving after the mover resumed earns an
                // Unknown ack it ignores; if the Complete ack itself is
                // lost, the still-blocked mover's retransmitted final
                // chunk finds no record, earns a Partial ack from byte 0
                // and re-sends the whole transfer — the honest price of
                // keeping no state.
                self.host.in_moves.remove(&key);
            }
        }
    }

    pub(crate) fn handle_movefrom_req(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: MoveFromReq,
    ) {
        // `dst` is the local granting process; `src` the remote requester.
        let grant = match self.host.proc(dst).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote { to, grant, .. }) if *to == src => *grant,
            _ => {
                let pkt = Self::ack_packet(seq, dst, src, 0, TransferStatus::Unknown);
                self.emit_packet(t, &pkt, src.host());
                return;
            }
        };
        let ok = grant
            .ok_or(KernelError::NoSegmentAccess)
            .and_then(|g| g.check(body.src, body.total, Access::Read))
            .and_then(|_| {
                let pcb = self.host.proc(dst).expect("checked");
                pcb.space.read(body.src, body.total as usize).map(|_| ())
            });
        if ok.is_err() {
            let pkt = Self::ack_packet(seq, dst, src, 0, TransferStatus::AccessViolation);
            self.emit_packet(t, &pkt, src.host());
            return;
        }
        let setup = self.host.costs.move_remote_setup;
        let end = self.charge(t, setup);
        let key = (src.raw(), seq);
        self.host.out_serves.insert(
            key,
            OutServe {
                requester: src,
                seq,
                grantor: dst,
                src_addr: body.src,
                next_off: body.offset,
                total: body.total,
            },
        );
        self.arm_housekeeping(end);
        self.send_serve_chunk(end, key);
    }

    pub(crate) fn handle_movefrom_data(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: MoveFromData,
    ) {
        let uid = dst.local();
        let Some(f) = self.host.in_fetches.get(&uid) else {
            return; // transfer already completed or failed
        };
        if f.src_pid != src || f.seq != seq {
            return;
        }
        let expected = f.expected;
        let chunk_cost = self.host.costs.chunk_recv;
        let end = self.charge(t, chunk_cost);

        if body.offset != expected {
            self.host.stats.chunks_dropped += 1;
            if body.last {
                // Ask the source to resume from the last in-order byte.
                self.host.stats.transfer_resumes += 1;
                let f = self.host.in_fetches.get_mut(&uid).expect("exists");
                f.marker = f.marker.wrapping_add(1);
                let (seq, src_pid, src_addr, total_rem) = (f.seq, f.src_pid, f.src_addr, f.total);
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src_pid.raw(),
                    body: PacketBody::MoveFromReq(MoveFromReq {
                        src: src_addr,
                        offset: expected,
                        total: total_rem,
                    }),
                };
                self.emit_packet(end, &pkt, src_pid.host());
            }
            return;
        }

        let n = body.data.len() as u32;
        let dest = {
            let f = self.host.in_fetches.get(&uid).expect("exists");
            f.dest_addr + body.offset
        };
        {
            let pcb = self.host.proc_mut(dst).expect("requester exists");
            if pcb.space.write(dest, &body.data).is_err() {
                self.fail_move(end, dst, KernelError::BadAddress);
                return;
            }
        }
        self.host.stats.chunks_received += 1;
        let f = self.host.in_fetches.get_mut(&uid).expect("exists");
        f.expected += n;
        f.marker = f.marker.wrapping_add(1);
        let done = body.last && f.expected == f.total;
        let total = f.total;
        if done {
            self.host.in_fetches.remove(&uid);
            let cost = self.host.costs.ack_process
                + self.host.costs.unblock
                + self.host.costs.context_switch;
            let end2 = self.charge(end, cost);
            let pcb = self.host.proc_mut(dst).expect("requester exists");
            pcb.state = ProcState::Ready;
            self.resume_at(end2, dst, Outcome::Move(Ok(total)));
        } else if body.last {
            // Final chunk arrived but earlier ones are missing — covered
            // by the out-of-order branch above, so nothing to do here.
        }
    }

    pub(crate) fn handle_transfer_ack(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: TransferAck,
    ) {
        // MoveTo mover side?
        if let Some(om) = self.host.out_moves.get(&dst.local()) {
            if om.seq != seq || om.dest_pid != src {
                return;
            }
            match body.status {
                TransferStatus::Complete => {
                    let total = om.total;
                    self.host.out_moves.remove(&dst.local());
                    let cost = self.host.costs.ack_process
                        + self.host.costs.unblock
                        + self.host.costs.context_switch;
                    let end = self.charge(t, cost);
                    let pcb = self.host.proc_mut(dst).expect("mover exists");
                    pcb.state = ProcState::Ready;
                    self.resume_at(end, dst, Outcome::Move(Ok(total)));
                }
                TransferStatus::Partial => {
                    let om = self.host.out_moves.get_mut(&dst.local()).expect("exists");
                    om.acked_base = body.received;
                    om.next_off = body.received;
                    om.awaiting_ack = false;
                    om.marker = om.marker.wrapping_add(1);
                    self.host.stats.transfer_resumes += 1;
                    let end = self.charge(t, self.host.costs.ack_process);
                    self.send_move_chunk(end, dst);
                }
                TransferStatus::AccessViolation | TransferStatus::Unknown => {
                    self.fail_move(t, dst, KernelError::TransferRejected);
                }
            }
            return;
        }
        // MoveFrom requester side: acks only carry rejections.
        if let Some(f) = self.host.in_fetches.get(&dst.local()) {
            if f.seq != seq || f.src_pid != src {
                return;
            }
            match body.status {
                TransferStatus::AccessViolation | TransferStatus::Unknown => {
                    self.fail_move(t, dst, KernelError::TransferRejected);
                }
                _ => {}
            }
        }
    }
}
