//! The layered IPC engine.
//!
//! Every kernel protocol concern lives in its own module, all as
//! `impl` blocks on the shared [`crate::ctx::Ctx`] split borrow:
//!
//! * [`dispatch`] — the receive boundary: frame → decoded packet →
//!   typed handler, raw-protocol fan-out, and blocking-syscall dispatch;
//! * [`send_recv`] — the Send/Receive/Reply message exchange, including
//!   the alien admission path and the receiver pump;
//! * [`forward`] — the `Forward` primitive: rebinding a received
//!   exchange to another server process (receptionist/worker teams),
//!   locally and across kernels;
//! * [`transfer`] — `MoveTo`/`MoveFrom` bulk transfer: chunk streaming,
//!   in-order reassembly and transfer acknowledgements;
//! * [`naming`] — `GetPid` broadcast resolution;
//! * [`timers`] — retransmission, transfer-stall and housekeeping
//!   timers.
//!
//! Packet bodies arrive here already typed ([`v_wire::PacketBody`],
//! decoded exactly once in [`dispatch`]): each `handle_*` method takes
//! one body struct, never loose header words.

pub(crate) mod dispatch;
pub(crate) mod forward;
pub(crate) mod naming;
pub(crate) mod send_recv;
pub(crate) mod timers;
pub(crate) mod transfer;
