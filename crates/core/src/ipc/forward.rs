//! The `Forward` primitive: hand a received exchange to another server.
//!
//! `Forward(msg, from, to)` gives a server that has received a message
//! from `from` the ability to pass the exchange — message, segment
//! access and the obligation to reply — to another process `to`, which
//! then replies (or `MoveTo`s / `MoveFrom`s) directly to the client.
//! This is the receptionist/worker pattern V server *teams* are built
//! from: one process receives every request and forwards each to an
//! idle worker, so one request's disk wait overlaps the next request's
//! receive processing.
//!
//! The kernel mechanics are a *rebinding* of the blocked client:
//!
//! * client local, forwardee local — the client's `AwaitingReplyLocal`
//!   state and sender-queue entry move to the forwardee;
//! * client local, forwardee remote — the client's exchange becomes an
//!   ordinary remote Send of the forwarded message (fresh sequence
//!   number, normal retransmission machinery);
//! * client remote, forwardee on this host — the alien is rebound to
//!   the forwardee and requeued, and a [`v_wire::PacketKind::Forward`]
//!   *rebind notification* tells the client's kernel to accept the
//!   forwardee's Reply/MoveTo/MoveFrom on the blocked exchange;
//! * client remote, forwardee on a third host — the alien becomes a
//!   [`AlienState::Forwarded`] tombstone, the rebind notification goes
//!   to the client's kernel and a second Forward packet *hands off* the
//!   message to the forwardee's kernel, which admits it exactly like a
//!   Send.
//!
//! Reliability: the rebind notification is cached in the alien
//! (`forward_note`), so a client that missed it keeps retransmitting
//! its original Send and is answered with the note again; once rebound,
//! the client's cached retransmission packet is rewritten to address
//! the forwardee, so a lost hand-off self-heals too.

use v_sim::SimTime;

use crate::aliens::AlienState;
use crate::ctx::Ctx;
use crate::error::KernelError;
use crate::message::Message;
use crate::pcb::ProcState;
use crate::pid::Pid;
use v_wire::{encode, ForwardBody, Packet, PacketBody, SendBody};

impl Ctx<'_> {
    /// `Forward(msg, from, to)` issued by `forwarder` (non-blocking).
    /// Returns the forwarder's new time cursor.
    pub(crate) fn do_forward(
        &mut self,
        t: SimTime,
        forwarder: Pid,
        msg: Message,
        from: Pid,
        to: Pid,
    ) -> Result<SimTime, KernelError> {
        // A forwardee on this host must exist up front; a remote one is
        // nacked by its own kernel and surfaces as a failed Send at the
        // client.
        if to.is_local_to(self.host.logical) && self.host.proc(to).is_none() {
            return Err(KernelError::NonexistentProcess);
        }
        if from.is_local_to(self.host.logical) {
            self.forward_local_client(t, forwarder, msg, from, to)
        } else {
            self.forward_remote_client(t, forwarder, msg, from, to)
        }
    }

    /// Forwards an exchange whose client is a local process blocked in
    /// `Send` to the forwarder.
    fn forward_local_client(
        &mut self,
        t: SimTime,
        forwarder: Pid,
        msg: Message,
        from: Pid,
        to: Pid,
    ) -> Result<SimTime, KernelError> {
        let awaiting = matches!(
            self.host.proc(from).map(|p| &p.state),
            Some(ProcState::AwaitingReplyLocal { to: t2 }) if *t2 == forwarder
        );
        if !awaiting {
            return Err(KernelError::NotAwaitingReply);
        }
        let end = self.charge(t, self.host.costs.forward);
        self.host.stats.forwards += 1;
        {
            let pcb = self.host.proc_mut(from).expect("checked");
            pcb.out_msg = msg;
        }
        if to.is_local_to(self.host.logical) {
            let pcb = self.host.proc_mut(from).expect("checked");
            pcb.state = ProcState::AwaitingReplyLocal { to };
            let receiver = self.host.proc_mut(to).expect("checked");
            receiver.senders.push_back(from);
            if receiver.state.is_receiving() {
                self.pump(end, to, true);
            }
        } else {
            // The client's exchange turns into an ordinary remote Send
            // of the forwarded message, with the full retransmission
            // machinery behind it.
            self.do_send(end, from, msg, to);
        }
        Ok(end)
    }

    /// Forwards an exchange whose client is an alien (a remote sender).
    fn forward_remote_client(
        &mut self,
        t: SimTime,
        forwarder: Pid,
        msg: Message,
        from: Pid,
        to: Pid,
    ) -> Result<SimTime, KernelError> {
        let seq = match self.host.aliens.get(from) {
            Some(a) if a.dst == forwarder && a.state == AlienState::Delivered => a.seq,
            _ => return Err(KernelError::NotAwaitingReply),
        };
        let end = self.charge(t, self.host.costs.forward);
        self.host.stats.forwards += 1;

        // The rebind notification for the client's kernel: its blocked
        // Send must start accepting the forwardee's Reply/MoveTo/
        // MoveFrom (and, if that kernel also hosts the forwardee, the
        // note doubles as the hand-off, so it carries the message).
        let (appended, appended_from) = {
            let a = self.host.aliens.get(from).expect("checked");
            (a.appended.clone(), a.appended_from)
        };
        let body = ForwardBody {
            client: from.raw(),
            new_server: to.raw(),
            msg: *msg.as_bytes(),
            appended,
            appended_from,
        };
        let note = encode(&Packet {
            seq,
            src_pid: forwarder.raw(),
            dst_pid: from.raw(),
            body: PacketBody::Forward(body.clone()),
        });

        if to.is_local_to(self.host.logical) {
            // Same-host forwardee (the server-team case): rebind the
            // alien and requeue it for the forwardee.
            {
                let a = self.host.aliens.get_mut(from).expect("checked");
                a.dst = to;
                a.msg = msg;
                a.state = AlienState::Queued;
                a.forward_note = Some(note.clone());
            }
            let receiver = self.host.proc_mut(to).expect("checked");
            receiver.senders.push_back(from);
            let emitted = self.emit_bytes(end, note, from.host());
            let receiving = self
                .host
                .proc(to)
                .map(|p| p.state.is_receiving())
                .unwrap_or(false);
            if receiving {
                self.pump(emitted.cpu_done, to, true);
            }
            Ok(emitted.cpu_done)
        } else {
            // Forwardee on another kernel: tombstone the alien, notify
            // the client's kernel, and — unless the forwardee shares the
            // client's kernel, where the note itself is the hand-off —
            // hand the message off to the forwardee's kernel.
            {
                let a = self.host.aliens.get_mut(from).expect("checked");
                a.dst = to;
                a.msg = msg;
                a.state = AlienState::Forwarded { at: end };
                a.forward_note = Some(note.clone());
            }
            let emitted = self.emit_bytes(end, note, from.host());
            let mut done = emitted.cpu_done;
            if to.host() != from.host() {
                let handoff = Packet {
                    seq,
                    src_pid: forwarder.raw(),
                    dst_pid: to.raw(),
                    body: PacketBody::Forward(body),
                };
                done = self.emit_packet(done, &handoff, to.host()).cpu_done;
            }
            self.arm_housekeeping(done);
            Ok(done)
        }
    }

    // ------------------------------------------------------------------
    // Wire handler
    // ------------------------------------------------------------------

    /// A Forward packet arrived: either a rebind notification for a
    /// local blocked sender, or a hand-off for a local forwardee.
    pub(crate) fn handle_forward_pkt(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: ForwardBody,
    ) {
        let (Some(client), Some(new_server)) =
            (Pid::from_raw(body.client), Pid::from_raw(body.new_server))
        else {
            return;
        };
        if dst == client && client.is_local_to(self.host.logical) {
            self.rebind_forwarded_sender(t, src, client, new_server, seq, body);
        } else if dst == new_server && new_server.is_local_to(self.host.logical) {
            // Hand-off role: admit the client's exchange for the
            // forwardee exactly as an arriving Send would be (duplicate
            // filtering, alien pool bounds and nacks included).
            let send = SendBody {
                msg: body.msg,
                appended: body.appended,
                appended_from: body.appended_from,
            };
            self.handle_send_pkt(t, client, new_server, seq, send);
        }
    }

    /// Rebinds a local process's blocked remote Send to the forwardee.
    fn rebind_forwarded_sender(
        &mut self,
        t: SimTime,
        src: Pid,
        client: Pid,
        new_server: Pid,
        seq: u32,
        body: ForwardBody,
    ) {
        let bound_to = match self.host.proc(client).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote { to, seq: s, .. }) if *s == seq => *to,
            _ => return, // exchange completed, or already converted local
        };
        if bound_to == new_server {
            return; // duplicate notification
        }
        if bound_to != src {
            return; // stale: the exchange belongs to someone else now
        }
        let end = self.charge(t, self.host.costs.forward);
        let msg = Message::from_bytes(body.msg);
        if new_server.is_local_to(self.host.logical) {
            // The exchange came home: the forwardee shares this kernel,
            // so the blocked Send becomes a plain local exchange.
            if self.host.proc(new_server).is_none() {
                // The forwardee is already gone — nothing was rebound.
                self.fail_send(end, client, KernelError::NonexistentProcess);
                return;
            }
            self.host.stats.forward_rebinds += 1;
            {
                let pcb = self.host.proc_mut(client).expect("checked");
                pcb.out_msg = msg;
                pcb.state = ProcState::AwaitingReplyLocal { to: new_server };
            }
            let receiver = self.host.proc_mut(new_server).expect("checked");
            receiver.senders.push_back(client);
            if receiver.state.is_receiving() {
                self.pump(end, new_server, true);
            }
        } else {
            // Re-point the exchange — and the cached retransmission
            // packet — at the forwardee, carrying the forwarded message,
            // so a lost hand-off is repaired by the next retransmission.
            self.host.stats.forward_rebinds += 1;
            let rebuilt = encode(&Packet {
                seq,
                src_pid: client.raw(),
                dst_pid: new_server.raw(),
                body: PacketBody::Send(SendBody {
                    msg: body.msg,
                    appended: body.appended,
                    appended_from: body.appended_from,
                }),
            });
            let max_retries = self.proto.max_retries;
            if let Some(ProcState::AwaitingReplyRemote {
                to,
                packet,
                retries_left,
                ..
            }) = self.host.proc_mut(client).map(|p| &mut p.state)
            {
                *to = new_server;
                *packet = rebuilt;
                // The forwardee is a fresh leg of the exchange: give it
                // the full retry budget.
                *retries_left = max_retries;
            }
        }
    }
}
