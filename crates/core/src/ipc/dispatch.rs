//! The dispatch boundary: syscalls in, frames in.
//!
//! Inbound frames are decoded exactly once — raw payload bytes become a
//! typed [`v_wire::PacketBody`] here, and every protocol handler beyond
//! this point consumes a body struct. Undecodable frames are counted
//! (corruption vs. unknown kind) and dropped; the protocols above never
//! see them. Frames with a foreign ethertype fan out to the registered
//! raw-protocol handlers.

use v_net::{EtherType, Frame};
use v_sim::{SimDuration, SimTime};

use crate::cluster::Pending;
use crate::ctx::Ctx;
use crate::event::TimerKind;
use crate::pcb::ProcState;
use crate::pid::Pid;
use crate::program::Outcome;
use v_wire::{decode, Packet, PacketBody, WireError};

impl Ctx<'_> {
    // ------------------------------------------------------------------
    // Blocking syscall execution
    // ------------------------------------------------------------------

    /// Executes the blocking call a program issued during its resume.
    pub(crate) fn execute_blocking(&mut self, t: SimTime, pid: Pid, pending: Pending) {
        match pending {
            Pending::Send { msg, to } => self.do_send(t, pid, msg, to),
            Pending::Receive => self.do_receive(t, pid, None),
            Pending::ReceiveSeg { buf, size } => self.do_receive(t, pid, Some((buf, size))),
            Pending::MoveTo {
                dst,
                dest,
                src,
                count,
            } => self.do_move_to(t, pid, dst, dest, src, count),
            Pending::MoveFrom {
                src_pid,
                dest,
                src,
                count,
            } => self.do_move_from(t, pid, src_pid, dest, src, count),
            Pending::GetPid { logical_id, scope } => self.do_get_pid(t, pid, logical_id, scope),
            Pending::Delay(d) => {
                let pcb = self.host.proc_mut(pid).expect("caller verified");
                pcb.state = ProcState::Waiting;
                self.resume_at(t + d, pid, Outcome::Delay);
            }
            Pending::Compute(d) => {
                let pcb = self.host.proc_mut(pid).expect("caller verified");
                pcb.state = ProcState::Waiting;
                let end = self.charge(t, d);
                self.resume_at(end, pid, Outcome::Compute);
            }
        }
    }

    // ------------------------------------------------------------------
    // Packet reception
    // ------------------------------------------------------------------

    /// A frame finished arriving at this host's interface.
    pub(crate) fn handle_frame(&mut self, t: SimTime, frame: Frame) {
        self.host.nic.note_rx(frame.payload.len());
        if frame.ethertype != EtherType::INTERKERNEL {
            self.dispatch_raw(t, frame);
            return;
        }
        let encap = self.proto.encapsulation;
        let cost = self.host.costs.rx_dispatch
            + self.host.costs.frame_rx_cost(frame.payload.len())
            + encap.extra_rx_cost();
        let end = self.charge(t, cost);
        let Some(body) = frame.payload_after(encap.extra_bytes()) else {
            self.host.stats.checksum_drops += 1;
            self.host.nic.note_rx_bad();
            return;
        };
        let pkt = match decode(body) {
            Ok(p) => p,
            Err(WireError::UnknownKind(_)) => {
                // The checksum held, so the frame arrived intact — the
                // sender just speaks a newer (or broken) protocol rev.
                self.host.stats.unknown_kind_drops += 1;
                self.host.nic.note_rx_bad();
                return;
            }
            Err(_) => {
                self.host.stats.checksum_drops += 1;
                self.host.nic.note_rx_bad();
                return;
            }
        };
        // Learn logical-host → station correspondences from traffic
        // (10 Mb addressing mode), and treat any frame from a condemned
        // peer as evidence of life.
        if let Some(src) = Pid::from_raw(pkt.src_pid) {
            self.host.hostmap.learn(src.host(), frame.src);
            if self.host.suspects.remove(&src.host()) {
                self.host.stats.peer_reprieves += 1;
            }
        }
        self.dispatch_packet(end, pkt);
    }

    /// Routes a decoded packet to its protocol handler. Bodies are
    /// already typed; this only resolves the pid words and fans out.
    fn dispatch_packet(&mut self, t: SimTime, pkt: Packet) {
        let seq = pkt.seq;
        let src = Pid::from_raw(pkt.src_pid);
        let dst = Pid::from_raw(pkt.dst_pid);
        match pkt.body {
            PacketBody::Send(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_send_pkt(t, src, dst, seq, body);
            }
            PacketBody::Reply(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_reply_pkt(t, src, dst, seq, body);
            }
            PacketBody::ReplyPending => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_reply_pending(t, src, dst, seq);
            }
            PacketBody::Nack => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_nack(t, src, dst, seq);
            }
            PacketBody::MoveToData(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_moveto_data(t, src, dst, seq, body);
            }
            PacketBody::MoveFromReq(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_movefrom_req(t, src, dst, seq, body);
            }
            PacketBody::MoveFromData(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_movefrom_data(t, src, dst, seq, body);
            }
            PacketBody::TransferAck(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_transfer_ack(t, src, dst, seq, body);
            }
            PacketBody::GetPidReq(body) => {
                let Some(src) = src else { return };
                self.handle_getpid_req(t, src, body);
            }
            PacketBody::GetPidReply(body) => {
                let Some(dst) = dst else { return };
                self.handle_getpid_reply(t, dst, body);
            }
            PacketBody::Forward(body) => {
                let (Some(src), Some(dst)) = (src, dst) else {
                    return;
                };
                self.handle_forward_pkt(t, src, dst, seq, body);
            }
        }
    }

    // ------------------------------------------------------------------
    // Raw protocol handlers
    // ------------------------------------------------------------------

    fn dispatch_raw(&mut self, t: SimTime, frame: Frame) {
        let cost = self.host.costs.frame_rx_cost(frame.payload.len());
        let end = self.charge(t, cost);
        let ety = frame.ethertype.0;
        let Some(mut handler) = self.host.raw.remove(&ety) else {
            return; // no handler registered; frame dropped
        };
        {
            let mut raw = RawCtxImpl::new(self, end, EtherType(ety));
            handler.on_frame(&mut raw, &frame);
        }
        self.host.raw.insert(ety, handler);
    }
}

/// [`crate::raw::RawCtx`] implementation over a kernel context.
pub(crate) struct RawCtxImpl<'c, 'a> {
    ctx: &'c mut Ctx<'a>,
    now: SimTime,
    ethertype: EtherType,
}

impl<'c, 'a> RawCtxImpl<'c, 'a> {
    pub(crate) fn new(ctx: &'c mut Ctx<'a>, now: SimTime, ethertype: EtherType) -> Self {
        RawCtxImpl {
            ctx,
            now,
            ethertype,
        }
    }
}

impl crate::raw::RawCtx for RawCtxImpl<'_, '_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn mac(&self) -> v_net::MacAddr {
        self.ctx.host.nic.mac()
    }

    fn send_frame(&mut self, dst: v_net::MacAddr, payload: Vec<u8>) {
        self.now = self.ctx.emit_raw(self.now, dst, self.ethertype, payload);
    }

    fn charge(&mut self, cost: SimDuration) {
        self.now = self.ctx.host.cpu.charge(self.now, cost).end;
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let kind = TimerKind::Raw {
            ethertype: self.ethertype.0,
            token,
        };
        let at = self.now + delay;
        self.ctx.timer_at(at, kind);
    }
}
