//! The synchronous message exchange: `Send` / `Receive` / `Reply`.
//!
//! The sender side blocks on `Send` until the reply arrives (locally via
//! a direct hand-off, remotely via the retransmitted Send packet whose
//! reply doubles as the acknowledgement). The receiver side queues
//! senders — local processes and remote *aliens* alike — and the pump
//! delivers the head of the queue whenever the receiver is receptive.

use v_sim::{SimDuration, SimTime};

use crate::aliens::{AlienState, SendVerdict};
use crate::ctx::Ctx;
use crate::error::KernelError;
use crate::event::TimerKind;
use crate::message::Message;
use crate::pcb::ProcState;
use crate::pid::Pid;
use crate::program::Outcome;
use crate::segment::Access;
use v_wire::{encode, Packet, PacketBody, ReplyBody, SendBody};

impl Ctx<'_> {
    pub(crate) fn do_send(&mut self, t: SimTime, pid: Pid, msg: Message, to: Pid) {
        {
            let pcb = self.host.proc_mut(pid).expect("sender exists");
            pcb.out_msg = msg;
        }
        if to.is_local_to(self.host.logical) {
            self.host.stats.sends_local += 1;
            let send_cost = self.host.costs.send_local;
            let end = self.charge(t, send_cost);
            if self.host.proc(to).is_none() {
                self.resume_at(
                    end,
                    pid,
                    Outcome::Send(Err(KernelError::NonexistentProcess)),
                );
                return;
            }
            {
                let pcb = self.host.proc_mut(pid).expect("sender exists");
                pcb.state = ProcState::AwaitingReplyLocal { to };
            }
            let receiver = self.host.proc_mut(to).expect("checked above");
            receiver.senders.push_back(pid);
            if receiver.state.is_receiving() {
                self.pump(end, to, true);
            }
        } else {
            self.host.stats.sends_remote += 1;
            let cost = self.host.costs.send_remote + self.host.costs.timer_admin;
            let end = self.charge(t, cost);

            // Gather the appended segment prefix, if read access was
            // granted (§3.4's optimization: the first part of the segment
            // rides in the Send packet). The `appended_segments` ablation
            // reproduces the unmodified kernel, which sends the grant
            // unaccompanied.
            let grant = msg.segment();
            let (appended, appended_from) = match grant {
                Some(g) if self.proto.appended_segments && g.access.allows_read() && g.len > 0 => {
                    let n = (g.len as usize)
                        .min(self.proto.max_appended_segment)
                        .min(self.proto.max_data_per_packet);
                    let pcb = self.host.proc(pid).expect("sender exists");
                    match pcb.space.read(g.start, n) {
                        Ok(bytes) => (bytes.to_vec(), g.start),
                        Err(e) => {
                            self.fail_send(end, pid, e);
                            return;
                        }
                    }
                }
                _ => (Vec::new(), 0),
            };

            let seq = {
                let pcb = self.host.proc_mut(pid).expect("sender exists");
                pcb.next_seq()
            };
            let pkt = Packet {
                seq,
                src_pid: pid.raw(),
                dst_pid: to.raw(),
                body: PacketBody::Send(SendBody {
                    msg: *msg.as_bytes(),
                    appended,
                    appended_from,
                }),
            };
            let bytes = encode(&pkt);
            {
                // A condemned peer gets a short probe, not the full
                // ladder: bounded failover latency, but a restarted host
                // still gets a packet to answer (which clears suspicion).
                let max_retries = if self.host.suspects.contains(&to.host()) {
                    self.host.stats.sends_to_suspect += 1;
                    self.proto.suspect_retries
                } else {
                    self.proto.max_retries
                };
                let pcb = self.host.proc_mut(pid).expect("sender exists");
                pcb.state = ProcState::AwaitingReplyRemote {
                    to,
                    seq,
                    retries_left: max_retries,
                    packet: bytes.clone(),
                    grant,
                };
            }
            let emitted = self.emit_bytes(end, bytes, to.host());
            // Blocking the sender and dispatching other work happens off
            // the critical path, after the packet is on the wire.
            let block = self.host.costs.block_admin;
            self.charge(emitted.cpu_done, block);
            let timeout = self.proto.retransmit_timeout;
            self.timer_at(
                emitted.cpu_done + timeout,
                TimerKind::Retransmit { pid, seq },
            );
        }
    }

    pub(crate) fn fail_send(&mut self, t: SimTime, pid: Pid, err: KernelError) {
        if let Some(pcb) = self.host.proc_mut(pid) {
            pcb.state = ProcState::Ready;
        }
        self.resume_at(t, pid, Outcome::Send(Err(err)));
    }

    pub(crate) fn do_receive(&mut self, t: SimTime, pid: Pid, seg: Option<(u32, u32)>) {
        let recv_cost = self.host.costs.receive_local;
        let end = self.charge(t, recv_cost);
        {
            let pcb = self.host.proc_mut(pid).expect("receiver exists");
            pcb.state = match seg {
                None => ProcState::Receiving,
                Some((buf, size)) => ProcState::ReceivingSeg { buf, size },
            };
        }
        let has_queued = self
            .host
            .proc(pid)
            .map(|p| !p.senders.is_empty())
            .unwrap_or(false);
        if has_queued {
            self.pump(end, pid, false);
        }
    }

    /// Delivers the head of `receiver`'s sender queue to it.
    ///
    /// `dispatch` is true when this delivery *wakes* the receiver (send
    /// side), charging a context switch; false when the receiver found
    /// the message already queued during `Receive`.
    pub(crate) fn pump(&mut self, t: SimTime, receiver: Pid, dispatch: bool) {
        loop {
            let Some(pcb) = self.host.proc_mut(receiver) else {
                return;
            };
            if !pcb.state.is_receiving() {
                return;
            }
            let Some(sender) = pcb.senders.pop_front() else {
                return;
            };

            // Gather message + segment source, skipping stale queue
            // entries (dead senders, superseded aliens).
            enum SegData {
                None,
                Local { start: u32, len: u32 },
                Appended(Vec<u8>),
            }
            let (msg, seg) = if sender.is_local_to(self.host.logical) {
                match self.host.proc(sender) {
                    Some(sp) if matches!(sp.state, ProcState::AwaitingReplyLocal { to } if to == receiver) =>
                    {
                        let msg = sp.out_msg;
                        let seg = match msg.segment() {
                            Some(g) if g.access.allows_read() && g.len > 0 => SegData::Local {
                                start: g.start,
                                len: g.len,
                            },
                            _ => SegData::None,
                        };
                        (msg, seg)
                    }
                    _ => continue, // stale entry
                }
            } else {
                match self.host.aliens.get(sender) {
                    Some(a) if a.dst == receiver && a.state == AlienState::Queued => {
                        let seg = if a.appended.is_empty() {
                            SegData::None
                        } else {
                            SegData::Appended(a.appended.clone())
                        };
                        (a.msg, seg)
                    }
                    _ => continue, // stale entry
                }
            };

            // Deliver into the receiver, honouring ReceiveWithSegment.
            let (buf, size, wants_seg) = match &self.host.proc(receiver).expect("checked").state {
                ProcState::ReceivingSeg { buf, size } => (*buf, *size, true),
                _ => (0, 0, false),
            };

            let mut cost = SimDuration::ZERO;
            if dispatch {
                cost += self.host.costs.context_switch;
            }
            let mut seg_len: u32 = 0;
            let mut seg_bytes: Option<(u32, Vec<u8>)> = None;
            if wants_seg {
                match seg {
                    SegData::None => {}
                    SegData::Local { start, len } => {
                        let n = size.min(len);
                        if n > 0 {
                            let data = {
                                let sp = self.host.proc(sender).expect("checked");
                                sp.space.read(start, n as usize).ok().map(|d| d.to_vec())
                            };
                            if let Some(data) = data {
                                cost +=
                                    self.local_data_cost(self.host.costs.segment_fixed, n as usize);
                                seg_bytes = Some((buf, data));
                                seg_len = n;
                            }
                        }
                    }
                    SegData::Appended(data) => {
                        let n = (size as usize).min(data.len());
                        if n > 0 {
                            // Bytes came off the wire straight into their
                            // final location: only fixed handling cost.
                            cost += self.host.costs.segment_fixed;
                            seg_bytes = Some((buf, data[..n].to_vec()));
                            seg_len = n as u32;
                        }
                    }
                }
            }
            let end = self.charge(t, cost);

            if let Some((addr, data)) = seg_bytes {
                let pcb = self.host.proc_mut(receiver).expect("checked");
                if pcb.space.write(addr, &data).is_err() {
                    seg_len = 0; // receiver's own buffer was bogus
                }
            }

            // Mark the sender's exchange delivered.
            if sender.is_local_to(self.host.logical) {
                // Local sender stays AwaitingReplyLocal.
            } else if let Some(a) = self.host.aliens.get_mut(sender) {
                a.state = AlienState::Delivered;
            }

            let pcb = self.host.proc_mut(receiver).expect("checked");
            pcb.state = ProcState::Ready;
            let outcome = if wants_seg {
                Outcome::ReceiveSeg {
                    from: sender,
                    msg,
                    seg_len,
                }
            } else {
                Outcome::Receive { from: sender, msg }
            };
            self.resume_at(end, receiver, outcome);
            return;
        }
    }

    /// `Reply` / `ReplyWithSegment` (non-blocking). Returns the caller's
    /// new time cursor.
    pub(crate) fn do_reply(
        &mut self,
        t: SimTime,
        replier: Pid,
        msg: Message,
        to: Pid,
        seg: Option<(u32, u32, u32)>, // (dest_ptr, src_addr, len)
    ) -> Result<SimTime, KernelError> {
        if to.is_local_to(self.host.logical) {
            // Local reply.
            let awaiting = matches!(
                self.host.proc(to).map(|p| &p.state),
                Some(ProcState::AwaitingReplyLocal { to: t2 }) if *t2 == replier
            );
            if !awaiting {
                return Err(KernelError::NotAwaitingReply);
            }
            let mut cost = self.host.costs.reply_local + self.host.costs.context_switch;
            let mut write: Option<(u32, Vec<u8>)> = None;
            if let Some((dest_ptr, src_addr, len)) = seg {
                let target = self.host.proc(to).expect("checked");
                let grant = target
                    .out_msg
                    .segment()
                    .ok_or(KernelError::NoSegmentAccess)?;
                grant.check(dest_ptr, len, Access::Write)?;
                let rp = self.host.proc(replier).expect("replier exists");
                let data = rp.space.read(src_addr, len as usize)?.to_vec();
                cost += self.local_data_cost(self.host.costs.segment_fixed, len as usize);
                write = Some((dest_ptr, data));
            }
            let end = self.charge(t, cost);
            if let Some((addr, data)) = write {
                let target = self.host.proc_mut(to).expect("checked");
                target.space.write(addr, &data)?;
            }
            let target = self.host.proc_mut(to).expect("checked");
            target.state = ProcState::Ready;
            self.resume_at(end, to, Outcome::Send(Ok(msg)));
            Ok(end)
        } else {
            // Remote reply, through the alien.
            let (seq, grant) = match self.host.aliens.get(to) {
                Some(a) if a.dst == replier && a.state == AlienState::Delivered => {
                    (a.seq, a.msg.segment())
                }
                _ => return Err(KernelError::NotAwaitingReply),
            };
            let mut cost = self.host.costs.reply_remote;
            let (seg_dest, seg_data) = if let Some((dest_ptr, src_addr, len)) = seg {
                if len as usize > self.proto.max_data_per_packet {
                    return Err(KernelError::NoSegmentAccess);
                }
                let g = grant.ok_or(KernelError::NoSegmentAccess)?;
                g.check(dest_ptr, len, Access::Write)?;
                let rp = self.host.proc(replier).expect("replier exists");
                let data = rp.space.read(src_addr, len as usize)?.to_vec();
                cost += self.host.costs.segment_fixed;
                (dest_ptr, data)
            } else {
                (0, Vec::new())
            };
            let end = self.charge(t, cost);
            let pkt = Packet {
                seq,
                src_pid: replier.raw(),
                dst_pid: to.raw(),
                body: PacketBody::Reply(ReplyBody {
                    msg: *msg.as_bytes(),
                    seg_dest,
                    seg: seg_data,
                }),
            };
            let bytes = encode(&pkt);
            let emitted = self.emit_bytes(end, bytes.clone(), to.host());
            if self.proto.reply_caching {
                if let Some(a) = self.host.aliens.get_mut(to) {
                    a.state = AlienState::Replied {
                        packet: bytes,
                        at: emitted.cpu_done,
                    };
                }
                self.arm_housekeeping(emitted.cpu_done);
            } else {
                // "Alien keep = 0" ablation: the descriptor is freed the
                // moment the reply leaves; a retransmitted Send of this
                // exchange will be re-admitted and re-delivered instead
                // of being answered from the cache.
                self.host.aliens.remove(to);
            }
            let post = self.host.costs.alien_post;
            self.charge(emitted.cpu_done, post);
            Ok(emitted.cpu_done)
        }
    }

    // ------------------------------------------------------------------
    // Wire handlers
    // ------------------------------------------------------------------

    pub(crate) fn handle_send_pkt(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: SendBody,
    ) {
        if !dst.is_local_to(self.host.logical) {
            return; // stray broadcast-fallback delivery; not ours
        }
        // Duplicate filtering comes *before* the existence check: a
        // retransmission of an exchange that already completed must be
        // answered from the alien's cached reply even if the replier has
        // since exited (the sender's reply was lost, not the exchange).
        if let Some(alien) = self.host.aliens.get(src) {
            if alien.seq == seq {
                // A forwarded exchange's duplicate means the client may
                // have missed the rebind notification: repair it first.
                let note = alien.forward_note.clone();
                let forwarded = matches!(alien.state, AlienState::Forwarded { .. });
                if let Some(note) = note {
                    self.host.stats.forward_notes_resent += 1;
                    self.emit_bytes(t, note, src.host());
                }
                if forwarded {
                    // The exchange lives at the forwardee's kernel now;
                    // the re-sent note is the whole answer.
                    self.host.stats.duplicates_filtered += 1;
                    return;
                }
                match &self.host.aliens.get(src).expect("still present").state {
                    AlienState::Replied { packet, .. } => {
                        let packet = packet.clone();
                        self.host.stats.duplicates_filtered += 1;
                        self.host.stats.replies_retransmitted += 1;
                        self.emit_bytes(t, packet, src.host());
                    }
                    _ => {
                        self.host.stats.duplicates_filtered += 1;
                        self.host.stats.reply_pending_sent += 1;
                        let pkt = Packet {
                            seq,
                            src_pid: dst.raw(),
                            dst_pid: src.raw(),
                            body: PacketBody::ReplyPending,
                        };
                        self.emit_packet(t, &pkt, src.host());
                    }
                }
                return;
            }
        }
        if self.host.proc(dst).is_none() {
            self.send_nack(t, src, seq, dst);
            return;
        }
        // Is there an existing queued entry for this source? (Avoid
        // double-queueing when a superseding exchange replaces an alien
        // still sitting in the receiver's queue.)
        let already_queued = matches!(
            self.host.aliens.get(src),
            Some(a) if a.state == AlienState::Queued
        );
        match self.host.aliens.admit(src, seq, dst, body) {
            SendVerdict::Deliver => {
                self.host.stats.aliens_allocated += 1;
                let alloc = self.host.costs.alien_alloc + self.host.costs.unblock;
                let end = self.charge(t, alloc);
                self.arm_housekeeping(end);
                if !already_queued {
                    let pcb = self.host.proc_mut(dst).expect("checked");
                    pcb.senders.push_back(src);
                }
                let receiving = self
                    .host
                    .proc(dst)
                    .map(|p| p.state.is_receiving())
                    .unwrap_or(false);
                if receiving {
                    self.pump(end, dst, true);
                }
            }
            SendVerdict::RetransmitReply(packet) => {
                self.host.stats.duplicates_filtered += 1;
                self.host.stats.replies_retransmitted += 1;
                self.emit_bytes(t, packet, src.host());
            }
            SendVerdict::ReplyPending => {
                // Either a duplicate whose reply is still pending, or the
                // alien pool is exhausted.
                if matches!(self.host.aliens.get(src), Some(a) if a.seq == seq) {
                    self.host.stats.duplicates_filtered += 1;
                } else {
                    self.host.stats.aliens_exhausted += 1;
                }
                self.host.stats.reply_pending_sent += 1;
                let pkt = Packet {
                    seq,
                    src_pid: dst.raw(),
                    dst_pid: src.raw(),
                    body: PacketBody::ReplyPending,
                };
                self.emit_packet(t, &pkt, src.host());
            }
            SendVerdict::Drop => {
                self.host.stats.duplicates_filtered += 1;
            }
        }
    }

    /// Completes the sender's exchange from a wire `Reply` body — the
    /// `ReplyFields`-style struct the ROADMAP asked for, now simply the
    /// wire body itself.
    pub(crate) fn handle_reply_pkt(
        &mut self,
        t: SimTime,
        src: Pid,
        dst: Pid,
        seq: u32,
        body: ReplyBody,
    ) {
        let grant = match self.host.proc(dst).map(|p| &p.state) {
            Some(ProcState::AwaitingReplyRemote {
                to, seq: s, grant, ..
            }) if *to == src && *s == seq => *grant,
            _ => return, // duplicate or stale reply
        };
        let msg = Message::from_bytes(body.msg);
        let mut cost =
            self.host.costs.reply_match + self.host.costs.unblock + self.host.costs.context_switch;
        let mut seg_err = None;
        if !body.seg.is_empty() {
            cost += self.host.costs.segment_fixed;
            let ok = grant
                .ok_or(KernelError::NoSegmentAccess)
                .and_then(|g| g.check(body.seg_dest, body.seg.len() as u32, Access::Write));
            match ok {
                Ok(()) => {
                    let pcb = self.host.proc_mut(dst).expect("checked");
                    if pcb.space.write(body.seg_dest, &body.seg).is_err() {
                        seg_err = Some(KernelError::BadAddress);
                    }
                }
                Err(e) => seg_err = Some(e),
            }
        }
        let end = self.charge(t, cost);
        let pcb = self.host.proc_mut(dst).expect("checked");
        pcb.state = ProcState::Ready;
        let outcome = match seg_err {
            None => Outcome::Send(Ok(msg)),
            Some(e) => Outcome::Send(Err(e)),
        };
        self.resume_at(end, dst, outcome);
    }

    pub(crate) fn handle_reply_pending(&mut self, _t: SimTime, src: Pid, dst: Pid, seq: u32) {
        let max = self.proto.max_retries;
        if let Some(ProcState::AwaitingReplyRemote {
            to,
            seq: s,
            retries_left,
            ..
        }) = self.host.proc_mut(dst).map(|p| &mut p.state)
        {
            if *to == src && *s == seq {
                *retries_left = max;
                self.host.stats.reply_pending_received += 1;
            }
        }
    }

    pub(crate) fn handle_nack(&mut self, t: SimTime, src: Pid, dst: Pid, seq: u32) {
        let matches = matches!(
            self.host.proc(dst).map(|p| &p.state),
            Some(ProcState::AwaitingReplyRemote { to, seq: s, .. }) if *to == src && *s == seq
        );
        if matches {
            self.host.stats.nacks_received += 1;
            self.fail_send(t, dst, KernelError::NonexistentProcess);
        }
    }
}
