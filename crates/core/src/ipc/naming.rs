//! `GetPid` logical-id resolution.
//!
//! A local-table miss broadcasts a `GetPidReq`; any kernel holding a
//! remote-visible registration answers. The asker retries the broadcast
//! a configured number of times before giving up — name resolution is
//! the only part of the protocol with no reply-as-acknowledgement to
//! lean on.

use v_sim::SimTime;

use crate::ctx::Ctx;
use crate::event::TimerKind;
use crate::naming::Scope;
use crate::pcb::ProcState;
use crate::pid::Pid;
use crate::program::Outcome;
use v_wire::{GetPidReply, GetPidReq, Packet, PacketBody};

impl Ctx<'_> {
    pub(crate) fn do_get_pid(&mut self, t: SimTime, pid: Pid, logical_id: u32, scope: Scope) {
        let cost = self.host.costs.name_op;
        let end = self.charge(t, cost);
        let local_hit = match scope {
            Scope::Remote => None,
            _ => self.host.names.lookup_local(logical_id),
        };
        if let Some(found) = local_hit {
            self.resume_at(end, pid, Outcome::GetPid(Some(found)));
            return;
        }
        if scope == Scope::Local {
            self.resume_at(end, pid, Outcome::GetPid(None));
            return;
        }
        // Broadcast resolution.
        {
            let retries = self.proto.getpid_retries;
            let pcb = self.host.proc_mut(pid).expect("caller exists");
            pcb.state = ProcState::AwaitingGetPid {
                logical_id,
                retries_left: retries,
            };
        }
        self.broadcast_getpid(end, pid, logical_id);
    }

    /// Broadcasts one `GetPidReq` and arms the answer timeout.
    fn broadcast_getpid(&mut self, t: SimTime, pid: Pid, logical_id: u32) {
        self.host.stats.getpid_broadcasts += 1;
        let pkt = Packet {
            seq: 0,
            src_pid: pid.raw(),
            dst_pid: 0,
            body: PacketBody::GetPidReq(GetPidReq { logical_id }),
        };
        let emitted = self.emit_broadcast(t, &pkt);
        let timeout = self.proto.getpid_timeout;
        self.timer_at(
            emitted.cpu_done + timeout,
            TimerKind::GetPid { pid, logical_id },
        );
    }

    pub(crate) fn getpid_timer(&mut self, t: SimTime, pid: Pid, logical_id: u32) {
        let retries = match self.host.proc(pid).map(|p| &p.state) {
            Some(ProcState::AwaitingGetPid {
                logical_id: l,
                retries_left,
            }) if *l == logical_id => *retries_left,
            _ => return,
        };
        if retries == 0 {
            let pcb = self.host.proc_mut(pid).expect("checked");
            pcb.state = ProcState::Ready;
            self.resume_at(t, pid, Outcome::GetPid(None));
            return;
        }
        {
            let pcb = self.host.proc_mut(pid).expect("checked");
            pcb.state = ProcState::AwaitingGetPid {
                logical_id,
                retries_left: retries - 1,
            };
        }
        self.broadcast_getpid(t, pid, logical_id);
    }

    // ------------------------------------------------------------------
    // Wire handlers
    // ------------------------------------------------------------------

    pub(crate) fn handle_getpid_req(&mut self, t: SimTime, src: Pid, body: GetPidReq) {
        let Some(found) = self.host.names.lookup_remote(body.logical_id) else {
            return;
        };
        self.host.stats.getpid_answers += 1;
        let cost = self.host.costs.name_op;
        let end = self.charge(t, cost);
        let pkt = Packet {
            seq: 0,
            src_pid: found.raw(), // advertised pid also teaches the hostmap
            dst_pid: src.raw(),
            body: PacketBody::GetPidReply(GetPidReply {
                logical_id: body.logical_id,
                pid: found.raw(),
            }),
        };
        self.emit_packet(end, &pkt, src.host());
    }

    pub(crate) fn handle_getpid_reply(&mut self, t: SimTime, dst: Pid, body: GetPidReply) {
        let matches = matches!(
            self.host.proc(dst).map(|p| &p.state),
            Some(ProcState::AwaitingGetPid { logical_id: l, .. }) if *l == body.logical_id
        );
        if !matches {
            return; // already resolved by an earlier answer
        }
        let cost =
            self.host.costs.name_op + self.host.costs.unblock + self.host.costs.context_switch;
        let end = self.charge(t, cost);
        let pcb = self.host.proc_mut(dst).expect("checked");
        pcb.state = ProcState::Ready;
        self.resume_at(end, dst, Outcome::GetPid(Pid::from_raw(body.pid)));
    }
}
