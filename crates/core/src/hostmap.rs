//! Logical host → network address mapping.
//!
//! §3.1 of the paper describes two schemes:
//!
//! * **3 Mb Ethernet**: the top 8 bits of the logical host identifier
//!   *are* the physical network address — the mapping is computed, never
//!   stored ([`AddressingMode::Direct`]).
//! * **10 Mb Ethernet**: a table maps logical hosts to network addresses;
//!   when there is no entry the packet is **broadcast**, and new
//!   correspondences are **learned from received packets**
//!   ([`AddressingMode::Learned`]).

use v_net::MacAddr;

use crate::pid::LogicalHost;

/// Which pid → network address scheme the cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressingMode {
    /// 3 Mb convention: station address embedded in the logical host id.
    Direct,
    /// 10 Mb convention: learned table, broadcast on miss.
    Learned,
}

/// One kernel's view of the logical-host → station mapping.
///
/// The learned table is a flat vector indexed by the logical host id,
/// storing `station + 1` so zero means "no entry" — resolution on the
/// per-packet fast path is one bounds-checked load, no hashing.
#[derive(Debug)]
pub struct HostMap {
    mode: AddressingMode,
    table: Vec<u32>,
    entries: usize,
    /// Packets sent by broadcast because the destination was unknown.
    pub broadcast_fallbacks: u64,
    /// Correspondences learned from received packets.
    pub learned: u64,
}

impl HostMap {
    /// Creates a map for the given mode.
    pub fn new(mode: AddressingMode) -> HostMap {
        HostMap {
            mode,
            table: Vec::new(),
            entries: 0,
            broadcast_fallbacks: 0,
            learned: 0,
        }
    }

    /// The addressing mode.
    pub fn mode(&self) -> AddressingMode {
        self.mode
    }

    /// Resolves a logical host to a station address; `None` means the
    /// caller must fall back to broadcast (and should count it via
    /// [`HostMap::note_broadcast_fallback`]).
    pub fn resolve(&self, host: LogicalHost) -> Option<MacAddr> {
        match self.mode {
            AddressingMode::Direct => Some(MacAddr(host.station())),
            AddressingMode::Learned => match self.table.get(host.0 as usize) {
                Some(&slot) if slot != 0 => Some(MacAddr((slot - 1) as u16)),
                _ => None,
            },
        }
    }

    /// Records that a packet had to be broadcast for want of a mapping.
    pub fn note_broadcast_fallback(&mut self) {
        self.broadcast_fallbacks += 1;
    }

    /// Learns a correspondence from a received packet's source fields.
    /// No-op in `Direct` mode (nothing to learn).
    pub fn learn(&mut self, host: LogicalHost, mac: MacAddr) {
        if self.mode == AddressingMode::Learned {
            let i = host.0 as usize;
            if self.table.len() <= i {
                self.table.resize(i + 1, 0);
            }
            let old = self.table[i];
            let new = u32::from(mac.0) + 1;
            // A fresh *or changed* correspondence counts as learned.
            if old != new {
                if old == 0 {
                    self.entries += 1;
                }
                self.table[i] = new;
                self.learned += 1;
            }
        }
    }

    /// Number of learned entries (always 0 in `Direct` mode).
    pub fn table_len(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mode_computes_mapping() {
        let m = HostMap::new(AddressingMode::Direct);
        let h = LogicalHost::from_station(0x2A);
        assert_eq!(m.resolve(h), Some(MacAddr(0x2A)));
        assert_eq!(m.table_len(), 0);
    }

    #[test]
    fn learned_mode_misses_then_learns() {
        let mut m = HostMap::new(AddressingMode::Learned);
        let h = LogicalHost(0x8001);
        assert_eq!(m.resolve(h), None);
        m.learn(h, MacAddr(5));
        assert_eq!(m.resolve(h), Some(MacAddr(5)));
        assert_eq!(m.learned, 1);
        // Re-learning the same mapping is not counted twice.
        m.learn(h, MacAddr(5));
        assert_eq!(m.learned, 1);
        // But an updated mapping is.
        m.learn(h, MacAddr(6));
        assert_eq!(m.learned, 2);
        assert_eq!(m.resolve(h), Some(MacAddr(6)));
    }

    #[test]
    fn direct_mode_ignores_learning() {
        let mut m = HostMap::new(AddressingMode::Direct);
        m.learn(LogicalHost(0x0100), MacAddr(9));
        assert_eq!(m.table_len(), 0);
        assert_eq!(m.learned, 0);
        // Resolution still follows the convention, not the table.
        assert_eq!(m.resolve(LogicalHost(0x0100)), Some(MacAddr(1)));
    }
}
