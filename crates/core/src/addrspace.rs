//! Per-process address spaces.
//!
//! Every simulated process owns a flat byte array standing in for its
//! MC68000 address space. All data the kernel moves — appended segments,
//! `MoveTo`/`MoveFrom` chunks, `ReplyWithSegment` payloads — is *really
//! copied* between these arrays, so integration tests can verify
//! end-to-end content integrity of the protocols, not just their timing.

use crate::error::KernelError;

/// A process address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    bytes: Vec<u8>,
}

impl AddressSpace {
    /// Default size given to processes spawned without an explicit size.
    pub const DEFAULT_SIZE: usize = 256 * 1024;

    /// Creates a zero-filled space of `size` bytes.
    pub fn new(size: usize) -> AddressSpace {
        AddressSpace {
            bytes: vec![0; size],
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn range(&self, addr: u32, len: usize) -> Result<std::ops::Range<usize>, KernelError> {
        let start = addr as usize;
        let end = start.checked_add(len).ok_or(KernelError::BadAddress)?;
        if end > self.bytes.len() {
            return Err(KernelError::BadAddress);
        }
        Ok(start..end)
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&self, addr: u32, len: usize) -> Result<&[u8], KernelError> {
        let r = self.range(addr, len)?;
        Ok(&self.bytes[r])
    }

    /// Copies `data` into the space starting at `addr`.
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), KernelError> {
        let r = self.range(addr, data.len())?;
        self.bytes[r].copy_from_slice(data);
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `value` (handy for test patterns).
    pub fn fill(&mut self, addr: u32, len: usize, value: u8) -> Result<(), KernelError> {
        let r = self.range(addr, len)?;
        self.bytes[r].fill(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut a = AddressSpace::new(1024);
        a.write(100, &[1, 2, 3, 4]).unwrap();
        assert_eq!(a.read(100, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(a.read(99, 1).unwrap(), &[0]);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut a = AddressSpace::new(16);
        assert_eq!(a.read(15, 2).unwrap_err(), KernelError::BadAddress);
        assert_eq!(a.write(16, &[1]).unwrap_err(), KernelError::BadAddress);
        assert!(a.read(15, 1).is_ok());
        assert!(a.write(0, &[0; 16]).is_ok());
    }

    #[test]
    fn overflow_addresses_rejected() {
        let a = AddressSpace::new(16);
        assert_eq!(
            a.read(u32::MAX, usize::MAX).unwrap_err(),
            KernelError::BadAddress
        );
    }

    #[test]
    fn fill_writes_pattern() {
        let mut a = AddressSpace::new(32);
        a.fill(8, 8, 0xAA).unwrap();
        assert_eq!(a.read(7, 1).unwrap(), &[0]);
        assert_eq!(a.read(8, 8).unwrap(), &[0xAA; 8]);
        assert_eq!(a.read(16, 1).unwrap(), &[0]);
        assert_eq!(a.fill(30, 4, 1).unwrap_err(), KernelError::BadAddress);
    }
}
