//! Cluster event vocabulary.

use v_net::{Frame, MacAddr};

use crate::pid::Pid;
use crate::program::Outcome;

/// Index of a host within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

impl HostId {
    /// Largest number of hosts the station-address plan can place
    /// (station addresses stop short of the reserved gateway range).
    pub const MAX_HOSTS: usize = 255 * 255;

    /// The station address host `i` occupies.
    ///
    /// Hosts `0..255` get addresses `1..=255` — identical to the paper's
    /// 8-bit plan, so small clusters keep their historic addresses.
    /// Beyond that the plan tiles further 255-address blocks upward
    /// (`256 + 1..`), always skipping low-byte-zero addresses so the
    /// [`crate::pid::LogicalHost`] station encoding stays unambiguous,
    /// and never reaching the gateway range at `0xFF00`.
    pub fn station_mac(self) -> MacAddr {
        assert!(self.0 < Self::MAX_HOSTS, "host index {self} out of range");
        MacAddr(((self.0 / 255) as u16) << 8 | (self.0 % 255 + 1) as u16)
    }

    /// The host index occupying station address `mac` — the inverse of
    /// [`HostId::station_mac`], used to route a frame delivery to its
    /// receiving host.
    pub fn from_station_mac(mac: MacAddr) -> HostId {
        HostId((mac.0 >> 8) as usize * 255 + (mac.0 & 0xFF) as usize - 1)
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Identifies an outbound data stream being paced chunk-by-chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKey {
    /// A `MoveTo` in progress, keyed by the mover's local uid.
    Move {
        /// Mover's local uid.
        mover: u16,
    },
    /// A `MoveFrom` service stream (this kernel is the data source),
    /// keyed by requester pid and transfer sequence number.
    Serve {
        /// Requesting process (raw pid).
        requester: u32,
        /// Transfer sequence number.
        seq: u32,
    },
}

/// Kernel timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Message-exchange retransmission timer.
    Retransmit {
        /// The blocked sender.
        pid: Pid,
        /// Exchange sequence number the timer guards.
        seq: u32,
    },
    /// Bulk-transfer stall timer.
    TransferStall {
        /// The blocked mover / requester.
        pid: Pid,
        /// Transfer instance this timer guards (its sequence number);
        /// timers outlive transfers, so the match must be explicit.
        seq: u32,
        /// Progress marker at the time the timer was set; the timer is
        /// stale if progress has been made since.
        marker: u32,
    },
    /// Broadcast `GetPid` response timeout.
    GetPid {
        /// The blocked querier.
        pid: Pid,
        /// Logical id being resolved.
        logical_id: u32,
    },
    /// Periodic alien / transfer-state garbage collection.
    Housekeeping,
    /// A timer requested by a raw protocol handler (baselines).
    Raw {
        /// Handler's ethertype discriminator value.
        ethertype: u16,
        /// Handler-chosen token.
        token: u64,
    },
}

/// Events driving the cluster.
#[derive(Debug)]
pub enum Event {
    /// Resume a process with a completed operation.
    Resume {
        /// Host the process lives on.
        host: HostId,
        /// The process.
        pid: Pid,
        /// What completed.
        outcome: Outcome,
    },
    /// A frame finished arriving at a host's interface.
    Frame {
        /// Receiving host.
        host: HostId,
        /// The frame (payload possibly corrupted in flight).
        frame: Frame,
    },
    /// A batch of frame arrivals sharing one instant, possibly spanning
    /// many hosts — a broadcast's fan-out coalesced into a single
    /// scheduling event so a 1000-receiver broadcast costs one heap
    /// entry instead of a thousand. Items dispatch in order, each with
    /// its own crashed-host check.
    FrameBatch {
        /// `(receiving host, frame)` pairs in delivery order.
        items: Vec<(HostId, Frame)>,
    },
    /// A kernel timer fired.
    Timer {
        /// Host whose timer fired.
        host: HostId,
        /// Which timer.
        kind: TimerKind,
    },
    /// The next chunk of an outbound data stream may be transmitted
    /// (previous frame left the single-buffered interface).
    ChunkReady {
        /// Host doing the streaming.
        host: HostId,
        /// Which stream.
        key: StreamKey,
    },
}
