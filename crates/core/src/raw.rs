//! Raw protocol handlers.
//!
//! The paper's comparators — WFS-style page access, streaming file access
//! — are "specialized protocols integrated into the transport layer".
//! This hook lets such protocols live *below* the V IPC layer, directly
//! on the data-link level, while sharing the same processor cost physics:
//! a handler registered for an ethertype receives that ethertype's frames
//! (after the kernel charges interrupt-level receive costs) and may send
//! frames, set timers and charge additional processor time.
//!
//! The network-penalty measurement of Table 4-1 is also implemented as a
//! raw handler: interrupt-level ping-pong with no protocol above it.

use v_net::{Frame, MacAddr};
use v_sim::{SimDuration, SimTime};

/// Context handed to raw handlers.
///
/// Operations charge the host CPU exactly like kernel code: `send_frame`
/// pays frame build + per-byte copy, arriving frames have already paid
/// dispatch + parse + per-byte copy before `on_frame` runs.
pub trait RawCtx {
    /// Current simulation time (end of the charges already incurred for
    /// this activation).
    fn now(&self) -> SimTime;

    /// This station's address.
    fn mac(&self) -> MacAddr;

    /// Builds and transmits a frame carrying `payload` to `dst` under
    /// this handler's ethertype.
    fn send_frame(&mut self, dst: MacAddr, payload: Vec<u8>);

    /// Charges additional processor time (protocol-specific service
    /// work).
    fn charge(&mut self, cost: SimDuration);

    /// Requests a timer callback with `token` after `delay`.
    fn set_timer(&mut self, delay: SimDuration, token: u64);
}

/// A protocol endpoint at the raw data-link level.
pub trait RawHandler {
    /// A frame for this handler's ethertype arrived (receive costs
    /// already charged). The payload is delivered as-is — possibly
    /// corrupted in flight; handlers do their own integrity checking, as
    /// the medium does not expose its corruption bookkeeping to
    /// protocols.
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame);

    /// A timer set through [`RawCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut dyn RawCtx, token: u64);
}
