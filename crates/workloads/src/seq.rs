//! Sequential page access with server read-ahead (Table 6-2).
//!
//! The paper models a file server doing read-ahead by interposing the
//! disk latency *between the reply to one request and the receipt of the
//! next* — by the time the client asks for page k+1, the server has been
//! fetching it for a while. The elapsed time per page then approaches the
//! disk latency itself, which is the paper's argument that streaming
//! protocols have at most 10–15 % to offer.

use v_kernel::{Access, Api, Message, Outcome, Pid, Program};
use v_sim::SimDuration;

use crate::measure::{Probe, RunReport};
use crate::page::{CLIENT_BUF, SERVER_BUF};

/// Serves sequential page reads; after each reply it "reads ahead" for
/// `disk_latency` before accepting the next request.
pub struct SeqReadServer {
    /// Page size in bytes.
    pub page: u32,
    /// Simulated disk latency per page.
    pub disk_latency: SimDuration,
    /// Pattern served.
    pub pattern: u8,
    /// Failure records.
    pub report: Probe<RunReport>,
    pending_rearm: bool,
}

impl SeqReadServer {
    /// Creates a read-ahead server.
    pub fn new(
        page: u32,
        disk_latency: SimDuration,
        pattern: u8,
        report: Probe<RunReport>,
    ) -> SeqReadServer {
        SeqReadServer {
            page,
            disk_latency,
            pattern,
            report,
            pending_rearm: false,
        }
    }
}

impl Program for SeqReadServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(SERVER_BUF, self.page as usize, self.pattern)
                    .expect("page fits");
                api.receive();
            }
            Outcome::Receive { from, msg } => {
                let count = msg.get_u32(8);
                let client_buf = msg.get_u32(12);
                let mut reply = Message::empty();
                reply.set_u32(8, count);
                if api
                    .reply_with_segment(reply, from, client_buf, SERVER_BUF, count)
                    .is_err()
                {
                    self.report.borrow_mut().failures += 1;
                }
                // Read-ahead: fetch the next page from disk before
                // listening for the next request.
                self.pending_rearm = true;
                api.delay(self.disk_latency);
            }
            Outcome::Delay if self.pending_rearm => {
                self.pending_rearm = false;
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Reads `n` pages sequentially, optionally "thinking" (computing)
/// between reads — the §6.2 slow-reader scenario.
pub struct SeqReadClient {
    /// The server.
    pub server: Pid,
    /// Page size in bytes.
    pub page: u32,
    /// Pages to read.
    pub n: u64,
    /// Compute time between reads (zero = read as fast as possible).
    pub think: SimDuration,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
    done: u64,
}

impl SeqReadClient {
    /// Creates a sequential reader.
    pub fn new(
        server: Pid,
        page: u32,
        n: u64,
        think: SimDuration,
        report: Probe<RunReport>,
    ) -> SeqReadClient {
        SeqReadClient {
            server,
            page,
            n,
            think,
            report,
            done: 0,
        }
    }

    fn read_next(&self, api: &mut Api<'_>) {
        let mut m = Message::empty();
        m.set_u32(8, self.page);
        m.set_u32(12, CLIENT_BUF);
        m.set_segment(CLIENT_BUF, self.page, Access::Write);
        api.send(m, self.server);
    }
}

impl Program for SeqReadClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                self.report.borrow_mut().started = Some(api.now());
                self.read_next(api);
            }
            Outcome::Send(Ok(_)) => {
                self.done += 1;
                self.report.borrow_mut().iterations += 1;
                if self.done >= self.n {
                    self.report.borrow_mut().finished = Some(api.now());
                    api.exit();
                } else if self.think.is_zero() {
                    self.read_next(api);
                } else {
                    api.compute(self.think);
                }
            }
            Outcome::Compute => self.read_next(api),
            Outcome::Send(Err(_)) => {
                let mut r = self.report.borrow_mut();
                r.failures += 1;
                r.finished = Some(api.now());
                drop(r);
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::probe;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    fn run_seq(disk_ms: u64, think: SimDuration) -> f64 {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(RunReport::default());
        let server = cl.spawn(
            HostId(1),
            "seqserver",
            Box::new(SeqReadServer::new(
                512,
                SimDuration::from_millis(disk_ms),
                0x11,
                rep.clone(),
            )),
        );
        cl.spawn(
            HostId(0),
            "seqclient",
            Box::new(SeqReadClient::new(server, 512, 100, think, rep.clone())),
        );
        cl.run();
        let r = rep.borrow();
        assert!(r.clean(), "{:?}", *r);
        r.per_op_ms()
    }

    #[test]
    fn elapsed_tracks_disk_latency() {
        // Paper Table 6-2: 10 → 12.02, 15 → 17.13, 20 → 22.22 ms/page.
        for (disk, paper) in [(10u64, 12.02), (15, 17.13), (20, 22.22)] {
            let ms = run_seq(disk, SimDuration::ZERO);
            let err = (ms - paper).abs() / paper;
            assert!(err < 0.12, "disk {disk} ms: got {ms:.2}, paper {paper}");
        }
    }

    #[test]
    fn read_ahead_overlaps_disk_with_request_turnaround() {
        // Per-page time must be far below disk latency + full round trip.
        let ms = run_seq(15, SimDuration::ZERO);
        assert!(ms < 15.0 + 5.56, "no overlap: {ms:.2}");
    }

    #[test]
    fn slow_reader_sees_page_ready() {
        // A client thinking 20 ms per page on a 10 ms disk: total per page
        // ≈ think + remote read time, since read-ahead hides the disk.
        let ms = run_seq(10, SimDuration::from_millis(20));
        assert!((24.0..28.0).contains(&ms), "slow reader: {ms:.2}");
    }
}
