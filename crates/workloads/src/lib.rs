//! Workload programs and the measurement harness.
//!
//! Every table in the paper is driven by a small test program pair; this
//! crate reproduces them:
//!
//! * [`echo`] — `Send-Receive-Reply` ping-pong (Tables 5-1/5-2, §5.4);
//! * [`mover`] — standing-grant `MoveTo`/`MoveFrom` loops (Tables
//!   5-1/5-2);
//! * [`page`] — 512-byte page read/write between two processes, in both
//!   the segment-primitive form and the basic Thoth form (Table 6-1);
//! * [`seq`] — sequential page reads against a read-ahead server with
//!   parameterized disk latency (Table 6-2);
//! * [`load`] — 64 KB program-image reads with a parameterized transfer
//!   unit (Table 6-3, §8);
//! * [`penalty`] — the interrupt-level raw-datagram ping-pong defining
//!   the network penalty (Table 4-1);
//! * [`multipair`] — concurrent exchange pairs for the multi-process
//!   traffic study (§5.4);
//! * [`measure`] — probes and per-operation accounting in the style of
//!   the paper's methodology (N-trial loops; processor time from
//!   busy-time deltas, the exact quantity the original "busywork
//!   process" estimated);
//! * [`chaos`] — replayable fault schedules (host crash/restart,
//!   gateway failure, lossy periods and partitions) that scenarios and
//!   benches inject deterministically mid-run.

pub mod boot;
pub mod chaos;
pub mod echo;
pub mod load;
pub mod measure;
pub mod mixed;
pub mod mover;
pub mod multipair;
pub mod page;
pub mod penalty;
pub mod seq;

pub use measure::{probe, Probe, RunReport};
