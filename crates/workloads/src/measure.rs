//! Measurement probes and reports.
//!
//! Workload programs are moved into the cluster, so the harness observes
//! them through shared [`Probe`] handles (`Rc<RefCell<_>>` — the simulator
//! is single-threaded by design). Each benchmark program records its
//! start/finish instants and iteration count; the harness combines those
//! with host CPU busy-time deltas to produce per-operation elapsed and
//! processor times, exactly the quantities the paper reports.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{Cluster, HostId};
use v_sim::{SimDuration, SimTime};

/// Shared handle between the harness and a workload program.
pub type Probe<T> = Rc<RefCell<T>>;

/// Creates a probe.
pub fn probe<T>(value: T) -> Probe<T> {
    Rc::new(RefCell::new(value))
}

/// Completion record a benchmark program fills in.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// When the measured loop started.
    pub started: Option<SimTime>,
    /// When the measured loop finished.
    pub finished: Option<SimTime>,
    /// Iterations completed.
    pub iterations: u64,
    /// Operations that failed (should be 0 on a healthy network).
    pub failures: u64,
    /// Free-form payload check errors detected by the program.
    pub integrity_errors: u64,
    /// Deliberate loop overhead (e.g. decorrelation jitter) to subtract
    /// from the elapsed time — the paper's "subtracting loop overhead and
    /// other artifact".
    pub deducted: SimDuration,
}

impl RunReport {
    /// Total elapsed time of the measured loop.
    ///
    /// # Panics
    ///
    /// Panics if the loop did not complete — tests should assert
    /// completion explicitly first for a better message.
    pub fn elapsed(&self) -> SimDuration {
        let s = self.started.expect("loop never started");
        let f = self.finished.expect("loop never finished");
        f.since(s)
    }

    /// Elapsed time per iteration, in milliseconds, with deliberate loop
    /// overhead subtracted.
    pub fn per_op_ms(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.elapsed().saturating_sub(self.deducted).as_millis_f64() / self.iterations as f64
    }

    /// True if the loop ran to completion without failures.
    pub fn clean(&self) -> bool {
        self.finished.is_some() && self.failures == 0 && self.integrity_errors == 0
    }
}

/// Snapshot of one host's processor accounting.
#[derive(Debug, Clone, Copy)]
pub struct CpuSnapshot {
    host: HostId,
    busy: SimDuration,
}

impl CpuSnapshot {
    /// Takes a snapshot of `host`'s charged processor time.
    pub fn take(cluster: &Cluster, host: HostId) -> CpuSnapshot {
        CpuSnapshot {
            host,
            busy: cluster.cpu_busy(host),
        }
    }

    /// Processor time charged since this snapshot.
    pub fn delta(&self, cluster: &Cluster) -> SimDuration {
        cluster.cpu_busy(self.host).saturating_sub(self.busy)
    }

    /// Processor time per operation since this snapshot, in milliseconds.
    pub fn per_op_ms(&self, cluster: &Cluster, ops: u64) -> f64 {
        if ops == 0 {
            return 0.0;
        }
        self.delta(cluster).as_millis_f64() / ops as f64
    }
}

/// A measured kernel operation in the format of the paper's tables:
/// elapsed local/remote plus client/server processor time.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpRow {
    /// Elapsed time per op executed locally (ms).
    pub local_ms: f64,
    /// Elapsed time per op executed remotely (ms).
    pub remote_ms: f64,
    /// Network penalty for the remote op's data (ms).
    pub penalty_ms: f64,
    /// Client host processor time per remote op (ms).
    pub client_cpu_ms: f64,
    /// Server host processor time per remote op (ms).
    pub server_cpu_ms: f64,
}

impl OpRow {
    /// Remote minus local elapsed time (the "Difference" column).
    pub fn difference_ms(&self) -> f64 {
        self.remote_ms - self.local_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_accounting() {
        let mut r = RunReport {
            started: Some(SimTime::from_millis(10)),
            finished: Some(SimTime::from_millis(110)),
            iterations: 100,
            ..RunReport::default()
        };
        assert!((r.per_op_ms() - 1.0).abs() < 1e-9);
        assert!(r.clean());
        r.failures = 1;
        assert!(!r.clean());
    }

    #[test]
    fn zero_iterations_is_zero_per_op() {
        let r = RunReport {
            started: Some(SimTime::ZERO),
            finished: Some(SimTime::from_millis(5)),
            ..RunReport::default()
        };
        assert_eq!(r.per_op_ms(), 0.0);
    }

    #[test]
    fn difference_column() {
        let row = OpRow {
            local_ms: 1.0,
            remote_ms: 3.2,
            ..OpRow::default()
        };
        assert!((row.difference_ms() - 2.2).abs() < 1e-9);
    }
}
