//! The §7 file-server capacity workload: a 90/10 mix of page requests
//! and 64 KB program loads from many diskless workstations.

use v_kernel::{Access, Api, Message, Outcome, Pid, Program};
use v_sim::{SimDuration, SimTime, SplitMix64};

use crate::measure::{Probe, RunReport};

/// Request opcode: 512-byte page read.
const OP_PAGE: u8 = 1;
/// Request opcode: 64 KB program load.
const OP_LOAD: u8 = 2;

/// Server-side data buffer.
const SRV_BUF: u32 = 0x10000;
/// Client-side receive buffer.
const CLI_BUF: u32 = 0x10000;

/// A file-server stand-in charging realistic per-request processor time
/// (the paper estimates ~3.5 ms of file-system processing per request on
/// top of the kernel operations).
pub struct CapacityServer {
    /// File-system processing charged per request.
    pub fs_cpu: SimDuration,
    /// `MoveTo` transfer unit for program loads.
    pub transfer_unit: u32,
    /// Program image size.
    pub image: u32,
    /// Failure records.
    pub report: Probe<RunReport>,
    current: Option<(Pid, u32, u32)>,
    pending: Option<(Pid, Message)>,
}

impl CapacityServer {
    /// Creates a capacity server.
    pub fn new(fs_cpu: SimDuration, report: Probe<RunReport>) -> CapacityServer {
        CapacityServer {
            fs_cpu,
            transfer_unit: 16384,
            image: 65536,
            report,
            current: None,
            pending: None,
        }
    }

    fn serve(&mut self, api: &mut Api<'_>) {
        let (from, msg) = self.pending.take().expect("request pending");
        match msg.byte(1) {
            OP_PAGE => {
                let buf = msg.get_u32(12);
                let mut reply = Message::empty();
                reply.set_u32(8, 512);
                if api
                    .reply_with_segment(reply, from, buf, SRV_BUF, 512)
                    .is_err()
                {
                    self.report.borrow_mut().failures += 1;
                }
                api.receive();
            }
            OP_LOAD => {
                let buf = msg.get_u32(12);
                self.current = Some((from, buf, 0));
                self.push_next(api);
            }
            _ => {
                self.report.borrow_mut().failures += 1;
                api.receive();
            }
        }
    }

    fn push_next(&mut self, api: &mut Api<'_>) {
        let (client, buf, pushed) = self.current.expect("load in progress");
        let n = self.transfer_unit.min(self.image - pushed);
        api.move_to(client, buf + pushed, SRV_BUF + pushed, n);
    }
}

impl Program for CapacityServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(SRV_BUF, self.image as usize, 0x42)
                    .expect("fits");
                api.receive();
            }
            Outcome::Receive { from, msg } => {
                // Charge the file-system processing, then serve.
                self.pending = Some((from, msg));
                api.compute(self.fs_cpu);
            }
            Outcome::Compute => self.serve(api),
            Outcome::Move(Ok(n)) => {
                let (client, buf, pushed) = self.current.expect("load in progress");
                let pushed = pushed + n;
                if pushed < self.image {
                    self.current = Some((client, buf, pushed));
                    self.push_next(api);
                } else {
                    self.current = None;
                    let mut reply = Message::empty();
                    reply.set_u32(8, pushed);
                    let _ = api.reply(reply, client);
                    api.receive();
                }
            }
            Outcome::Move(Err(_)) => {
                self.report.borrow_mut().failures += 1;
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Per-client results of the capacity workload.
#[derive(Debug, Clone, Default)]
pub struct MixStats {
    /// Completed page requests.
    pub pages: u64,
    /// Completed loads.
    pub loads: u64,
    /// Summed page response time (ms).
    pub page_ms_total: f64,
    /// Summed load response time (ms).
    pub load_ms_total: f64,
}

impl MixStats {
    /// Mean page response time.
    pub fn page_ms(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.page_ms_total / self.pages as f64
        }
    }

    /// Mean load response time.
    pub fn load_ms(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_ms_total / self.loads as f64
        }
    }

    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.pages + self.loads
    }
}

/// A diskless workstation issuing the 90/10 request mix with think time
/// between requests.
pub struct MixedClient {
    /// The file server.
    pub server: Pid,
    /// Requests to issue.
    pub n: u64,
    /// Think time between requests.
    pub think: SimDuration,
    /// RNG for the 90/10 draw.
    pub rng: SplitMix64,
    /// Per-client stats.
    pub stats: Probe<MixStats>,
    issued_at: SimTime,
    current_is_load: bool,
    done: u64,
}

impl MixedClient {
    /// Creates a mixed-workload client.
    pub fn new(
        server: Pid,
        n: u64,
        think: SimDuration,
        seed: u64,
        stats: Probe<MixStats>,
    ) -> MixedClient {
        MixedClient {
            server,
            n,
            think,
            rng: SplitMix64::new(seed),
            stats,
            issued_at: SimTime::ZERO,
            current_is_load: false,
            done: 0,
        }
    }

    fn issue(&mut self, api: &mut Api<'_>) {
        self.current_is_load = self.rng.chance(0.10);
        let mut m = Message::empty();
        m.set_u32(12, CLI_BUF);
        if self.current_is_load {
            m.set_byte(1, OP_LOAD);
            m.set_segment(CLI_BUF, 65536, Access::Write);
        } else {
            m.set_byte(1, OP_PAGE);
            m.set_segment(CLI_BUF, 512, Access::Write);
        }
        self.issued_at = api.now();
        api.send(m, self.server);
    }
}

impl Program for MixedClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => self.issue(api),
            Outcome::Send(Ok(_)) => {
                let ms = api.now().since(self.issued_at).as_millis_f64();
                {
                    let mut st = self.stats.borrow_mut();
                    if self.current_is_load {
                        st.loads += 1;
                        st.load_ms_total += ms;
                    } else {
                        st.pages += 1;
                        st.page_ms_total += ms;
                    }
                }
                self.done += 1;
                if self.done < self.n {
                    if self.think.is_zero() {
                        self.issue(api);
                    } else {
                        api.delay(self.think);
                    }
                } else {
                    api.exit();
                }
            }
            Outcome::Delay => self.issue(api),
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::probe;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    #[test]
    fn mix_completes_and_splits_90_10() {
        let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(RunReport::default());
        let server = cl.spawn(
            HostId(0),
            "capacity-server",
            Box::new(CapacityServer::new(
                SimDuration::from_millis_f64(3.5),
                rep.clone(),
            )),
        );
        let st1 = probe(MixStats::default());
        let st2 = probe(MixStats::default());
        cl.spawn(
            HostId(1),
            "ws1",
            Box::new(MixedClient::new(
                server,
                200,
                SimDuration::from_millis(20),
                1,
                st1.clone(),
            )),
        );
        cl.spawn(
            HostId(2),
            "ws2",
            Box::new(MixedClient::new(
                server,
                200,
                SimDuration::from_millis(20),
                2,
                st2.clone(),
            )),
        );
        cl.run();
        assert_eq!(rep.borrow().failures, 0);
        let total = st1.borrow().requests() + st2.borrow().requests();
        assert_eq!(total, 400);
        let loads = st1.borrow().loads + st2.borrow().loads;
        // 10% of 400 = 40; allow generous spread.
        assert!((20..60).contains(&(loads as i64)), "loads = {loads}");
        // Loads are far slower than page reads.
        assert!(st1.borrow().load_ms() > 5.0 * st1.borrow().page_ms());
    }
}
