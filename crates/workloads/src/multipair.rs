//! Concurrent exchange pairs (§5.4, multi-process traffic).

use v_kernel::{Cluster, HostId};
use v_sim::SimDuration;

use crate::echo::{EchoServer, Pinger};
use crate::measure::{probe, Probe, RunReport};

/// Results of a multi-pair run.
#[derive(Debug)]
pub struct MultiPairResult {
    /// Per-pair reports.
    pub pairs: Vec<Probe<RunReport>>,
    /// Elapsed-per-exchange averaged over pairs (ms).
    pub mean_per_op_ms: f64,
    /// Offered network load in bits per second.
    pub offered_bits_per_sec: f64,
    /// Packets corrupted by the collision-detection bug.
    pub bug_corruptions: u64,
    /// Total frames on the wire.
    pub frames: u64,
    /// Retransmissions observed across all kernels.
    pub retransmissions: u64,
}

/// Spawns `pairs` client/server exchange pairs on `2 * pairs` hosts
/// (client `2i` → server `2i+1`), runs `n` exchanges each, and reports
/// aggregate behaviour.
///
/// `jitter` adds a uniform 0..jitter delay between a pair's exchanges —
/// needed with more than one pair because real workstations drift in
/// phase while a deterministic simulator locks step. The jitter total is
/// subtracted from the reported per-exchange times.
pub fn run_pairs(
    cluster: &mut Cluster,
    pairs: usize,
    n: u64,
    jitter: SimDuration,
) -> MultiPairResult {
    assert!(
        cluster.num_hosts() >= 2 * pairs,
        "need {} hosts, have {}",
        2 * pairs,
        cluster.num_hosts()
    );
    let mut reports = Vec::new();
    for i in 0..pairs {
        let client_host = HostId(2 * i);
        let server_host = HostId(2 * i + 1);
        let server = cluster.spawn(server_host, "echo", Box::new(EchoServer));
        let rep = probe(RunReport::default());
        cluster.spawn(
            client_host,
            "ping",
            Box::new(Pinger::new(server, n, rep.clone()).with_jitter(jitter, 0xBEE5 + i as u64)),
        );
        reports.push(rep);
    }
    cluster.run();
    // Elapsed window of the measured exchanges themselves (the cluster
    // keeps running briefly afterwards for alien housekeeping).
    let start = reports
        .iter()
        .filter_map(|r| r.borrow().started)
        .min()
        .unwrap_or_else(|| cluster.now());
    let finish = reports
        .iter()
        .filter_map(|r| r.borrow().finished)
        .max()
        .unwrap_or_else(|| cluster.now());
    let elapsed = finish.since(start);

    let mean = reports.iter().map(|r| r.borrow().per_op_ms()).sum::<f64>() / pairs as f64;
    let ms = cluster.medium_stats();
    let mut retrans = 0;
    for h in 0..cluster.num_hosts() {
        retrans += cluster.kernel_stats(HostId(h)).retransmissions;
    }
    MultiPairResult {
        pairs: reports,
        mean_per_op_ms: mean,
        offered_bits_per_sec: ms.offered_bits_per_sec(if elapsed.is_zero() {
            SimDuration::from_millis(1)
        } else {
            elapsed
        }),
        bug_corruptions: ms.bug_corruptions,
        frames: ms.frames_sent,
        retransmissions: retrans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_kernel::{ClusterConfig, CpuSpeed};
    use v_net::CollisionBug;

    #[test]
    fn one_pair_offers_about_400_kbps() {
        // Paper: a pair exchanging at maximum speed loads the net with
        // ~400 kb/s (64-byte packets each way every 3.18 ms).
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let res = run_pairs(&mut cl, 1, 500, v_sim::SimDuration::ZERO);
        assert!(
            (250_000.0..500_000.0).contains(&res.offered_bits_per_sec),
            "offered = {:.0} b/s",
            res.offered_bits_per_sec
        );
    }

    #[test]
    fn two_pairs_without_bug_degrade_minimally() {
        let cfg = ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let res = run_pairs(&mut cl, 2, 500, v_sim::SimDuration::from_millis(1));
        assert_eq!(res.retransmissions, 0);
        // Deferrals only; well under 5 % degradation vs 3.18 ms.
        assert!(
            res.mean_per_op_ms < 3.35,
            "mean = {:.3}",
            res.mean_per_op_ms
        );
    }

    #[test]
    fn collision_bug_causes_retransmissions() {
        let mut cfg = ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At8MHz);
        cfg.collision_bug = Some(CollisionBug { corrupt_prob: 0.05 });
        let mut cl = Cluster::new(cfg);
        let res = run_pairs(&mut cl, 2, 500, v_sim::SimDuration::from_millis(1));
        assert!(res.bug_corruptions > 0, "bug never fired");
        assert!(res.retransmissions > 0, "no retransmissions despite bug");
        // Every exchange still completed exactly once.
        for r in &res.pairs {
            let r = r.borrow();
            assert!(r.clean(), "{:?}", *r);
            assert_eq!(r.iterations, 500);
        }
    }
}
